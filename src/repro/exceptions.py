"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate configuration problems from runtime data
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent parameters."""


class GeometryError(ReproError):
    """A geometric construction is degenerate (zero-length wall, empty grid, ...)."""


class ChannelError(ReproError):
    """The RF channel could not produce a reading (e.g. position outside the
    modelled area of a shadowing field)."""


class ReadingError(ReproError):
    """A measurement record is malformed: wrong shape, NaN RSSI, missing
    readers, or inconsistent reference-tag counts."""


class EstimationError(ReproError):
    """A location estimate could not be produced (e.g. every candidate
    region was eliminated and no fallback is enabled)."""


class SimulationError(ReproError):
    """The discrete-event testbed simulation reached an invalid state."""


class SupervisionError(ReproError):
    """The supervised execution layer exhausted every recovery option for
    a unit of work (retries, pool respawns and — when enabled — the
    serial in-process fallback)."""


class CheckpointError(ReproError):
    """A session checkpoint could not be written, read, or reconciled
    with the world it claims to describe (corrupt file, no usable
    snapshot, or a resume whose replayed state diverges from the
    checkpointed one)."""
