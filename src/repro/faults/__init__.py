"""Deterministic fault injection for the RFID testbed.

The paper's testbed (§5) lives with real failures — readers miss weak
frames, reference tags die mid-experiment, hardware drifts out of
calibration — yet a simulator is only useful for robustness work if
those failures can be *scheduled, seeded and replayed*. This subpackage
provides:

* :mod:`~repro.faults.models` — composable fault models: scheduled
  reader outage/flapping, Gilbert–Elliott burst packet loss, tag battery
  decay → beacon death, per-reader RSSI calibration drift, and
  delayed/reordered record delivery.
* :class:`~repro.faults.plan.FaultPlan` — a seeded, immutable schedule
  composing any number of fault models. The same ``(plan, seed)`` pair
  always produces the same injected fault sequence.
* :class:`~repro.faults.injector.FaultInjector` — applies a compiled
  plan on the simulator's record path
  (:meth:`~repro.hardware.simulator.TestbedSimulator.set_fault_injector`),
  i.e. *between* ``Reader.receive`` and middleware/sink delivery. The RF
  channel's bit-exact behaviour is untouched: with an empty plan (or no
  injector) every downstream output is bit-identical to a fault-free
  run.

Layering: ``faults`` sits beside ``hardware`` and below ``service``; it
imports neither. The service layer composes it (chaos sessions, health
tracking) through the simulator hook.
"""

from .models import (
    BurstLossFault,
    CalibrationDriftFault,
    DelayFault,
    FaultModel,
    ReaderOutageFault,
    SlowZoneFault,
    TagDeathFault,
    WorkerHangFault,
    ZoneCrashFault,
    ZoneLinkLossFault,
    is_zone_fault,
)
from .plan import FaultPlan, chaos_preset, zone_chaos_preset
from .injector import FaultEvent, FaultInjector
from .crash import CrashPoint, SimulatedCrash

__all__ = [
    "FaultModel",
    "ReaderOutageFault",
    "BurstLossFault",
    "TagDeathFault",
    "CalibrationDriftFault",
    "DelayFault",
    "ZoneCrashFault",
    "WorkerHangFault",
    "ZoneLinkLossFault",
    "SlowZoneFault",
    "is_zone_fault",
    "FaultPlan",
    "chaos_preset",
    "zone_chaos_preset",
    "FaultEvent",
    "FaultInjector",
    "CrashPoint",
    "SimulatedCrash",
]
