"""The fault injector: applies a compiled plan on the record path.

:class:`FaultInjector` sits between ``Reader.receive`` and record
delivery (middleware or record sink) via
:meth:`~repro.hardware.simulator.TestbedSimulator.set_fault_injector`.
Records flow through the plan's faults in order; survivors come out
immediately, delayed records are buffered in a deterministic
``(release_time, sequence)``-ordered heap and released as simulation
time passes.

Accounting: the injector counts records seen / dropped / modified /
delayed (optionally mirrored into a metrics registry) and keeps a full
:class:`FaultEvent` trail of every state transition, which doubles as
the determinism witness in tests (same seed ⇒ identical event list).

Fast path guarantee: with an *empty* plan the injector forwards every
record untouched and draws no randomness — downstream output is
bit-identical to running without an injector at all.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from ..exceptions import ConfigurationError
from ..hardware.readers import ReadingRecord
from ..utils.logging import get_structured_logger, log_event
from .models import is_zone_fault
from .plan import FaultPlan

if TYPE_CHECKING:  # service-layer type only; no runtime dependency
    from ..service.metrics import MetricsRegistry

__all__ = ["FaultEvent", "FaultInjector"]

_LOGGER_NAME = "repro.faults"


@dataclass(frozen=True)
class FaultEvent:
    """One fault-state transition (outage start, tag death, ...)."""

    time_s: float
    kind: str
    fields: Mapping[str, Any]

    def as_tuple(self) -> tuple:
        """Hashable summary used by the determinism tests."""
        return (round(self.time_s, 9), self.kind, tuple(sorted(self.fields.items())))


class FaultInjector:
    """Applies a :class:`~repro.faults.plan.FaultPlan` to reading records.

    Parameters
    ----------
    plan:
        The fault plan; compiled once at construction.
    metrics:
        Optional :class:`~repro.service.metrics.MetricsRegistry` (duck
        typed — anything with ``counter(name, help)``) mirroring the
        injector's counters as ``faults_records_*_total``.
    """

    def __init__(self, plan: FaultPlan, *, metrics: "MetricsRegistry | None" = None):
        for fault in plan:
            if is_zone_fault(fault):
                raise ConfigurationError(
                    f"{type(fault).__name__} is a zone-scoped control-plane "
                    f"fault; it is consumed by the zone gateway "
                    f"(repro.zones.failover), not the record-path injector"
                )
        self.plan = plan
        self._faults = plan.compile()
        self._logger = get_structured_logger(_LOGGER_NAME)
        self._delayed: list[tuple[float, int, ReadingRecord]] = []
        self._seq = 0
        self._now = 0.0
        self.records_seen = 0
        self.records_dropped = 0
        self.records_modified = 0
        self.records_delayed = 0
        self.events: list[FaultEvent] = []
        self._metrics = metrics
        if metrics is not None:
            self._c_seen = metrics.counter(
                "faults_records_seen_total", "Records entering the fault injector"
            )
            self._c_dropped = metrics.counter(
                "faults_records_dropped_total", "Records dropped by injected faults"
            )
            self._c_modified = metrics.counter(
                "faults_records_modified_total",
                "Records with fault-modified RSSI",
            )
            self._c_delayed = metrics.counter(
                "faults_records_delayed_total",
                "Records buffered for delayed delivery",
            )
            self._c_events = metrics.counter(
                "faults_transitions_total", "Fault state transitions"
            )

    # -- event trail ---------------------------------------------------------

    def _emit(self, kind: str, **fields) -> None:
        self.events.append(FaultEvent(time_s=self._now, kind=kind, fields=fields))
        if self._metrics is not None:
            self._c_events.inc()
        log_event(self._logger, kind, t=self._now, **fields)

    # -- the record path -----------------------------------------------------

    def process(self, record: ReadingRecord, now_s: float) -> list[ReadingRecord]:
        """Run one record through the plan; returns records due *now*.

        The returned list contains any previously delayed records whose
        release time has arrived (oldest first), followed by this record
        if it survived without delay. Dropped records return nothing;
        delayed records surface from a later call or :meth:`release_due`.
        """
        self._now = float(now_s)
        self.records_seen += 1
        if self._metrics is not None:
            self._c_seen.inc()
        out = self.release_due(now_s)
        if not self._faults:  # empty plan: pristine fast path
            out.append(record)
            return out

        pending: list[tuple[float, ReadingRecord]] = [(now_s, record)]
        for fault in self._faults:
            next_pending: list[tuple[float, ReadingRecord]] = []
            for release_s, rec in pending:
                results = fault.apply(rec, release_s, self._emit)
                if not results:
                    self.records_dropped += 1
                    if self._metrics is not None:
                        self._c_dropped.inc()
                for out_release, out_rec in results:
                    if out_rec.rssi_dbm != rec.rssi_dbm:
                        self.records_modified += 1
                        if self._metrics is not None:
                            self._c_modified.inc()
                    next_pending.append((max(out_release, release_s), out_rec))
            pending = next_pending
            if not pending:
                break

        for release_s, rec in pending:
            if release_s <= now_s:
                out.append(rec)
            else:
                self.records_delayed += 1
                if self._metrics is not None:
                    self._c_delayed.inc()
                heapq.heappush(self._delayed, (release_s, self._seq, rec))
                self._seq += 1
        return out

    def release_due(self, now_s: float) -> list[ReadingRecord]:
        """Delayed records whose release time has arrived, oldest first."""
        out: list[ReadingRecord] = []
        while self._delayed and self._delayed[0][0] <= now_s:
            out.append(heapq.heappop(self._delayed)[2])
        return out

    def flush(self) -> list[ReadingRecord]:
        """Release *everything* still buffered (end of run)."""
        out = [rec for _, _, rec in sorted(self._delayed)]
        self._delayed.clear()
        return out

    @property
    def pending_delayed(self) -> int:
        """Records currently held back by delay faults."""
        return len(self._delayed)

    def counters(self) -> dict[str, int]:
        """Snapshot of the injector's accounting."""
        return {
            "seen": self.records_seen,
            "dropped": self.records_dropped,
            "modified": self.records_modified,
            "delayed": self.records_delayed,
            "pending_delayed": self.pending_delayed,
            "transitions": len(self.events),
        }

    def __repr__(self) -> str:
        return (
            f"FaultInjector(faults={len(self.plan)}, seed={self.plan.seed}, "
            f"seen={self.records_seen}, dropped={self.records_dropped})"
        )
