"""Fault plans: seeded, immutable compositions of fault models.

A :class:`FaultPlan` is the unit of reproducibility for chaos work: the
same plan compiled with the same seed yields the same injected fault
schedule, record for record. Per-fault RNG streams are derived with
:func:`repro.utils.rng.derive_rng` under ``("fault", index, class name)``
keys, so editing one fault never perturbs another's draws.

:func:`chaos_preset` provides the named intensity levels the ``repro
chaos`` CLI and the resilience benchmark sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..exceptions import ConfigurationError
from ..utils.rng import derive_rng
from .models import (
    BurstLossFault,
    CalibrationDriftFault,
    CompiledFault,
    DelayFault,
    FaultModel,
    ReaderOutageFault,
    SlowZoneFault,
    TagDeathFault,
    WorkerHangFault,
    ZoneCrashFault,
    ZoneLinkLossFault,
)

__all__ = [
    "FaultPlan",
    "chaos_preset",
    "CHAOS_PRESETS",
    "zone_chaos_preset",
    "ZONE_CHAOS_PRESETS",
]


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable collection of fault models plus a seed.

    Parameters
    ----------
    faults:
        The fault models, applied to each record in order (a record
        dropped by fault *i* never reaches fault *i+1*).
    seed:
        Master seed of every per-fault RNG stream.
    """

    faults: tuple[FaultModel, ...] = ()
    seed: int = 0

    def __init__(self, faults: Sequence[FaultModel] = (), seed: int = 0):
        object.__setattr__(self, "faults", tuple(faults))
        object.__setattr__(self, "seed", int(seed))
        for fault in self.faults:
            if not hasattr(fault, "compile"):
                raise ConfigurationError(
                    f"{fault!r} is not a fault model (no compile())"
                )

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[FaultModel]:
        return iter(self.faults)

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not self.faults

    def with_fault(self, fault: FaultModel) -> "FaultPlan":
        """A new plan with ``fault`` appended."""
        return FaultPlan(self.faults + (fault,), seed=self.seed)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same faults under a different seed."""
        return FaultPlan(self.faults, seed=seed)

    def compile(self) -> list[CompiledFault]:
        """Bind every fault to its derived RNG stream.

        Each call returns *fresh* state, so one plan can drive many
        independent, identically-faulted runs.
        """
        return [
            fault.compile(
                derive_rng(self.seed, "fault", i, type(fault).__name__)
            )
            for i, fault in enumerate(self.faults)
        ]

    def describe(self) -> list[str]:
        """One human-readable line per fault (CLI/debug)."""
        return [repr(fault) for fault in self.faults]


# ---------------------------------------------------------------------------
# Named intensity presets (CLI + resilience benchmark)
# ---------------------------------------------------------------------------

CHAOS_PRESETS = ("none", "light", "moderate", "severe", "drift")


def chaos_preset(
    name: str,
    *,
    seed: int = 0,
    start_s: float = 5.0,
    duration_s: float = math.inf,
) -> FaultPlan:
    """A named fault-intensity level over the paper's 4-reader testbed.

    Parameters
    ----------
    name:
        ``"none"`` — empty plan (bit-identical control);
        ``"light"`` — mild burst loss on one reader;
        ``"moderate"`` — a solid single-reader outage plus burst loss
        and one reference-tag death;
        ``"severe"`` — a solid outage, a flapping second reader, heavy
        burst loss, calibration drift and delayed delivery;
        ``"drift"`` — the calibration stress level: three readers drift
        at staggered onsets (one with a step recalibration mid-run) and
        one reference tag browns out, dies and recovers after a battery
        swap. No outages or record loss — every record arrives, some of
        them *wrong*, which is exactly the failure mode the
        :mod:`repro.calibration` loop exists to heal.
    seed:
        Plan seed (drives the stochastic faults).
    start_s:
        When the scheduled faults begin (after warm-up, typically).
    duration_s:
        Length of the scheduled outage windows.
    """
    if name not in CHAOS_PRESETS:
        raise ConfigurationError(
            f"unknown chaos preset {name!r}; expected one of {CHAOS_PRESETS}"
        )
    if name == "none":
        return FaultPlan(seed=seed)
    if name == "light":
        return FaultPlan(
            [
                BurstLossFault(
                    reader_id="reader-1",
                    p_enter_bad=0.05,
                    p_exit_bad=0.5,
                    loss_bad=0.6,
                    start_s=start_s,
                    duration_s=duration_s,
                ),
            ],
            seed=seed,
        )
    if name == "moderate":
        return FaultPlan(
            [
                ReaderOutageFault(
                    "reader-0", start_s=start_s, duration_s=duration_s
                ),
                BurstLossFault(
                    reader_id="reader-2",
                    p_enter_bad=0.08,
                    p_exit_bad=0.4,
                    loss_bad=0.8,
                    start_s=start_s,
                    duration_s=duration_s,
                ),
                TagDeathFault("ref-5", death_time_s=start_s + 4.0),
            ],
            seed=seed,
        )
    if name == "drift":
        # Calibration-stress preset: staggered multi-reader drift (one
        # reader gets an ops recalibration step mid-run) plus one
        # decaying reference tag that dies and later gets a battery
        # swap. Deliberately no outages and no record loss — the lattice
        # keeps *looking* healthy while its values rot, so only the
        # closed calibration loop can tell.
        return FaultPlan(
            [
                CalibrationDriftFault(
                    "reader-0",
                    drift_db_per_s=0.30,
                    start_s=start_s,
                    max_drift_db=9.0,
                ),
                CalibrationDriftFault(
                    "reader-1",
                    drift_db_per_s=-0.20,
                    start_s=start_s + 4.0,
                    max_drift_db=7.0,
                ),
                CalibrationDriftFault(
                    "reader-2",
                    drift_db_per_s=0.25,
                    start_s=start_s + 8.0,
                    max_drift_db=6.0,
                    reset_at_s=start_s + 24.0,
                ),
                TagDeathFault(
                    "ref-5",
                    death_time_s=start_s + 8.0,
                    decay_db_per_s=4.0,
                    decay_duration_s=8.0,
                    recovery_time_s=start_s + 31.0,
                ),
            ],
            seed=seed,
        )
    # severe
    return FaultPlan(
        [
            ReaderOutageFault("reader-0", start_s=start_s, duration_s=duration_s),
            ReaderOutageFault(
                "reader-3",
                start_s=start_s,
                duration_s=duration_s,
                flapping_period_s=6.0,
                flap_duty=0.5,
            ),
            BurstLossFault(
                p_enter_bad=0.1,
                p_exit_bad=0.3,
                loss_bad=0.9,
                start_s=start_s,
                duration_s=duration_s,
            ),
            TagDeathFault("ref-5", death_time_s=start_s + 4.0),
            TagDeathFault(
                "ref-10",
                death_window_s=(start_s, start_s + 20.0),
                decay_db_per_s=0.5,
                decay_duration_s=5.0,
            ),
            CalibrationDriftFault(
                "reader-1", drift_db_per_s=0.05, start_s=start_s,
                max_drift_db=6.0,
            ),
            DelayFault(reader_id="reader-2", delay_s=1.0, jitter_s=2.0),
        ],
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Zone-level chaos presets (control-plane faults for the multi-zone gateway)
# ---------------------------------------------------------------------------

ZONE_CHAOS_PRESETS = ("none", "crash", "hang", "partition", "brownout")


def zone_chaos_preset(
    name: str,
    *,
    zone_id: str = "z0",
    seed: int = 0,
    start_s: float = 10.0,
    duration_s: float = 10.0,
) -> FaultPlan:
    """A named zone-level failure scenario for ``repro chaos --zones``.

    Unlike :func:`chaos_preset` these faults live on the *control plane*
    (the gateway→worker call path of one zone), not the record stream —
    they are consumed by :class:`~repro.zones.failover.ZoneChannel` and
    rejected by :class:`~repro.faults.injector.FaultInjector`.

    Parameters
    ----------
    name:
        ``"none"`` — empty plan (bit-identical control);
        ``"crash"`` — one zone worker dies at ``start_s`` (kill −9);
        ``"hang"`` — one zone worker wedges at ``start_s``;
        ``"partition"`` — the gateway↔worker link drops for the window;
        ``"brownout"`` — one zone runs slow for the window (triggers
        cross-zone load shedding).
    zone_id:
        Which zone the fault targets.
    seed:
        Plan seed (zone faults are scheduled, so this only matters if
        record-path faults are composed in afterwards).
    start_s:
        Relative (post-warm-up) time the fault begins.
    duration_s:
        Window length of ``partition``/``brownout``; ignored by the
        one-shot ``crash``/``hang``.
    """
    if name not in ZONE_CHAOS_PRESETS:
        raise ConfigurationError(
            f"unknown zone chaos preset {name!r}; "
            f"expected one of {ZONE_CHAOS_PRESETS}"
        )
    if name == "none":
        return FaultPlan(seed=seed)
    if name == "crash":
        return FaultPlan([ZoneCrashFault(zone_id, at_s=start_s)], seed=seed)
    if name == "hang":
        return FaultPlan([WorkerHangFault(zone_id, at_s=start_s)], seed=seed)
    if name == "partition":
        return FaultPlan(
            [ZoneLinkLossFault(zone_id, start_s=start_s, duration_s=duration_s)],
            seed=seed,
        )
    # brownout
    return FaultPlan(
        [SlowZoneFault(zone_id, start_s=start_s, duration_s=duration_s)],
        seed=seed,
    )
