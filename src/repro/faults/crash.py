"""Crash injection: kill a streaming session at a scheduled tick.

The faults subpackage models failures of the *world* (readers, tags,
channel); this module models failure of the *harness itself* — the
process serving the session dying mid-run. :class:`CrashPoint` is the
deterministic stand-in for ``kill -9`` used by the recovery tests, the
CI crash-recovery smoke job and ``repro serve --kill-at``: when the
session's dispatcher passes the scheduled simulated time, the hook
raises :class:`SimulatedCrash` *without* draining the batcher or writing
a final checkpoint — exactly the state a hard kill leaves behind, so a
resume exercises the real write-ahead recovery path (the last committed
snapshot, not a polite shutdown snapshot).

Determinism: the crash fires at a tick boundary of the seeded service
clock, so two runs with the same seed crash at the same point with the
same checkpoint contents.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError, SimulationError

__all__ = ["CrashPoint", "SimulatedCrash"]


class SimulatedCrash(SimulationError):
    """Raised by a :class:`CrashPoint` when its scheduled time arrives.

    Deliberately *not* caught by the session's graceful-shutdown path:
    a simulated crash must leave exactly what a real crash would — a
    write-ahead checkpoint whose last snapshot is the recovery point.
    """


@dataclass(frozen=True)
class CrashPoint:
    """A scheduled hard kill of the session process.

    Parameters
    ----------
    at_s:
        Absolute simulated time (service clock) at which the session
        dies. The crash fires at the first dispatcher tick whose time is
        ``>= at_s``, after that tick's results were served (and WAL-
        logged) but before any further checkpointing.
    """

    at_s: float

    def __post_init__(self) -> None:
        if not self.at_s >= 0:
            raise ConfigurationError(
                f"at_s must be >= 0, got {self.at_s}"
            )

    def due(self, now_s: float) -> bool:
        """Whether the session should die at tick ``now_s``."""
        return now_s >= self.at_s

    def fire(self, now_s: float) -> None:
        """Raise :class:`SimulatedCrash` if the crash is due."""
        if self.due(now_s):
            raise SimulatedCrash(
                f"simulated crash at t={now_s:g}s "
                f"(scheduled at t={self.at_s:g}s)"
            )
