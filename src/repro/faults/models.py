"""Composable, seeded fault models for the record path.

Every model is a frozen dataclass (a pure *description*) with a
:meth:`~FaultModel.compile` method that binds it to a named RNG stream
and returns a stateful :class:`CompiledFault`. Compiled faults transform
one :class:`~repro.hardware.readers.ReadingRecord` at a time:

``apply(record, now, emit) -> list[(release_time_s, record)]``

* ``[]`` — the record was dropped by the fault;
* ``[(now, record)]`` — passed through (possibly with modified RSSI);
* ``[(now + d, record)]`` — delayed delivery (the injector buffers it).

``emit(kind, **fields)`` reports state transitions (outage start/end,
burst-state changes, tag deaths) so the injector can log and count them.

Determinism contract: a compiled fault consumes randomness only from the
generator handed to it at compile time, which the
:class:`~repro.faults.plan.FaultPlan` derives per-fault from the plan
seed — so adding a fault to a plan never perturbs the draws of another,
and the same seed always reproduces the same fault schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from ..exceptions import ConfigurationError
from ..hardware.readers import ReadingRecord

__all__ = [
    "Emit",
    "CompiledFault",
    "FaultModel",
    "ReaderOutageFault",
    "BurstLossFault",
    "TagDeathFault",
    "CalibrationDriftFault",
    "DelayFault",
    "ZONE_SCOPE",
    "ZoneCrashFault",
    "WorkerHangFault",
    "ZoneLinkLossFault",
    "SlowZoneFault",
    "is_zone_fault",
]

#: Callback signature used by compiled faults to report transitions.
Emit = Callable[..., None]


@runtime_checkable
class CompiledFault(Protocol):
    """A stateful fault bound to its RNG stream."""

    #: the immutable model this state was compiled from
    model: "FaultModel"

    def apply(
        self, record: ReadingRecord, now_s: float, emit: Emit
    ) -> list[tuple[float, ReadingRecord]]:
        """Transform one record; see module docstring for the contract."""
        ...


@runtime_checkable
class FaultModel(Protocol):
    """The immutable description of one fault."""

    def compile(self, rng: np.random.Generator) -> CompiledFault:
        """Bind the model to an RNG stream, returning mutable state."""
        ...


def _ensure_time(value: float, name: str) -> float:
    v = float(value)
    if not math.isfinite(v) or v < 0:
        raise ConfigurationError(f"{name} must be finite and >= 0, got {value}")
    return v


def _ensure_prob(value: float, name: str) -> float:
    v = float(value)
    if not (0.0 <= v <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return v


# ---------------------------------------------------------------------------
# Scheduled reader outage / flapping
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReaderOutageFault:
    """A reader goes dark for a scheduled window, optionally flapping.

    Parameters
    ----------
    reader_id:
        The reader whose records are suppressed.
    start_s / duration_s:
        The outage window ``[start, start + duration)`` in simulation
        seconds. ``duration_s=math.inf`` models a permanent failure.
    flapping_period_s:
        If set, the reader *flaps* inside the window instead of staying
        dark: each period starts with ``flap_duty`` of down-time followed
        by up-time. ``None`` (default) = solid outage.
    flap_duty:
        Fraction of each flapping period spent down.
    """

    reader_id: str
    start_s: float
    duration_s: float
    flapping_period_s: float | None = None
    flap_duty: float = 0.5

    def __post_init__(self) -> None:
        if not self.reader_id:
            raise ConfigurationError("reader_id must be non-empty")
        _ensure_time(self.start_s, "start_s")
        if not self.duration_s > 0:
            raise ConfigurationError(
                f"duration_s must be positive, got {self.duration_s}"
            )
        if self.flapping_period_s is not None and not self.flapping_period_s > 0:
            raise ConfigurationError(
                f"flapping_period_s must be positive, got {self.flapping_period_s}"
            )
        _ensure_prob(self.flap_duty, "flap_duty")

    def down_at(self, now_s: float) -> bool:
        """Whether the reader is dark at ``now_s`` (pure, deterministic)."""
        if not (self.start_s <= now_s < self.start_s + self.duration_s):
            return False
        if self.flapping_period_s is None:
            return True
        phase = (now_s - self.start_s) % self.flapping_period_s
        return phase < self.flap_duty * self.flapping_period_s

    def compile(self, rng: np.random.Generator) -> "_CompiledOutage":
        del rng  # fully scheduled: no randomness
        return _CompiledOutage(self)


class _CompiledOutage:
    def __init__(self, model: ReaderOutageFault):
        self.model = model
        self._was_down = False

    def apply(self, record, now_s, emit):
        if record.reader_id != self.model.reader_id:
            return [(now_s, record)]
        down = self.model.down_at(now_s)
        if down != self._was_down:
            self._was_down = down
            emit(
                "reader_outage_start" if down else "reader_outage_end",
                reader=self.model.reader_id,
            )
        return [] if down else [(now_s, record)]


# ---------------------------------------------------------------------------
# Gilbert–Elliott burst packet loss
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BurstLossFault:
    """Bursty frame loss via the Gilbert–Elliott two-state Markov chain.

    The channel alternates between a *good* state (loss probability
    ``loss_good``) and a *bad* state (``loss_bad``); per matching record
    the chain transitions good→bad with ``p_enter_bad`` and bad→good
    with ``p_exit_bad``. The classic parametrization reproduces the
    bursty (not i.i.d.) losses of congested RF environments.

    Parameters
    ----------
    reader_id:
        Restrict to one reader; ``None`` applies to every record.
    p_enter_bad / p_exit_bad:
        Markov transition probabilities (per record observed).
    loss_bad / loss_good:
        Drop probability while in each state.
    start_s / duration_s:
        Active window; defaults to always-on.
    """

    reader_id: str | None = None
    p_enter_bad: float = 0.05
    p_exit_bad: float = 0.4
    loss_bad: float = 0.9
    loss_good: float = 0.0
    start_s: float = 0.0
    duration_s: float = math.inf

    def __post_init__(self) -> None:
        _ensure_prob(self.p_enter_bad, "p_enter_bad")
        _ensure_prob(self.p_exit_bad, "p_exit_bad")
        _ensure_prob(self.loss_bad, "loss_bad")
        _ensure_prob(self.loss_good, "loss_good")
        _ensure_time(self.start_s, "start_s")
        if not self.duration_s > 0:
            raise ConfigurationError(
                f"duration_s must be positive, got {self.duration_s}"
            )

    def compile(self, rng: np.random.Generator) -> "_CompiledBurstLoss":
        return _CompiledBurstLoss(self, rng)


class _CompiledBurstLoss:
    def __init__(self, model: BurstLossFault, rng: np.random.Generator):
        self.model = model
        self._rng = rng
        self._bad = False

    def apply(self, record, now_s, emit):
        m = self.model
        if m.reader_id is not None and record.reader_id != m.reader_id:
            return [(now_s, record)]
        if not (m.start_s <= now_s < m.start_s + m.duration_s):
            return [(now_s, record)]
        # Transition first (per observed record), then sample the loss.
        u_transition = self._rng.random()
        if self._bad:
            if u_transition < m.p_exit_bad:
                self._bad = False
                emit("burst_state_good", reader=record.reader_id)
        else:
            if u_transition < m.p_enter_bad:
                self._bad = True
                emit("burst_state_bad", reader=record.reader_id)
        loss_p = m.loss_bad if self._bad else m.loss_good
        if loss_p > 0.0 and self._rng.random() < loss_p:
            return []
        return [(now_s, record)]


# ---------------------------------------------------------------------------
# Tag battery decay -> beacon death (also: reference-tag failure)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TagDeathFault:
    """A tag's battery decays and eventually dies.

    Before death the transmit power sags (RSSI reduced by
    ``decay_db_per_s`` times the time spent in the decay window); at the
    death time every subsequent record of the tag is suppressed — the
    middleware then sees the series go stale exactly as with a real dead
    battery. Pointing this at a ``ref-*`` id models *reference-tag
    failure*, the hardest partial-input case for VIRE.

    Parameters
    ----------
    tag_id:
        The dying tag.
    death_time_s:
        Exact death time; ``None`` draws it uniformly from
        ``death_window_s`` at compile time (seeded → reproducible).
    death_window_s:
        ``(lo, hi)`` window for the random draw.
    decay_db_per_s:
        RSSI sag rate during the ``decay_duration_s`` before death.
    decay_duration_s:
        Length of the brown-out ramp preceding death.
    recovery_time_s:
        Optional battery swap: at this instant the tag resumes beaconing
        at full power (no sag — fresh battery) and a ``tag_recovery``
        event is emitted. Must be strictly after the death time; with a
        random death draw, after the whole ``death_window_s``. Lets
        fault-end recovery — e.g. a quarantined reference tag being
        readmitted (:mod:`repro.calibration`) — be exercised
        deterministically.
    """

    tag_id: str
    death_time_s: float | None = None
    death_window_s: tuple[float, float] = (30.0, 120.0)
    decay_db_per_s: float = 0.0
    decay_duration_s: float = 0.0
    recovery_time_s: float | None = None

    def __post_init__(self) -> None:
        if not self.tag_id:
            raise ConfigurationError("tag_id must be non-empty")
        if self.death_time_s is not None:
            _ensure_time(self.death_time_s, "death_time_s")
        lo, hi = self.death_window_s
        if not (0 <= lo <= hi):
            raise ConfigurationError(
                f"death_window_s must satisfy 0 <= lo <= hi, got {self.death_window_s}"
            )
        if self.decay_db_per_s < 0:
            raise ConfigurationError(
                f"decay_db_per_s must be >= 0, got {self.decay_db_per_s}"
            )
        _ensure_time(self.decay_duration_s, "decay_duration_s")
        if self.recovery_time_s is not None:
            _ensure_time(self.recovery_time_s, "recovery_time_s")
            death_bound = (
                self.death_time_s if self.death_time_s is not None else hi
            )
            if self.recovery_time_s <= death_bound:
                raise ConfigurationError(
                    f"recovery_time_s must be > the death time "
                    f"({death_bound}), got {self.recovery_time_s}"
                )

    def compile(self, rng: np.random.Generator) -> "_CompiledTagDeath":
        if self.death_time_s is not None:
            death = float(self.death_time_s)
        else:
            lo, hi = self.death_window_s
            death = float(rng.uniform(lo, hi))
        return _CompiledTagDeath(self, death)


class _CompiledTagDeath:
    def __init__(self, model: TagDeathFault, death_time_s: float):
        self.model = model
        self.death_time_s = death_time_s
        self._announced = False
        self._recovered = False

    def apply(self, record, now_s, emit):
        m = self.model
        if record.tag_id != m.tag_id:
            return [(now_s, record)]
        if m.recovery_time_s is not None and now_s >= m.recovery_time_s:
            # Battery swapped: full power again, no sag.
            if not self._recovered:
                self._recovered = True
                emit(
                    "tag_recovery",
                    tag=m.tag_id,
                    recovery_t=float(m.recovery_time_s),
                )
            return [(now_s, record)]
        if now_s >= self.death_time_s:
            if not self._announced:
                self._announced = True
                emit("tag_death", tag=m.tag_id, death_t=self.death_time_s)
            return []
        decay_start = self.death_time_s - m.decay_duration_s
        if m.decay_db_per_s > 0.0 and now_s > decay_start:
            sag = m.decay_db_per_s * (now_s - decay_start)
            record = ReadingRecord(
                reader_id=record.reader_id,
                tag_id=record.tag_id,
                time_s=record.time_s,
                rssi_dbm=record.rssi_dbm - sag,
            )
        return [(now_s, record)]


# ---------------------------------------------------------------------------
# Per-reader RSSI calibration drift
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CalibrationDriftFault:
    """A reader's RSSI calibration drifts linearly over time.

    Models thermal drift / aging of the receiver front-end: from
    ``start_s`` on, every record of ``reader_id`` gains
    ``drift_db_per_s * elapsed`` dB of systematic bias (clamped at
    ``max_drift_db``) plus optional Gaussian calibration jitter.

    ``reset_at_s`` models a *step recalibration* — an operator zeroes
    the reader's bias at that instant (the accumulated drift vanishes in
    one step), after which the same aging process resumes from zero.
    The discontinuity is what makes a corrector's re-convergence after
    an ops recalibration testable (:mod:`repro.calibration`).
    """

    reader_id: str
    drift_db_per_s: float
    start_s: float = 0.0
    max_drift_db: float | None = None
    jitter_db: float = 0.0
    reset_at_s: float | None = None

    def __post_init__(self) -> None:
        if not self.reader_id:
            raise ConfigurationError("reader_id must be non-empty")
        if not math.isfinite(self.drift_db_per_s):
            raise ConfigurationError(
                f"drift_db_per_s must be finite, got {self.drift_db_per_s}"
            )
        _ensure_time(self.start_s, "start_s")
        if self.max_drift_db is not None and self.max_drift_db < 0:
            raise ConfigurationError(
                f"max_drift_db must be >= 0, got {self.max_drift_db}"
            )
        if self.jitter_db < 0:
            raise ConfigurationError(
                f"jitter_db must be >= 0, got {self.jitter_db}"
            )
        if self.reset_at_s is not None:
            _ensure_time(self.reset_at_s, "reset_at_s")
            if self.reset_at_s <= self.start_s:
                raise ConfigurationError(
                    f"reset_at_s must be > start_s ({self.start_s}), "
                    f"got {self.reset_at_s}"
                )

    def bias_at(self, now_s: float) -> float:
        """Deterministic bias component at ``now_s``.

        A ``reset_at_s`` recalibration moves the drift origin: at and
        after the reset the accumulated bias is zeroed and aging
        restarts from the reset instant.
        """
        origin = self.start_s
        if self.reset_at_s is not None and now_s >= self.reset_at_s:
            origin = self.reset_at_s
        if now_s <= origin:
            return 0.0
        bias = self.drift_db_per_s * (now_s - origin)
        if self.max_drift_db is not None:
            bias = max(-self.max_drift_db, min(self.max_drift_db, bias))
        return bias

    def compile(self, rng: np.random.Generator) -> "_CompiledDrift":
        return _CompiledDrift(self, rng)


class _CompiledDrift:
    def __init__(self, model: CalibrationDriftFault, rng: np.random.Generator):
        self.model = model
        self._rng = rng
        self._reset_announced = False

    def apply(self, record, now_s, emit):
        m = self.model
        if record.reader_id != m.reader_id:
            return [(now_s, record)]
        if (
            m.reset_at_s is not None
            and now_s >= m.reset_at_s
            and not self._reset_announced
        ):
            self._reset_announced = True
            emit(
                "calibration_reset",
                reader=m.reader_id,
                reset_t=float(m.reset_at_s),
            )
        delta = m.bias_at(now_s)
        if m.jitter_db > 0.0:
            delta += float(self._rng.normal(0.0, m.jitter_db))
        if delta == 0.0:
            return [(now_s, record)]
        return [
            (
                now_s,
                ReadingRecord(
                    reader_id=record.reader_id,
                    tag_id=record.tag_id,
                    time_s=record.time_s,
                    rssi_dbm=record.rssi_dbm + delta,
                ),
            )
        ]


# ---------------------------------------------------------------------------
# Delayed / reordered record delivery
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DelayFault:
    """Middleware-path latency: records arrive late and possibly reordered.

    Each matching record is held back ``delay_s`` plus a uniform random
    extra of up to ``jitter_s``; when the jitter exceeds the inter-record
    spacing, delivery order genuinely inverts — exactly the reordering a
    congested collection network produces. The record's *measurement*
    timestamp is untouched, so middleware freshness accounting sees the
    data as old as it truly is.

    Parameters
    ----------
    reader_id:
        Restrict to one reader; ``None`` delays everything.
    delay_s / jitter_s:
        Base delay and uniform jitter bound (seconds).
    """

    reader_id: str | None = None
    delay_s: float = 1.0
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        _ensure_time(self.delay_s, "delay_s")
        _ensure_time(self.jitter_s, "jitter_s")
        if self.delay_s == 0.0 and self.jitter_s == 0.0:
            raise ConfigurationError("DelayFault with zero delay is a no-op")

    def compile(self, rng: np.random.Generator) -> "_CompiledDelay":
        return _CompiledDelay(self, rng)


class _CompiledDelay:
    def __init__(self, model: DelayFault, rng: np.random.Generator):
        self.model = model
        self._rng = rng

    def apply(self, record, now_s, emit):
        m = self.model
        if m.reader_id is not None and record.reader_id != m.reader_id:
            return [(now_s, record)]
        delay = m.delay_s
        if m.jitter_s > 0.0:
            delay += float(self._rng.uniform(0.0, m.jitter_s))
        return [(now_s + delay, record)]


# ---------------------------------------------------------------------------
# Zone-scoped control-plane faults (consumed by the zone gateway)
# ---------------------------------------------------------------------------

#: ``scope`` value marking a fault as *control-plane*: it disturbs the
#: gateway→worker call path of one zone, never the record stream. The
#: record-path machinery (:class:`~repro.faults.injector.FaultInjector`,
#: :func:`~repro.zones.spec.slice_fault_plan`) must never apply these.
ZONE_SCOPE = "zone"


def is_zone_fault(fault: object) -> bool:
    """True when ``fault`` is a zone-scoped control-plane fault."""
    return getattr(fault, "scope", "record") == ZONE_SCOPE


def _ensure_zone(zone_id: str) -> None:
    if not zone_id:
        raise ConfigurationError("zone_id must be non-empty")


@dataclass(frozen=True)
class ZoneCrashFault:
    """One zone worker dies (the kill −9 of the scale-out layer).

    The first gateway→worker call at relative time τ ≥ ``at_s`` finds
    the worker dead: its process is gone, mid-write WAL state and all.
    With failover enabled the gateway respawns the zone from its
    checkpoint and replays the gap deterministically; with failover
    disabled the zone stays down and the gateway serves interim
    (``zone_down``) answers.

    ``at_s`` is on the gateway's relative clock (τ = 0 at the first
    post-warm-up chunk), matching :class:`~repro.zones.spec.RoamingTag`
    route times.
    """

    zone_id: str
    at_s: float

    scope = ZONE_SCOPE

    def __post_init__(self) -> None:
        _ensure_zone(self.zone_id)
        _ensure_time(self.at_s, "at_s")

    def compile(self, rng: np.random.Generator) -> "_CompiledZoneCrash":
        return _CompiledZoneCrash(self)


class _CompiledZoneCrash:
    def __init__(self, model: ZoneCrashFault):
        self.model = model
        self.fired = False

    def fires_at(self, tau_s: float) -> bool:
        """True exactly once: on the first call with τ ≥ ``at_s``."""
        if self.fired or tau_s < self.model.at_s:
            return False
        self.fired = True
        return True


@dataclass(frozen=True)
class WorkerHangFault:
    """One zone worker wedges: calls block past every deadline.

    From τ ≥ ``at_s`` each gateway→worker call to that *worker
    instance* exceeds its deadline. The gateway charges the retry
    budget (with backoff) and then treats the instance as dead — a hung
    process cannot be un-hung, only killed and respawned. The respawned
    instance is healthy (the hang is instance-level, like a wedged
    event loop), which is what distinguishes this model from
    :class:`ZoneLinkLossFault`.
    """

    zone_id: str
    at_s: float

    scope = ZONE_SCOPE

    def __post_init__(self) -> None:
        _ensure_zone(self.zone_id)
        _ensure_time(self.at_s, "at_s")

    def compile(self, rng: np.random.Generator) -> "_CompiledWorkerHang":
        return _CompiledWorkerHang(self)


class _CompiledWorkerHang:
    def __init__(self, model: WorkerHangFault):
        self.model = model
        self.fired = False

    def fires_at(self, tau_s: float) -> bool:
        """True exactly once: on the first call with τ ≥ ``at_s``."""
        if self.fired or tau_s < self.model.at_s:
            return False
        self.fired = True
        return True


@dataclass(frozen=True)
class ZoneLinkLossFault:
    """The gateway↔worker link drops for a scheduled window.

    Calls during ``[start_s, start_s + duration_s)`` (relative clock)
    fail transiently — the worker is alive but unreachable, so retries
    inside the window keep failing. The gateway lets the zone fall
    behind (skew) and catches it up deterministically once the link
    returns: chunks are pulled in order from the zone's own stream, so
    late processing changes *when* answers appear, never what they are.
    """

    zone_id: str
    start_s: float
    duration_s: float

    scope = ZONE_SCOPE

    def __post_init__(self) -> None:
        _ensure_zone(self.zone_id)
        _ensure_time(self.start_s, "start_s")
        v = float(self.duration_s)
        if not v > 0:
            raise ConfigurationError(
                f"duration_s must be > 0, got {self.duration_s}"
            )

    def compile(self, rng: np.random.Generator) -> "_CompiledZoneLinkLoss":
        return _CompiledZoneLinkLoss(self)


class _CompiledZoneLinkLoss:
    def __init__(self, model: ZoneLinkLossFault):
        self.model = model

    def down_at(self, tau_s: float) -> bool:
        m = self.model
        return m.start_s <= tau_s < m.start_s + m.duration_s


@dataclass(frozen=True)
class SlowZoneFault:
    """One zone runs slow for a window: calls succeed but lag.

    During ``[start_s, start_s + duration_s)`` every step call to the
    zone is ``factor``× its normal service time. The gateway marks the
    zone *saturated* for the window — cross-zone load shedding then
    reroutes roaming-tag handoffs away from it — but never fails the
    calls: slow is degraded capacity, not an outage.
    """

    zone_id: str
    start_s: float
    duration_s: float
    factor: float = 4.0

    scope = ZONE_SCOPE

    def __post_init__(self) -> None:
        _ensure_zone(self.zone_id)
        _ensure_time(self.start_s, "start_s")
        if not float(self.duration_s) > 0:
            raise ConfigurationError(
                f"duration_s must be > 0, got {self.duration_s}"
            )
        if not float(self.factor) > 1.0:
            raise ConfigurationError(
                f"factor must be > 1, got {self.factor}"
            )

    def compile(self, rng: np.random.Generator) -> "_CompiledSlowZone":
        return _CompiledSlowZone(self)


class _CompiledSlowZone:
    def __init__(self, model: SlowZoneFault):
        self.model = model

    def slow_at(self, tau_s: float) -> bool:
        m = self.model
        return m.start_s <= tau_s < m.start_s + m.duration_s
