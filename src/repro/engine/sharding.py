"""Process sharding for multi-snapshot engine work.

Multi-snapshot workloads (Monte-Carlo sweeps, replayed traces) are
embarrassingly parallel across snapshots but benefit from *batching
within* a worker: each shard of snapshots is handed to the worker as one
unit so the engine's vectorized kernels amortize over the whole shard.
:func:`map_shards` is the thin dispatcher behind
:class:`~repro.engine.config.EngineConfig` — serial when ``n_jobs`` is
``None``/1 (the reproducible default), a process pool otherwise. Results
come back flattened in input order either way, so parallel runs are
bit-identical to serial ones.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

from ..exceptions import ConfigurationError
from ..obs import current_tracer
from ..utils.parallel import compute_chunksize, resolve_n_jobs
from .config import EngineConfig

T = TypeVar("T")

__all__ = ["compute_shards", "map_shards"]


def compute_shards(
    n_items: int, config: EngineConfig | None = None
) -> list[range]:
    """Partition ``range(n_items)`` into contiguous shards.

    Shard size follows ``config.shard_size`` when given; otherwise
    :func:`repro.utils.parallel.compute_chunksize` picks one that keeps
    roughly four shards in flight per worker (serial runs get a single
    shard — no reason to split work nobody will overlap).
    """
    if isinstance(n_items, bool) or not isinstance(n_items, int):
        # bool passes a bare isinstance(…, int) check; reject explicitly
        # (compute_shards(True) silently meaning "one item" hid bugs).
        raise ConfigurationError(
            f"n_items must be an integer (bool not allowed), got {n_items!r}"
        )
    if n_items < 0:
        raise ConfigurationError(f"n_items must be >= 0, got {n_items}")
    if n_items == 0:
        return []
    config = config or EngineConfig()
    jobs = resolve_n_jobs(config.n_jobs)
    if config.shard_size is not None:
        size = config.shard_size
    elif jobs == 1:
        size = n_items
    else:
        size = compute_chunksize(n_items, min(jobs, n_items))
    return [range(lo, min(lo + size, n_items)) for lo in range(0, n_items, size)]


def map_shards(
    fn: Callable[[Sequence[int]], Sequence[T]],
    n_items: int,
    *,
    config: EngineConfig | None = None,
) -> list[T]:
    """Apply ``fn`` to each shard of indices; flatten in input order.

    ``fn`` receives a contiguous index shard and must return one result
    per index, in shard order. It must be picklable (module-level
    function or :func:`functools.partial` of one) when the config asks
    for more than one worker.

    When ``config.runtime`` is a supervised
    :class:`~repro.runtime.policy.RuntimePolicy`, the fan-out runs under
    :class:`~repro.runtime.supervisor.SupervisedPool`: a worker that
    dies or blows its deadline costs a retry (and ultimately a serial
    in-process re-execution), never the sweep — and the recovered
    results are bit-identical to a crash-free run.
    """
    config = config or EngineConfig()
    shards = compute_shards(n_items, config)
    jobs = resolve_n_jobs(config.n_jobs)
    tracer = current_tracer()
    if jobs == 1 or len(shards) <= 1:
        # Serial path: per-shard spans nest under the dispatch span (the
        # worker-pool paths run fn in other processes, where the ambient
        # tracer of *this* process cannot follow).
        with tracer.span(
            "engine.map_shards", n_items=n_items, n_shards=len(shards),
            mode="serial",
        ):
            out: list[T] = []
            for i, shard in enumerate(shards):
                with tracer.span(
                    "engine.shard", shard=i, size=len(shard)
                ):
                    out.extend(fn(shard))
            return out
    workers = min(jobs, len(shards))
    policy = config.runtime
    if policy is not None and policy.supervised:
        from ..runtime.supervisor import supervised_map  # lazy import

        with tracer.span(
            "engine.map_shards", n_items=n_items, n_shards=len(shards),
            mode="supervised", workers=workers,
        ):
            nested = supervised_map(
                fn, shards, max_workers=workers, policy=policy
            )
            return [item for chunk in nested for item in chunk]
    with tracer.span(
        "engine.map_shards", n_items=n_items, n_shards=len(shards),
        mode="pool", workers=workers,
    ):
        out = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for chunk in pool.map(fn, shards):
                out.extend(chunk)
        return out
