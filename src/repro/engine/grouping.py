"""Content-keyed sub-batch grouping for the batch engine.

The original batch engine shared interpolation only between readings
that carried the *same reference array object* — T tags against one
middleware snapshot. Independent-path batches (distinct readings per
tag, i.e. most real traffic) got none of that win: every reading paid
K scalar interpolation calls.

This module closes that gap in two moves:

* **content keys** — each (reading, reader) lattice is keyed by the
  bytes of its lattice-relevant slice (the reader's reference-RSSI row
  plus the masked flag). Readings that share lattice *content* — not
  object identity — share interpolation work, and readings with
  different lattice structure can never be merged (the key is the full
  byte content, so a collision would require bit-identical inputs,
  which by definition *are* the same lattice).
* **precomputed sparse operators** — for the linear (bilinear) scheme
  the interpolation of a fixed ``(grid, virtual_grid)`` pair is one
  sparse matrix (four non-zeros per row; see
  :class:`~repro.core.interpolation.SparseBilinearOperator`). All
  unique lattices of a batch are stacked and pushed through the
  operator in a single vectorized pass, replacing T*K Python-level
  interpolation calls with one gather + multiply-add.

Both moves preserve the engine's bitwise-identity contract: the content
key dedups only bit-identical inputs of a pure function, and the
operator's arithmetic matches the scalar interpolator operation for
operation. Errors keep their scalar semantics too — a lattice that the
scalar path would reject (reshape failure, masked fill below the
coverage floor, non-finite input) records the exact exception, and each
reading reports the first error among its readers in reader order,
precisely where the scalar loop would have raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.interpolation import (
    SparseBilinearOperator,
    fill_masked_lattice,
)
from ..exceptions import ConfigurationError, ReproError
from ..types import TrackingReading

__all__ = [
    "LatticeTable",
    "lattice_content_key",
    "reading_content_key",
    "operator_for",
]

#: The exact message :func:`repro.core.interpolation.check_lattice`
#: raises for a non-finite lattice — the grouped path's vectorized
#: finiteness check must reproduce it verbatim.
_NON_FINITE_MSG = "RSSI lattice contains non-finite values"


def lattice_content_key(row: np.ndarray, masked: bool) -> tuple:
    """Content key of one (reading, reader) lattice-relevant slice.

    Two slices share interpolation work iff their keys are equal:
    bit-identical reference-RSSI bytes (NaN payloads included — distinct
    NaN patterns stay distinct) and the same masked flag (masked rows
    run the hole-filling pass first, so a byte-identical finite row is
    still keyed apart — conservative, never wrong).
    """
    arr = np.ascontiguousarray(row)
    return (bool(masked), arr.dtype.str, arr.tobytes())


def reading_content_key(reading: TrackingReading) -> tuple:
    """Content key of a whole reading's lattice-relevant slice.

    Readings with equal keys see identical per-reader lattices, hence
    identical interpolation structure — the sub-batch grouping unit.
    """
    arr = np.ascontiguousarray(reading.reference_rssi)
    return (bool(reading.masked), arr.shape, arr.dtype.str, arr.tobytes())


def operator_for(estimator) -> SparseBilinearOperator | None:
    """The estimator's precomputed interpolation operator, if one exists.

    Only the paper's linear scheme is a precomputable sparse operator;
    polynomial/spline estimators return ``None`` and the engine falls
    back to (content-deduped) per-lattice interpolation calls.
    """
    if getattr(estimator._interpolator, "name", None) != "linear":
        return None
    return SparseBilinearOperator(estimator.virtual_grid)


@dataclass
class _Slot:
    """One unique lattice of a batch: its filled form or its error."""

    lattice: np.ndarray | None = None
    error: ReproError | None = None
    surface: np.ndarray | None = None


@dataclass
class LatticeTable:
    """Batch-wide dedup table of unique (reading, reader) lattices.

    Built once per ``estimate_outcomes`` call on the grouped path:
    :meth:`slots_for` registers a reading's K lattices and returns their
    slot indices; :meth:`interpolate` then computes every unique surface
    in one vectorized operator pass (or one per-lattice call for
    non-linear schemes); :meth:`virtual_for` assembles a reading's
    ``(K, v_rows, v_cols)`` tensor — or the first per-reader error, in
    reader order, exactly as the scalar loop would raise it.
    """

    estimator: object
    _index: dict = field(default_factory=dict)
    _slots: list = field(default_factory=list)
    # Operator path: one (n_valid, v_rows, v_cols) block of surfaces
    # plus a slot -> block-row map (-1 = errored slot).
    _surfaces: np.ndarray | None = None
    _rows: np.ndarray | None = None
    # Block path (from_block): the (n_unique, rows, cols) unique-lattice
    # stack; _slots holds per-slot placeholders (None = no error).
    _block: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._slots)

    @classmethod
    def from_block(cls, estimator, readings):
        """Bulk-register a block of plain readings in one vectorized pass.

        When every reading is unmasked with a C-layout float64
        ``(n_readers, grid.n_tags)`` reference array, the per-row dedup
        reduces to byte equality of fixed-width rows: all rows are
        concatenated, viewed as opaque byte records and deduped with one
        ``np.unique`` — the same bit-identical grouping the per-reading
        dict loop produces, minus the Python-level iteration (slot
        *numbering* differs, which nothing observes). Returns
        ``(table, slot_arrays)`` or ``None`` when any reading needs the
        scalar preparation path (masked, wrong width, non-float64).
        """
        grid = estimator.grid
        width = grid.n_tags
        refs = []
        for reading in readings:
            ref = reading.reference_rssi
            if (
                reading.masked
                or not isinstance(ref, np.ndarray)
                or ref.ndim != 2
                or ref.dtype != np.float64
                or ref.shape[1] != width
                or ref.shape[0] != reading.n_readers
            ):
                return None
            refs.append(ref)
        if not refs:
            return None
        block = np.ascontiguousarray(
            np.concatenate(refs, axis=0) if len(refs) > 1 else refs[0]
        )
        records = block.view([("", f"V{8 * width}")]).ravel()
        uniq, inverse = np.unique(records, return_inverse=True)
        table = cls(estimator)
        table._block = (
            np.ascontiguousarray(uniq)
            .view(np.float64)
            .reshape(-1, grid.rows, grid.cols)
        )
        table._slots = [None] * len(uniq)
        slots = []
        start = 0
        for ref in refs:
            k = ref.shape[0]
            slots.append(inverse[start : start + k])
            start += k
        return table, slots

    def slots_for(self, reading: TrackingReading) -> np.ndarray:
        """Register every reader lattice of ``reading``; return slots."""
        est = self.estimator
        masked = bool(reading.masked)
        ref = np.ascontiguousarray(reading.reference_rssi)
        index = self._index
        n_readers = reading.n_readers
        slots = np.empty(n_readers, dtype=np.intp)
        if ref.ndim == 2 and ref.shape[0] == n_readers:
            # Hot path: one buffer serialization per reading, sliced per
            # row (rows of a C-contiguous 2-D array are contiguous byte
            # runs, so the slices equal the per-row ``tobytes``), and —
            # when the row already is a valid float64 lattice vector —
            # a plain reshape instead of ``lattice_from_flat``'s
            # asarray + shape-check + reshape (bit-identical: asarray
            # of a float64 row is the row itself).
            grid = est.grid
            plain = (
                not masked
                and ref.dtype == np.float64
                and ref.shape[1] == grid.n_tags
            )
            rows, cols = grid.rows, grid.cols
            blob = ref.tobytes()
            row_nbytes = ref.shape[1] * ref.itemsize
            dt = ref.dtype.str
            for i in range(n_readers):
                key = (masked, dt, blob[i * row_nbytes : (i + 1) * row_nbytes])
                slot = index.get(key)
                if slot is None:
                    slot = len(self._slots)
                    index[key] = slot
                    if plain:
                        self._slots.append(
                            _Slot(lattice=ref[i].reshape(rows, cols))
                        )
                    else:
                        self._slots.append(self._prepare(est, ref[i], masked))
                slots[i] = slot
            return slots
        for i in range(n_readers):
            row = reading.reference_rssi[i]
            key = lattice_content_key(row, masked)
            slot = index.get(key)
            if slot is None:
                slot = len(self._slots)
                index[key] = slot
                self._slots.append(self._prepare(est, row, masked))
            slots[i] = slot
        return slots

    @staticmethod
    def _prepare(est, row: np.ndarray, masked: bool) -> _Slot:
        """Reshape + (masked) hole-fill one lattice, scalar-exact.

        Mirrors the prefix of the scalar
        :meth:`~repro.core.estimator.VIREEstimator.interpolate_reading`
        loop body; a failure records the exact scalar exception.
        """
        try:
            lattice = est.grid.lattice_from_flat(row)
            if masked:
                lattice = fill_masked_lattice(lattice)
            return _Slot(lattice=lattice)
        except ReproError as exc:
            return _Slot(error=exc)

    def interpolate(
        self,
        operator: SparseBilinearOperator | None,
        *,
        dtype=np.float64,
    ) -> None:
        """Compute every unique pending surface.

        With an operator every valid lattice is finiteness-checked in
        one vectorized pass (``lattice_from_flat`` already guarantees
        the grid shape, so finiteness is the only rejection
        :func:`~repro.core.interpolation.check_lattice` can still
        raise — non-finite slots record that exact error) and the
        survivors go through one vectorized ``apply``. Without one,
        each unique lattice takes a single scalar interpolation call —
        content dedup is still the win over the per-reading loop.
        """
        if self._block is not None:
            # Block route (from_block): the unique lattices are already
            # stacked; finiteness-check and interpolate in two
            # vectorized passes.
            lattices = self._block
            finite = np.isfinite(lattices).all(axis=(1, 2))
            rows = np.full(len(self._slots), -1, dtype=np.intp)
            if finite.all():
                self._surfaces = operator.apply(lattices, dtype=dtype)
                rows[:] = np.arange(len(self._slots))
            else:
                for i in np.flatnonzero(~finite):
                    self._slots[i] = _Slot(
                        error=ConfigurationError(_NON_FINITE_MSG)
                    )
                valid = np.flatnonzero(finite)
                if valid.size:
                    self._surfaces = operator.apply(
                        lattices[finite], dtype=dtype
                    )
                    rows[valid] = np.arange(valid.size)
            self._rows = rows
            return
        est = self.estimator
        pending = [
            i
            for i, slot in enumerate(self._slots)
            if slot.error is None and slot.surface is None
        ]
        if not pending:
            if operator is not None:
                self._rows = np.full(len(self._slots), -1, dtype=np.intp)
            return
        if operator is None:
            for i in pending:
                slot = self._slots[i]
                try:
                    slot.surface = est._interpolator.interpolate(
                        slot.lattice, est.virtual_grid
                    )
                except ReproError as exc:
                    slot.error = exc
            return
        stack = np.stack([self._slots[i].lattice for i in pending])
        finite = np.isfinite(stack).all(axis=(1, 2))
        rows = np.full(len(self._slots), -1, dtype=np.intp)
        if finite.all():
            self._surfaces = operator.apply(stack, dtype=dtype)
            rows[pending] = np.arange(len(pending))
        else:
            for i, ok in zip(pending, finite):
                if not ok:
                    self._slots[i].error = ConfigurationError(_NON_FINITE_MSG)
            valid = [i for i, ok in zip(pending, finite) if ok]
            if valid:
                self._surfaces = operator.apply(stack[finite], dtype=dtype)
                rows[valid] = np.arange(len(valid))
        self._rows = rows

    def gather(self, slot_matrix: np.ndarray) -> np.ndarray:
        """Stack a whole group's virtual tensors in one fancy gather.

        ``slot_matrix`` is ``(T, K)`` slot indices for T readings that
        all resolved without error (callers must check
        :attr:`n_errors` / :meth:`virtual_for` first). Returns the
        ``(T, K, v_rows, v_cols)`` tensor the per-reading
        :meth:`virtual_for` stack would produce, in one copy.
        """
        return self._surfaces[self._rows[slot_matrix]]

    def error_for(self, slots: np.ndarray) -> ReproError:
        """The first per-reader error in reader order — exactly the one
        the scalar interpolation loop would raise for this reading."""
        for slot in slots:
            entry = self._slots[slot]
            if entry is not None and entry.error is not None:
                return entry.error
        raise AssertionError(  # pragma: no cover - table misuse
            "error_for on a reading without errors"
        )

    def virtual_for(self, slots: np.ndarray) -> np.ndarray | ReproError:
        """One reading's ``(K, v_rows, v_cols)`` tensor or first error."""
        rows = self._rows
        if rows is not None:
            # Operator path: one fancy gather from the surface block.
            block_rows = rows[slots]
            if (block_rows >= 0).all():
                return self._surfaces[block_rows]
            return self.error_for(slots)
        for slot in slots:
            err = self._slots[slot].error
            if err is not None:
                return err
        return np.stack([self._slots[slot].surface for slot in slots])

    @property
    def n_errors(self) -> int:
        return sum(
            1
            for slot in self._slots
            if slot is not None and slot.error is not None
        )
