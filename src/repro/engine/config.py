"""Configuration of the batch-estimation engine.

:class:`EngineConfig` collects the *throughput* knobs that sit above the
algorithm configuration (:class:`~repro.core.config.VIREConfig` owns the
science; this owns the scheduling): how many worker processes a
multi-snapshot sweep may use and how many snapshots ride in one shard.
The engine's numerical behaviour is **not** configurable on the default
tier — exact batch results are bitwise identical to the scalar path by
contract, whatever the scheduling knobs. The one numerical escape hatch
is explicit and opt-in: ``precision="relaxed"`` trades the bitwise
contract for float32 interpolation/weighting (tolerance-bounded, never
used where goldens or checkpoints are in play).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..exceptions import ConfigurationError
from ..runtime.policy import RuntimePolicy

__all__ = ["EngineConfig"]


@dataclass(frozen=True)
class EngineConfig:
    """Scheduling knobs of :mod:`repro.engine`.

    Parameters
    ----------
    n_jobs:
        Worker processes for multi-snapshot work (sweeps, Monte-Carlo
        trials). ``None`` or 1 = serial (the reproducible default);
        0 or negative = one worker per CPU — the same convention as
        :func:`repro.utils.parallel.resolve_n_jobs`.
    shard_size:
        Snapshots (trials) per dispatched shard when ``n_jobs != 1``.
        ``None`` lets :func:`repro.utils.parallel.compute_chunksize`
        pick a size that amortizes IPC while keeping the pool balanced.
    runtime:
        Optional :class:`~repro.runtime.policy.RuntimePolicy`. With
        ``supervised=True`` the process fan-out runs under
        :class:`~repro.runtime.supervisor.SupervisedPool` (deadlines,
        retries, pool respawn, serial fallback) — results stay bitwise
        identical; only failure handling changes. ``None`` (default)
        keeps the bare executor.
    precision:
        Numerical tier of the batch engine. ``"exact"`` (default) keeps
        the bitwise-identity contract against the scalar path and is
        the only tier goldens/checkpoints accept. ``"relaxed"`` runs
        interpolation and weighting in float32 — faster and smaller,
        bounded by the differential harness's tolerance instead of
        bit equality, and rejected wherever byte-stable artifacts
        (golden fixtures, checkpoint resume) are produced.
    """

    n_jobs: int | None = None
    shard_size: int | None = None
    runtime: RuntimePolicy | None = None
    precision: str = "exact"

    def __post_init__(self) -> None:
        if self.precision not in ("exact", "relaxed"):
            raise ConfigurationError(
                f"precision must be 'exact' or 'relaxed', "
                f"got {self.precision!r}"
            )
        if self.shard_size is not None and self.shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be >= 1 or None, got {self.shard_size}"
            )
        if self.runtime is not None and not isinstance(
            self.runtime, RuntimePolicy
        ):
            raise ConfigurationError(
                f"runtime must be a RuntimePolicy or None, "
                f"got {type(self.runtime).__name__}"
            )

    def with_(self, **changes) -> "EngineConfig":
        """Return a modified copy (thin wrapper over dataclasses.replace)."""
        return replace(self, **changes)
