"""Configuration of the batch-estimation engine.

:class:`EngineConfig` collects the *throughput* knobs that sit above the
algorithm configuration (:class:`~repro.core.config.VIREConfig` owns the
science; this owns the scheduling): how many worker processes a
multi-snapshot sweep may use and how many snapshots ride in one shard.
The engine's numerical behaviour is **not** configurable — batch results
are bitwise identical to the scalar path by contract, whatever the knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..exceptions import ConfigurationError
from ..runtime.policy import RuntimePolicy

__all__ = ["EngineConfig"]


@dataclass(frozen=True)
class EngineConfig:
    """Scheduling knobs of :mod:`repro.engine`.

    Parameters
    ----------
    n_jobs:
        Worker processes for multi-snapshot work (sweeps, Monte-Carlo
        trials). ``None`` or 1 = serial (the reproducible default);
        0 or negative = one worker per CPU — the same convention as
        :func:`repro.utils.parallel.resolve_n_jobs`.
    shard_size:
        Snapshots (trials) per dispatched shard when ``n_jobs != 1``.
        ``None`` lets :func:`repro.utils.parallel.compute_chunksize`
        pick a size that amortizes IPC while keeping the pool balanced.
    runtime:
        Optional :class:`~repro.runtime.policy.RuntimePolicy`. With
        ``supervised=True`` the process fan-out runs under
        :class:`~repro.runtime.supervisor.SupervisedPool` (deadlines,
        retries, pool respawn, serial fallback) — results stay bitwise
        identical; only failure handling changes. ``None`` (default)
        keeps the bare executor.
    """

    n_jobs: int | None = None
    shard_size: int | None = None
    runtime: RuntimePolicy | None = None

    def __post_init__(self) -> None:
        if self.shard_size is not None and self.shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be >= 1 or None, got {self.shard_size}"
            )
        if self.runtime is not None and not isinstance(
            self.runtime, RuntimePolicy
        ):
            raise ConfigurationError(
                f"runtime must be a RuntimePolicy or None, "
                f"got {type(self.runtime).__name__}"
            )

    def with_(self, **changes) -> "EngineConfig":
        """Return a modified copy (thin wrapper over dataclasses.replace)."""
        return replace(self, **changes)
