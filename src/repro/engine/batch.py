"""Batch estimation: T tracking tags against shared interpolation work.

:class:`BatchEngine` runs the VIRE pipeline for a whole batch of
:class:`~repro.types.TrackingReading` snapshots with one pass of
vectorized kernels (:mod:`repro.engine.kernels`) instead of T scalar
passes, while staying **bitwise identical** to calling
:meth:`VIREEstimator.estimate` per reading:

* interpolation is computed once per unique ``(reader lattice, grid)``
  pair and the resulting surface shared across every tag in the batch —
  the dominant saving when T tags are localized against one middleware
  snapshot (they all see the same reference lattices);
* deviations, thresholds, proximity masks, elimination votes and both
  weighting factors are evaluated as ``(T, K, rows, cols)`` tensor
  operations;
* the degradation contract is preserved per reading: quorum refusals,
  empty-intersection fallbacks and validation errors come out exactly as
  the scalar path would raise them (see :meth:`estimate_outcomes`).

:class:`BatchLandmarc` does the same for the LANDMARC fallback — the
degradation ladder of the streaming service batches through it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..baselines.landmarc import LandmarcEstimator
from ..core.interpolation import fill_masked_lattice
from ..exceptions import ConfigurationError, EstimationError, ReproError
from ..obs import current_tracer
from ..types import EstimateResult, TrackingReading
from . import kernels

__all__ = ["BatchEngine", "BatchLandmarc", "estimate_all"]

#: Outcome of one reading in a batch: a result, or the exact exception
#: the scalar path would have raised for that reading.
Outcome = EstimateResult | ReproError


def _raise_first(outcomes: list[Outcome]) -> list[EstimateResult]:
    for outcome in outcomes:
        if isinstance(outcome, ReproError):
            raise outcome
    return outcomes  # type: ignore[return-value]


class BatchEngine:
    """Vectorized batch twin of a :class:`~repro.core.estimator.VIREEstimator`.

    Parameters
    ----------
    estimator:
        The scalar estimator whose behaviour is to be reproduced. The
        engine reuses its grid, config, interpolator, quorum policy and
        (if any) interpolation cache, so one engine serves wherever the
        scalar estimator would.
    """

    def __init__(self, estimator) -> None:
        self.estimator = estimator

    # -- public API ----------------------------------------------------------

    def estimate_batch(
        self, readings: Sequence[TrackingReading]
    ) -> list[EstimateResult]:
        """Localize every reading; raise the first per-reading error.

        Bitwise identical to ``[estimator.estimate(r) for r in readings]``
        — including the exception a failing reading would raise (the
        first one in input order, as a sequential loop would hit it).
        """
        return _raise_first(self.estimate_outcomes(readings))

    def estimate_outcomes(
        self, readings: Sequence[TrackingReading]
    ) -> list[Outcome]:
        """Per-reading results *or* the error that reading provokes.

        The streaming service uses this form: one bad reading (quorum
        unmet, empty intersection with ``empty_fallback="error"``) must
        degrade only its own request, never poison the batch.
        """
        readings = list(readings)
        outcomes: list[Outcome] = [None] * len(readings)  # type: ignore[list-item]
        est = self.estimator
        tracer = current_tracer()

        with tracer.span("engine.batch", n_readings=len(readings)) as root:
            # Stage 1 (per reading, cheap): quorum + layout checks, exactly
            # in the scalar estimate() order. The layout check is a pure
            # function of the reading's reference-position array, so one
            # verdict per distinct array serves the whole batch — T tags on
            # one snapshot pay for a single ``allclose`` instead of T.
            layout_memo: dict[tuple, ReproError | None] = {}
            prepared: list[tuple[int, TrackingReading, int | None, dict]] = []
            with tracer.span("engine.prepare") as psp:
                for idx, reading in enumerate(readings):
                    try:
                        min_votes = est.config.min_votes
                        quorum_diag: dict = {}
                        if reading.masked:
                            decision = est.quorum.apply(reading)
                            reading = decision.reading
                            if min_votes is not None:
                                min_votes = min(min_votes, reading.n_readers)
                            quorum_diag = decision.diagnostics()
                        self._check_layout(reading, layout_memo)
                        prepared.append((idx, reading, min_votes, quorum_diag))
                    except ReproError as exc:
                        outcomes[idx] = exc
                psp.set("prepared", len(prepared))
                psp.set("rejected", len(readings) - len(prepared))

            # Stage 2: shared interpolation (memoized per unique lattice).
            # When the estimator has no injected cache (so no observable call
            # sequence to preserve), readings that share the *same* reference
            # array object — T tags against one middleware snapshot — skip
            # even the per-reader lattice reconstruction: one (K, rows, cols)
            # surface tensor serves them all. The readings list keeps every
            # reading alive for the duration, so id()-keyed memoing is sound.
            surface_memo: dict[bytes, np.ndarray] = {}
            reading_memo: dict[tuple[int, bool], np.ndarray] = {}
            dedup_readings = est.interpolation_cache is None
            ready: list[
                tuple[int, TrackingReading, int | None, dict, np.ndarray]
            ] = []
            with tracer.span("engine.interpolate") as isp:
                for idx, reading, min_votes, quorum_diag in prepared:
                    try:
                        key = (id(reading.reference_rssi), reading.masked)
                        if dedup_readings and key in reading_memo:
                            virtual = reading_memo[key]
                        else:
                            virtual = self._interpolate(reading, surface_memo)
                            if dedup_readings:
                                reading_memo[key] = virtual
                        ready.append(
                            (idx, reading, min_votes, quorum_diag, virtual)
                        )
                    except ReproError as exc:
                        outcomes[idx] = exc
                isp.set("unique_surfaces", len(surface_memo))

            # Stage 3: group by surviving reader count and vectorize.
            groups: dict[int, list[int]] = {}
            for pos, entry in enumerate(ready):
                groups.setdefault(entry[1].n_readers, []).append(pos)
            root.set("n_groups", len(groups))
            for readers_k, members in groups.items():
                with tracer.span(
                    "engine.group", readers=readers_k, tags=len(members)
                ):
                    self._estimate_group(
                        [ready[pos] for pos in members], outcomes
                    )
        return outcomes

    # -- pipeline stages -----------------------------------------------------

    def _check_layout(
        self, reading: TrackingReading, memo: dict[tuple, ReproError | None]
    ) -> None:
        """Scalar :meth:`VIREEstimator._check_layout`, one verdict per
        distinct reference-position array (same error, same message)."""
        got = reading.reference_positions
        key = (got.shape, got.tobytes())
        if key not in memo:
            try:
                self.estimator._check_layout(reading)
                memo[key] = None
            except ReproError as exc:
                memo[key] = exc
        err = memo[key]
        if err is not None:
            raise err

    def _interpolate(
        self, reading: TrackingReading, memo: dict[bytes, np.ndarray]
    ) -> np.ndarray:
        """Per-reader virtual surfaces ``(K, v_rows, v_cols)``, shared.

        Mirrors :meth:`VIREEstimator.interpolate_reading` (masked-hole
        fill first, then the injected cache or the raw interpolator) but
        computes each unique lattice only once per batch. Repeated
        lattices — every tag of a snapshot sees the same reference
        lattice per reader — are free.

        With an injected interpolation cache the *cache* is the dedup
        layer: ``get_or_compute`` is called once per (reading, reader)
        in exactly the scalar call sequence, so hit/miss statistics —
        and the behaviour of history-dependent caches (quantized keys,
        LRU eviction) — stay bitwise identical to the scalar loop.
        The batch-local memo only kicks in for cacheless estimators,
        where repeated lattices would otherwise be recomputed.
        """
        est = self.estimator
        k = reading.n_readers
        out = np.empty((k, *est.virtual_grid.shape))
        cache = est.interpolation_cache
        for i in range(k):
            lattice = est.grid.lattice_from_flat(reading.reference_rssi[i])
            if reading.masked:
                lattice = fill_masked_lattice(lattice)
            if cache is not None:
                out[i] = cache.get_or_compute(
                    lattice, est.virtual_grid, est._interpolator
                )
                continue
            key = lattice.tobytes()
            surface = memo.get(key)
            if surface is None:
                surface = est._interpolator.interpolate(
                    lattice, est.virtual_grid
                )
                memo[key] = surface
            out[i] = surface
        return out

    def _estimate_group(
        self,
        group: list[tuple[int, TrackingReading, int | None, dict, np.ndarray]],
        outcomes: list[Outcome],
    ) -> None:
        est = self.estimator
        config = est.config
        k = group[0][1].n_readers
        n_tags = len(group)
        shape = est.virtual_grid.shape

        # Validate per-tag vote requirements exactly as eliminate() would.
        valid: list[tuple] = []
        needed: list[int] = []
        for entry in group:
            votes = k if entry[2] is None else entry[2]
            if not (1 <= votes <= k):
                outcomes[entry[0]] = ConfigurationError(
                    f"min_votes must be within 1..{k}, got {votes}"
                )
                continue
            valid.append(entry)
            needed.append(votes)
        if not valid:
            return
        group, n_tags = valid, len(valid)
        needed_arr = np.asarray(needed, dtype=np.int64)

        virtual = np.empty((n_tags, k, *shape))
        tracking = np.empty((n_tags, k))
        for t, entry in enumerate(group):
            virtual[t] = entry[4]
            tracking[t] = entry[1].tracking_rssi
        dev = kernels.batch_rssi_deviations(virtual, tracking)

        # Thresholds (shared per tag). Infeasible tags (NaN from the
        # closed form) get the scalar path's ConfigurationError.
        live = np.ones(n_tags, dtype=bool)
        if config.threshold_mode == "adaptive":
            base = kernels.batch_minimal_feasible_threshold(
                dev, min_cells=config.min_cells
            )
            infeasible = np.isnan(base)
            for t in np.flatnonzero(infeasible):
                outcomes[group[t][0]] = ConfigurationError(
                    f"fewer than min_cells={config.min_cells} cells have "
                    "fully known deviations; no feasible shared threshold "
                    "exists"
                )
                live[t] = False
            thresholds = base + config.threshold_margin_db
            if not live.all():
                thresholds = np.where(live, thresholds, 0.0)
        else:
            thresholds = np.full(n_tags, config.fixed_threshold_db)

        masks = kernels.batch_proximity_masks(dev, thresholds)
        selected = kernels.batch_eliminate(masks, needed_arr)

        # Empty intersections: the scalar fallback ladder, per tag.
        fallback: list[str | None] = [None] * n_tags
        empty = live & ~selected.any(axis=(1, 2))
        if empty.any():
            if config.empty_fallback == "error":
                for t in np.flatnonzero(empty):
                    outcomes[group[t][0]] = EstimationError(
                        f"elimination left no candidate regions at threshold "
                        f"{thresholds[t]:.3f} dB"
                    )
                    live[t] = False
            elif config.empty_fallback == "landmarc":
                for t in np.flatnonzero(empty):
                    idx, reading, _, quorum_diag, _ = group[t]
                    try:
                        base_res = est._fallback_landmarc.estimate(reading)
                        outcomes[idx] = EstimateResult(
                            position=base_res.position,
                            estimator=est.name,
                            diagnostics={
                                "fallback": "landmarc",
                                "threshold_db": float(thresholds[t]),
                                "n_selected": 0,
                                **quorum_diag,
                            },
                        )
                    except ReproError as exc:
                        outcomes[idx] = exc
                    live[t] = False
            else:  # "relax": minimal feasible threshold for those tags
                relax = np.flatnonzero(empty)
                relaxed = kernels.batch_minimal_feasible_threshold(
                    dev[relax], min_cells=config.min_cells
                )
                for j, t in enumerate(relax):
                    if np.isnan(relaxed[j]):  # pragma: no cover - guarded above
                        outcomes[group[t][0]] = ConfigurationError(
                            f"fewer than min_cells={config.min_cells} cells "
                            "have fully known deviations; no feasible shared "
                            "threshold exists"
                        )
                        live[t] = False
                        continue
                    fallback[t] = "relax"
                    thresholds[t] = relaxed[j]
                still = np.flatnonzero(empty & live)
                if still.size:
                    masks[still] = kernels.batch_proximity_masks(
                        dev[still], thresholds[still]
                    )
                    selected[still] = kernels.batch_eliminate(
                        masks[still], needed_arr[still]
                    )

        if not live.any():
            return

        # Weighting — computed for the whole group, consumed per live tag.
        w1 = kernels.batch_w1(
            dev,
            selected,
            mode=config.w1_mode,
            virtual_rssi=virtual if config.w1_mode == "paper-literal" else None,
        )
        w2 = (
            kernels.batch_w2(selected, connectivity=config.connectivity)
            if config.use_w2
            else None
        )
        # combine_weights refuses empty support; dead tags were already
        # routed to fallbacks above, so give them a harmless placeholder
        # delta at cell (0, 0) — in *both* factors, since an empty
        # selection also zeroes a dead tag's w2 and the placeholder must
        # survive the product. Their weights row is never consumed.
        safe_w1, safe_w2 = w1, w2
        if not live.all():
            safe_w1 = w1.copy()
            safe_w1[~live, 0, 0] = 1.0
            if w2 is not None:
                safe_w2 = w2.copy()
                safe_w2[~live, 0, 0] = 1.0
        weights = kernels.batch_combine_weights(safe_w1, safe_w2)
        xy = kernels.batch_positions(weights, est._positions)
        areas = kernels.batch_map_areas(masks)
        n_selected = selected.reshape(n_tags, -1).sum(axis=1)
        lattice_cells = selected.shape[1] * selected.shape[2]

        for t in np.flatnonzero(live):
            idx, _, _, quorum_diag, _ = group[t]
            outcomes[idx] = EstimateResult(
                position=(float(xy[t, 0]), float(xy[t, 1])),
                estimator=est.name,
                diagnostics={
                    "threshold_db": float(thresholds[t]),
                    "threshold_mode": config.threshold_mode,
                    "n_selected": int(n_selected[t]),
                    "selected_fraction": int(n_selected[t]) / lattice_cells,
                    "map_areas": [int(a) for a in areas[t]],
                    "fallback": fallback[t],
                    "total_virtual_tags": est.virtual_grid.total_tags,
                    **quorum_diag,
                },
            )


class BatchLandmarc:
    """Batched LANDMARC — the degradation ladder's bulk fallback.

    RSSI-space distances for all T readings are computed as one
    ``(T, K, n_refs)`` tensor pass (including the canonical sorted
    reduction that makes distances reader-permutation invariant and the
    coverage rescaling for masked readings); the tiny k-NN selection and
    weighting then reuse the scalar code per tag, so results are bitwise
    identical to :meth:`LandmarcEstimator.estimate`.
    """

    def __init__(self, estimator: LandmarcEstimator) -> None:
        self.estimator = estimator

    def estimate_batch(
        self, readings: Sequence[TrackingReading]
    ) -> list[EstimateResult]:
        return _raise_first(self.estimate_outcomes(readings))

    def estimate_outcomes(
        self, readings: Sequence[TrackingReading]
    ) -> list[Outcome]:
        readings = list(readings)
        outcomes: list[Outcome] = [None] * len(readings)  # type: ignore[list-item]
        est = self.estimator
        with current_tracer().span(
            "engine.landmarc", n_readings=len(readings)
        ) as root:
            # Group readings by (K, n_refs) so each group stacks into one
            # rectangular (T, K, n_refs) tensor.
            groups: dict[tuple[int, int], list[int]] = {}
            for idx, reading in enumerate(readings):
                shape = (reading.n_readers, reading.n_references)
                groups.setdefault(shape, []).append(idx)
            root.set("n_groups", len(groups))
            for (k, n_refs), members in groups.items():
                tracking = np.empty((len(members), k))
                references = np.empty((len(members), k, n_refs))
                for t, idx in enumerate(members):
                    tracking[t] = readings[idx].tracking_rssi
                    references[t] = readings[idx].reference_rssi
                distances = kernels.batch_landmarc_distances(
                    tracking, references
                )
                for t, idx in enumerate(members):
                    try:
                        outcomes[idx] = est._estimate_from_distances(
                            readings[idx], distances[t]
                        )
                    except ReproError as exc:
                        outcomes[idx] = exc
        return outcomes


def estimate_all(
    estimator, readings: Sequence[TrackingReading]
) -> list[EstimateResult]:
    """Localize ``readings`` with ``estimator``, batched when possible.

    Uses the estimator's own ``estimate_batch`` when it provides one
    (:class:`VIREEstimator`, :class:`LandmarcEstimator`), otherwise falls
    back to a scalar loop — wrappers like the boundary-aware or gated
    estimators keep their exact semantics.
    """
    batch = getattr(estimator, "estimate_batch", None)
    if callable(batch):
        return batch(readings)
    return [estimator.estimate(r) for r in readings]
