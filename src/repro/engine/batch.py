"""Batch estimation: T tracking tags against shared interpolation work.

:class:`BatchEngine` runs the VIRE pipeline for a whole batch of
:class:`~repro.types.TrackingReading` snapshots with one pass of
vectorized kernels (:mod:`repro.engine.kernels`) instead of T scalar
passes, while staying **bitwise identical** to calling
:meth:`VIREEstimator.estimate` per reading:

* interpolation is computed once per unique ``(reader lattice, grid)``
  pair and the resulting surface shared across every tag in the batch —
  the dominant saving when T tags are localized against one middleware
  snapshot (they all see the same reference lattices);
* deviations, thresholds, proximity masks, elimination votes and both
  weighting factors are evaluated as ``(T, K, rows, cols)`` tensor
  operations;
* the degradation contract is preserved per reading: quorum refusals,
  empty-intersection fallbacks and validation errors come out exactly as
  the scalar path would raise them (see :meth:`estimate_outcomes`).

:class:`BatchLandmarc` does the same for the LANDMARC fallback — the
degradation ladder of the streaming service batches through it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..baselines.landmarc import LandmarcEstimator
from ..core.interpolation import check_lattice, fill_masked_lattice
from ..exceptions import ConfigurationError, EstimationError, ReproError
from ..obs import current_tracer
from ..types import EstimateResult, TrackingReading
from . import kernels
from .grouping import LatticeTable, operator_for

__all__ = ["BatchEngine", "BatchLandmarc", "estimate_all"]

#: Outcome of one reading in a batch: a result, or the exact exception
#: the scalar path would have raised for that reading.
Outcome = EstimateResult | ReproError


def _raise_first(outcomes: list[Outcome]) -> list[EstimateResult]:
    for outcome in outcomes:
        if isinstance(outcome, ReproError):
            raise outcome
    return outcomes  # type: ignore[return-value]


class BatchEngine:
    """Vectorized batch twin of a :class:`~repro.core.estimator.VIREEstimator`.

    Parameters
    ----------
    estimator:
        The scalar estimator whose behaviour is to be reproduced. The
        engine reuses its grid, config, interpolator, quorum policy and
        (if any) interpolation cache, so one engine serves wherever the
        scalar estimator would.
    precision:
        ``"exact"`` (default) keeps the bitwise-identity contract
        against the scalar path. ``"relaxed"`` runs interpolation and
        weighting in float32 — an opt-in throughput tier whose results
        are tolerance-bounded (not bit-equal) against the scalar path;
        it bypasses any injected interpolation cache (the cache stores
        float64 surfaces with scalar-exact accounting, which a float32
        pipeline cannot honour) and is rejected wherever goldens or
        checkpoints are produced. The ladder semantics — quorum
        refusals, fallback routing, error types — are unchanged.
    """

    def __init__(self, estimator, *, precision: str = "exact") -> None:
        if precision not in ("exact", "relaxed"):
            raise ConfigurationError(
                f"precision must be 'exact' or 'relaxed', got {precision!r}"
            )
        self.estimator = estimator
        self.precision = precision
        self._dtype = np.float64 if precision == "exact" else np.float32
        self._op = None
        self._op_built = False

    @property
    def _operator(self):
        """Precomputed sparse interpolation operator (lazy; None when the
        estimator's scheme is not the linear one)."""
        if not self._op_built:
            self._op = operator_for(self.estimator)
            self._op_built = True
        return self._op

    # -- public API ----------------------------------------------------------

    def estimate_batch(
        self, readings: Sequence[TrackingReading]
    ) -> list[EstimateResult]:
        """Localize every reading; raise the first per-reading error.

        Bitwise identical to ``[estimator.estimate(r) for r in readings]``
        — including the exception a failing reading would raise (the
        first one in input order, as a sequential loop would hit it).
        """
        return _raise_first(self.estimate_outcomes(readings))

    def estimate_outcomes(
        self, readings: Sequence[TrackingReading]
    ) -> list[Outcome]:
        """Per-reading results *or* the error that reading provokes.

        The streaming service uses this form: one bad reading (quorum
        unmet, empty intersection with ``empty_fallback="error"``) must
        degrade only its own request, never poison the batch.
        """
        readings = list(readings)
        outcomes: list[Outcome] = [None] * len(readings)  # type: ignore[list-item]
        est = self.estimator
        tracer = current_tracer()

        with tracer.span("engine.batch", n_readings=len(readings)) as root:
            # Stage 1 (per reading, cheap): quorum + layout checks, exactly
            # in the scalar estimate() order. The layout check is a pure
            # function of the reading's reference-position array, so one
            # verdict per distinct array serves the whole batch — T tags on
            # one snapshot pay for a single ``allclose`` instead of T.
            layout_memo: dict[tuple, ReproError | None] = {}
            prepared: list[tuple[int, TrackingReading, int | None, dict]] = []
            with tracer.span("engine.prepare") as psp:
                for idx, reading in enumerate(readings):
                    try:
                        min_votes = est.config.min_votes
                        quorum_diag: dict = {}
                        if reading.masked:
                            decision = est.quorum.apply(reading)
                            reading = decision.reading
                            if min_votes is not None:
                                min_votes = min(min_votes, reading.n_readers)
                            quorum_diag = decision.diagnostics()
                        self._check_layout(reading, layout_memo)
                        prepared.append((idx, reading, min_votes, quorum_diag))
                    except ReproError as exc:
                        outcomes[idx] = exc
                psp.set("prepared", len(prepared))
                psp.set("rejected", len(readings) - len(prepared))

            # Stage 2: shared interpolation, grouped by lattice *content*.
            # Readings whose (reading, reader) lattices carry identical
            # bytes share one interpolation — snapshot batches (T tags on
            # one middleware snapshot) and independent batches (distinct
            # readings per tag) alike — and for the linear scheme all
            # unique lattices of the batch go through one precomputed
            # sparse-operator pass. With an injected cache, the batched
            # cache protocol keeps hit/miss/eviction accounting bitwise
            # identical to the scalar lookup sequence; caches that don't
            # speak it (or non-linear schemes) keep the sequential path.
            # The relaxed tier bypasses the cache entirely (float64
            # surfaces with scalar accounting can't be honoured by a
            # float32 pipeline).
            ready: list[
                tuple[int, TrackingReading, int | None, dict, np.ndarray]
            ] = []
            with tracer.span("engine.interpolate") as isp:
                cache = (
                    est.interpolation_cache
                    if self.precision == "exact"
                    else None
                )
                op = self._operator
                table = None
                if cache is None:
                    ready, n_unique, table = self._interpolate_grouped(
                        prepared, outcomes
                    )
                elif op is not None and hasattr(
                    cache, "get_or_compute_many"
                ):
                    ready, n_unique = self._interpolate_cached(
                        prepared, outcomes, cache, op
                    )
                else:
                    ready, n_unique = self._interpolate_sequential(
                        prepared, outcomes, cache
                    )
                isp.set("unique_surfaces", n_unique)

            # Stage 3: group by surviving reader count and vectorize.
            groups: dict[int, list[int]] = {}
            for pos, entry in enumerate(ready):
                groups.setdefault(entry[1].n_readers, []).append(pos)
            root.set("n_groups", len(groups))
            for readers_k, members in groups.items():
                with tracer.span(
                    "engine.group", readers=readers_k, tags=len(members)
                ):
                    self._estimate_group(
                        [ready[pos] for pos in members], outcomes, table
                    )
        return outcomes

    # -- pipeline stages -----------------------------------------------------

    def _check_layout(
        self, reading: TrackingReading, memo: dict[tuple, ReproError | None]
    ) -> None:
        """Scalar :meth:`VIREEstimator._check_layout`, one verdict per
        distinct reference-position array (same error, same message)."""
        got = reading.reference_positions
        key = (got.shape, got.tobytes())
        if key not in memo:
            try:
                self.estimator._check_layout(reading)
                memo[key] = None
            except ReproError as exc:
                memo[key] = exc
        err = memo[key]
        if err is not None:
            raise err

    def _interpolate_grouped(
        self,
        prepared: list[tuple[int, TrackingReading, int | None, dict]],
        outcomes: list[Outcome],
    ) -> tuple[list, int]:
        """Cacheless (or relaxed) route: batch-wide content dedup.

        Every (reading, reader) lattice is registered in one
        :class:`~repro.engine.grouping.LatticeTable` keyed by lattice
        content, so readings sharing bytes — same-snapshot tags *and*
        independent readings that happen to agree — share one surface.
        For the linear scheme all unique surfaces come from a single
        vectorized operator pass; per-reading errors keep their scalar
        type, message and reader order.

        On the operator route the returned entries carry each reading's
        *slot indices* (plus the table itself, as the third return
        value) rather than materialized ``(K, v_rows, v_cols)`` tensors:
        :meth:`_estimate_group` assembles a whole group's virtual tensor
        with one :meth:`LatticeTable.gather` instead of T per-reading
        copies. Non-operator schemes materialize per reading and return
        ``None`` for the table.
        """
        op = self._operator
        table = pending = None
        if op is not None:
            # Plain float64 unmasked blocks dedup in one vectorized
            # byte-record pass instead of the per-reading dict loop.
            blk = LatticeTable.from_block(
                self.estimator, [entry[1] for entry in prepared]
            )
            if blk is not None:
                table, slot_arrays = blk
                pending = [
                    (*entry, slot_arrays[j])
                    for j, entry in enumerate(prepared)
                ]
        if table is None:
            table = LatticeTable(self.estimator)
            pending = [
                (*entry, table.slots_for(entry[1])) for entry in prepared
            ]
        table.interpolate(op, dtype=self._dtype)
        if op is not None:
            if not table.n_errors:
                return pending, len(table), table
            rows = table._rows
            ready = []
            for entry in pending:
                if (rows[entry[4]] >= 0).all():
                    ready.append(entry)
                else:
                    outcomes[entry[0]] = table.error_for(entry[4])
            return ready, len(table), table
        ready = []
        for idx, reading, min_votes, quorum_diag, slots in pending:
            virtual = table.virtual_for(slots)
            if isinstance(virtual, ReproError):
                outcomes[idx] = virtual
            else:
                ready.append((idx, reading, min_votes, quorum_diag, virtual))
        return ready, len(table), None

    def _interpolate_cached(
        self,
        prepared: list[tuple[int, TrackingReading, int | None, dict]],
        outcomes: list[Outcome],
        cache,
        op,
    ) -> tuple[list, int]:
        """Cached route: batched lookups, scalar-exact cache accounting.

        Per-reader lattices are prepared up front (stopping a reading at
        its first preparation error, as the scalar loop would), then all
        lookups go through the cache's ``get_or_compute_many`` in the
        exact scalar call sequence — hit/miss counts, LRU touch order
        and eviction sequence stay bitwise identical — with the unique
        misses computed in one vectorized operator pass. A validation
        error inside the lookup sequence takes precedence over a later
        reader's preparation error, mirroring where the scalar loop
        raises first.
        """
        est = self.estimator
        grid, vgrid = est.grid, est.virtual_grid
        entries = []
        segments = []
        for idx, reading, min_votes, quorum_diag in prepared:
            lattices: list[np.ndarray] = []
            prep_error: ReproError | None = None
            for i in range(reading.n_readers):
                try:
                    lattice = grid.lattice_from_flat(reading.reference_rssi[i])
                    if reading.masked:
                        lattice = fill_masked_lattice(lattice)
                except ReproError as exc:
                    prep_error = exc
                    break
                lattices.append(lattice)
            entries.append((idx, reading, min_votes, quorum_diag, prep_error))
            segments.append(lattices)

        def validate(lattice: np.ndarray) -> ReproError | None:
            try:
                check_lattice(lattice, vgrid)
            except ReproError as exc:
                return exc
            return None

        def compute_many(lattices: list[np.ndarray]) -> np.ndarray:
            return op.apply(np.stack(lattices))

        misses_before = cache.misses
        resolved = cache.get_or_compute_many(
            segments,
            vgrid,
            est._interpolator,
            validate=validate,
            compute_many=compute_many,
        )
        ready = []
        for entry, res in zip(entries, resolved):
            idx, reading, min_votes, quorum_diag, prep_error = entry
            if isinstance(res, ReproError):
                outcomes[idx] = res
            elif prep_error is not None:
                outcomes[idx] = prep_error
            else:
                virtual = np.empty(
                    (reading.n_readers, *vgrid.shape)
                )
                for i, surface in enumerate(res):
                    virtual[i] = surface
                ready.append((idx, reading, min_votes, quorum_diag, virtual))
        return ready, cache.misses - misses_before

    def _interpolate_sequential(
        self,
        prepared: list[tuple[int, TrackingReading, int | None, dict]],
        outcomes: list[Outcome],
        cache,
    ) -> tuple[list, int]:
        """Compatibility route: protocol caches without batched lookups
        (or non-linear schemes behind a cache). ``get_or_compute`` is
        called once per (reading, reader) in exactly the scalar call
        sequence, so history-dependent cache behaviour is untouched.
        """
        est = self.estimator
        ready = []
        lookups = 0
        for idx, reading, min_votes, quorum_diag in prepared:
            try:
                k = reading.n_readers
                virtual = np.empty((k, *est.virtual_grid.shape))
                for i in range(k):
                    lattice = est.grid.lattice_from_flat(
                        reading.reference_rssi[i]
                    )
                    if reading.masked:
                        lattice = fill_masked_lattice(lattice)
                    virtual[i] = cache.get_or_compute(
                        lattice, est.virtual_grid, est._interpolator
                    )
                    lookups += 1
                ready.append((idx, reading, min_votes, quorum_diag, virtual))
            except ReproError as exc:
                outcomes[idx] = exc
        return ready, lookups

    def _estimate_group(
        self,
        group: list[tuple[int, TrackingReading, int | None, dict, np.ndarray]],
        outcomes: list[Outcome],
        table: LatticeTable | None = None,
    ) -> None:
        """Vectorize one uniform-K group of readings.

        When ``table`` is given (grouped operator route), each entry's
        fifth element is the reading's slot-index vector and the whole
        group's ``(T, K, v_rows, v_cols)`` virtual tensor comes from one
        :meth:`LatticeTable.gather`; otherwise entries carry materialized
        per-reading tensors that are copied into the batch tensor.
        """
        est = self.estimator
        config = est.config
        k = group[0][1].n_readers
        n_tags = len(group)
        shape = est.virtual_grid.shape

        # Validate per-tag vote requirements exactly as eliminate() would.
        valid: list[tuple] = []
        needed: list[int] = []
        for entry in group:
            votes = k if entry[2] is None else entry[2]
            if not (1 <= votes <= k):
                outcomes[entry[0]] = ConfigurationError(
                    f"min_votes must be within 1..{k}, got {votes}"
                )
                continue
            valid.append(entry)
            needed.append(votes)
        if not valid:
            return
        group, n_tags = valid, len(valid)
        needed_arr = np.asarray(needed, dtype=np.int64)
        dtype = self._dtype

        tracking = np.empty((n_tags, k), dtype=dtype)
        if table is not None:
            slot_matrix = np.empty((n_tags, k), dtype=np.intp)
            for t, entry in enumerate(group):
                slot_matrix[t] = entry[4]
                tracking[t] = entry[1].tracking_rssi
            virtual = table.gather(slot_matrix)
        else:
            virtual = np.empty((n_tags, k, *shape), dtype=dtype)
            for t, entry in enumerate(group):
                virtual[t] = entry[4]
                tracking[t] = entry[1].tracking_rssi
        dev = kernels.batch_rssi_deviations(virtual, tracking, dtype=dtype)

        # Thresholds (shared per tag). Infeasible tags (NaN from the
        # closed form) get the scalar path's ConfigurationError.
        live = np.ones(n_tags, dtype=bool)
        if config.threshold_mode == "adaptive":
            base = kernels.batch_minimal_feasible_threshold(
                dev, min_cells=config.min_cells, dtype=dtype
            )
            infeasible = np.isnan(base)
            for t in np.flatnonzero(infeasible):
                outcomes[group[t][0]] = ConfigurationError(
                    f"fewer than min_cells={config.min_cells} cells have "
                    "fully known deviations; no feasible shared threshold "
                    "exists"
                )
                live[t] = False
            thresholds = base + config.threshold_margin_db
            if not live.all():
                thresholds = np.where(live, thresholds, 0.0)
        else:
            thresholds = np.full(n_tags, config.fixed_threshold_db, dtype=dtype)

        masks = kernels.batch_proximity_masks(dev, thresholds, dtype=dtype)
        selected = kernels.batch_eliminate(masks, needed_arr)

        # Empty intersections: the scalar fallback ladder, per tag.
        fallback: list[str | None] = [None] * n_tags
        empty = live & ~selected.any(axis=(1, 2))
        if empty.any():
            if config.empty_fallback == "error":
                for t in np.flatnonzero(empty):
                    outcomes[group[t][0]] = EstimationError(
                        f"elimination left no candidate regions at threshold "
                        f"{thresholds[t]:.3f} dB"
                    )
                    live[t] = False
            elif config.empty_fallback == "landmarc":
                for t in np.flatnonzero(empty):
                    idx, reading, _, quorum_diag, _ = group[t]
                    try:
                        base_res = est._fallback_landmarc.estimate(reading)
                        outcomes[idx] = EstimateResult(
                            position=base_res.position,
                            estimator=est.name,
                            diagnostics={
                                "fallback": "landmarc",
                                "threshold_db": float(thresholds[t]),
                                "n_selected": 0,
                                **quorum_diag,
                            },
                        )
                    except ReproError as exc:
                        outcomes[idx] = exc
                    live[t] = False
            else:  # "relax": minimal feasible threshold for those tags
                relax = np.flatnonzero(empty)
                relaxed = kernels.batch_minimal_feasible_threshold(
                    dev[relax], min_cells=config.min_cells, dtype=dtype
                )
                for j, t in enumerate(relax):
                    if np.isnan(relaxed[j]):  # pragma: no cover - guarded above
                        outcomes[group[t][0]] = ConfigurationError(
                            f"fewer than min_cells={config.min_cells} cells "
                            "have fully known deviations; no feasible shared "
                            "threshold exists"
                        )
                        live[t] = False
                        continue
                    fallback[t] = "relax"
                    thresholds[t] = relaxed[j]
                still = np.flatnonzero(empty & live)
                if still.size:
                    masks[still] = kernels.batch_proximity_masks(
                        dev[still], thresholds[still], dtype=dtype
                    )
                    selected[still] = kernels.batch_eliminate(
                        masks[still], needed_arr[still]
                    )

        if not live.any():
            return

        # Weighting — computed for the whole group, consumed per live tag.
        w1 = kernels.batch_w1(
            dev,
            selected,
            mode=config.w1_mode,
            virtual_rssi=virtual if config.w1_mode == "paper-literal" else None,
            dtype=dtype,
        )
        w2 = (
            kernels.batch_w2(
                selected, connectivity=config.connectivity, dtype=dtype
            )
            if config.use_w2
            else None
        )
        # combine_weights refuses empty support; dead tags were already
        # routed to fallbacks above, so give them a harmless placeholder
        # delta at cell (0, 0) — in *both* factors, since an empty
        # selection also zeroes a dead tag's w2 and the placeholder must
        # survive the product. Their weights row is never consumed.
        safe_w1, safe_w2 = w1, w2
        if not live.all():
            safe_w1 = w1.copy()
            safe_w1[~live, 0, 0] = 1.0
            if w2 is not None:
                safe_w2 = w2.copy()
                safe_w2[~live, 0, 0] = 1.0
        weights = kernels.batch_combine_weights(safe_w1, safe_w2, dtype=dtype)
        xy = kernels.batch_positions(weights, est._positions)
        areas = kernels.batch_map_areas(masks)
        n_selected = selected.reshape(n_tags, -1).sum(axis=1)
        lattice_cells = selected.shape[1] * selected.shape[2]

        for t in np.flatnonzero(live):
            idx, _, _, quorum_diag, _ = group[t]
            outcomes[idx] = EstimateResult(
                position=(float(xy[t, 0]), float(xy[t, 1])),
                estimator=est.name,
                diagnostics={
                    "threshold_db": float(thresholds[t]),
                    "threshold_mode": config.threshold_mode,
                    "n_selected": int(n_selected[t]),
                    "selected_fraction": int(n_selected[t]) / lattice_cells,
                    "map_areas": areas[t].tolist(),
                    "fallback": fallback[t],
                    "total_virtual_tags": est.virtual_grid.total_tags,
                    **quorum_diag,
                },
            )


class BatchLandmarc:
    """Batched LANDMARC — the degradation ladder's bulk fallback.

    RSSI-space distances for all T readings are computed as one
    ``(T, K, n_refs)`` tensor pass (including the canonical sorted
    reduction that makes distances reader-permutation invariant and the
    coverage rescaling for masked readings); the tiny k-NN selection and
    weighting then reuse the scalar code per tag, so results are bitwise
    identical to :meth:`LandmarcEstimator.estimate`.
    """

    def __init__(self, estimator: LandmarcEstimator) -> None:
        self.estimator = estimator

    def estimate_batch(
        self, readings: Sequence[TrackingReading]
    ) -> list[EstimateResult]:
        return _raise_first(self.estimate_outcomes(readings))

    def estimate_outcomes(
        self, readings: Sequence[TrackingReading]
    ) -> list[Outcome]:
        readings = list(readings)
        outcomes: list[Outcome] = [None] * len(readings)  # type: ignore[list-item]
        est = self.estimator
        with current_tracer().span(
            "engine.landmarc", n_readings=len(readings)
        ) as root:
            # Group readings by (K, n_refs) so each group stacks into one
            # rectangular (T, K, n_refs) tensor.
            groups: dict[tuple[int, int], list[int]] = {}
            for idx, reading in enumerate(readings):
                shape = (reading.n_readers, reading.n_references)
                groups.setdefault(shape, []).append(idx)
            root.set("n_groups", len(groups))
            for (k, n_refs), members in groups.items():
                tracking = np.empty((len(members), k))
                references = np.empty((len(members), k, n_refs))
                for t, idx in enumerate(members):
                    tracking[t] = readings[idx].tracking_rssi
                    references[t] = readings[idx].reference_rssi
                distances = kernels.batch_landmarc_distances(
                    tracking, references
                )
                for t, idx in enumerate(members):
                    try:
                        outcomes[idx] = est._estimate_from_distances(
                            readings[idx], distances[t]
                        )
                    except ReproError as exc:
                        outcomes[idx] = exc
        return outcomes


def estimate_all(
    estimator, readings: Sequence[TrackingReading]
) -> list[EstimateResult]:
    """Localize ``readings`` with ``estimator``, batched when possible.

    Uses the estimator's own ``estimate_batch`` when it provides one
    (:class:`VIREEstimator`, :class:`LandmarcEstimator`), otherwise falls
    back to a scalar loop — wrappers like the boundary-aware or gated
    estimators keep their exact semantics.
    """
    batch = getattr(estimator, "estimate_batch", None)
    if callable(batch):
        return batch(readings)
    return [estimator.estimate(r) for r in readings]
