"""Vectorized batch-estimation engine.

``repro.engine`` localizes many tracking tags at once with NumPy tensor
kernels while staying **bitwise identical** to the scalar
:meth:`~repro.core.estimator.VIREEstimator.estimate` loop — the identity
is the engine's contract, enforced by golden traces
(``tests/test_golden_traces.py``) and hypothesis property tests
(``tests/test_engine_properties.py``).

Layout:

* :mod:`~repro.engine.config` — :class:`EngineConfig`, the scheduling
  knobs (worker count, shard size) threaded through the experiment
  runner, the sweeps and the streaming service;
* :mod:`~repro.engine.kernels` — the batched ``(T, K, v_rows, v_cols)``
  twins of the scalar core kernels;
* :mod:`~repro.engine.batch` — :class:`BatchEngine` (full VIRE
  pipeline), :class:`BatchLandmarc` (the ladder's bulk fallback) and
  :func:`estimate_all`;
* :mod:`~repro.engine.sharding` — process sharding for multi-snapshot
  sweeps.
"""

from .batch import BatchEngine, BatchLandmarc, Outcome, estimate_all
from .config import EngineConfig
from .sharding import compute_shards, map_shards

__all__ = [
    "BatchEngine",
    "BatchLandmarc",
    "EngineConfig",
    "Outcome",
    "compute_shards",
    "estimate_all",
    "map_shards",
]
