"""NumPy-vectorized batch kernels over ``(T, K, v_rows, v_cols)`` tensors.

Every kernel here is the batched twin of a scalar kernel in
:mod:`repro.core` and is **bitwise identical** to running the scalar
kernel per tag. That guarantee is not an accident — each kernel is built
only from operations whose result cannot depend on the batch dimension:

* elementwise arithmetic/comparisons (``abs``, ``-``, ``<=``) are
  applied per element either way;
* reductions run over the *same axis length in the same order* — numpy
  reduces ``(T, K, r, c)`` over the K axis exactly as it reduces
  ``(K, r, c)`` over its leading axis (slice-sequential), and pairwise
  summation blocking depends only on the reduction length;
* order statistics (``partition``) select a value that is unique
  regardless of the partition algorithm;
* connected-component sizes are integers (exact in float64).

The one operation where BLAS could reorder sums — the final
``weights @ positions`` contraction — is deliberately looped per tag so
the scalar dot-product code path is reused verbatim. The equivalence is
enforced by golden traces and hypothesis property tests
(``tests/test_engine_properties.py``).

Every kernel accepts a ``dtype`` keyword (default ``np.float64``). The
default is the bitwise-exact tier; ``np.float32`` is the engine's opt-in
``precision="relaxed"`` tier — same operations, half-width arithmetic,
bounded by the differential harness (``tests/test_engine_differential.py``)
instead of bit equality. The final centroid contraction stays float64 on
both tiers.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..exceptions import ConfigurationError, EstimationError

__all__ = [
    "batch_rssi_deviations",
    "batch_minimal_feasible_threshold",
    "batch_proximity_masks",
    "batch_map_areas",
    "batch_eliminate",
    "batch_w1",
    "batch_w2",
    "batch_combine_weights",
    "batch_positions",
    "batch_landmarc_distances",
]

_EPS_DB = 1e-6  # mirrors repro.core.weighting._EPS_DB


def _check_batch(
    dev: np.ndarray, name: str = "deviations", dtype=np.float64
) -> np.ndarray:
    arr = np.asarray(dev, dtype=dtype)
    if arr.ndim != 4:
        raise ConfigurationError(
            f"{name} must have shape (T, K, v_rows, v_cols), got {arr.shape}"
        )
    return arr


def batch_rssi_deviations(
    virtual_rssi: np.ndarray, tracking_rssi: np.ndarray, *, dtype=np.float64
) -> np.ndarray:
    """``|virtual - tracking|`` for T tags at once.

    Parameters
    ----------
    virtual_rssi:
        ``(T, K, v_rows, v_cols)`` stacked per-tag interpolation output
        (tags sharing a snapshot share the same K surfaces — the caller
        stacks views, so no recomputation happens).
    tracking_rssi:
        ``(T, K)`` tracking-tag RSSI.
    """
    v = _check_batch(virtual_rssi, "virtual_rssi", dtype=dtype)
    t = np.asarray(tracking_rssi, dtype=dtype)
    if t.shape != v.shape[:2]:
        raise ConfigurationError(
            f"tracking_rssi shape {t.shape} mismatches batch {v.shape[:2]}"
        )
    out = np.subtract(v, t[:, :, np.newaxis, np.newaxis])
    return np.abs(out, out=out)


def batch_minimal_feasible_threshold(
    deviations: np.ndarray, *, min_cells: int = 1, dtype=np.float64
) -> np.ndarray:
    """Per-tag minimal feasible threshold, shape ``(T,)``.

    The batched closed form of paper §4.3 (see
    :func:`repro.core.threshold.minimal_feasible_threshold`): the
    ``min_cells``-th smallest per-cell maximum deviation, per tag.
    Infeasible tags (fewer than ``min_cells`` fully-known cells) get
    ``NaN`` — the caller decides whether that is an error.
    """
    dev = _check_batch(deviations, dtype=dtype)
    if min_cells < 1:
        raise ConfigurationError(f"min_cells must be >= 1, got {min_cells}")
    n_tags = dev.shape[0]
    cells = dev.shape[2] * dev.shape[3]
    if min_cells > cells:
        raise ConfigurationError(
            f"min_cells={min_cells} exceeds the {cells} lattice cells"
        )
    if np.any(np.isinf(dev)):
        raise ConfigurationError("deviations must be non-negative (NaN = unknown)")
    with np.errstate(invalid="ignore"):
        # NaN < 0 is False, so this is exactly "any finite negative".
        if np.any(dev < 0):
            raise ConfigurationError(
                "deviations must be non-negative (NaN = unknown)"
            )
    # max over the K axis: slice-sequential maximum, identical per tag.
    worst = dev.max(axis=1).reshape(n_tags, cells)
    nan_cells = np.isnan(worst)
    if nan_cells.any():
        worst = np.where(nan_cells, np.inf, worst)
    idx = min_cells - 1
    out = np.partition(worst, idx, axis=1)[:, idx]
    return np.where(np.isfinite(out), out, np.nan)


def batch_proximity_masks(
    deviations: np.ndarray, thresholds: np.ndarray, *, dtype=np.float64
) -> np.ndarray:
    """Boolean candidate masks ``(T, K, v_rows, v_cols)``.

    ``thresholds`` is one shared threshold per tag, shape ``(T,)``. NaN
    deviations are never candidates (masked/degraded inputs).
    """
    dev = _check_batch(deviations, dtype=dtype)
    thr = np.asarray(thresholds, dtype=dtype)
    if thr.shape != (dev.shape[0],):
        raise ConfigurationError(
            f"thresholds shape {thr.shape} mismatches batch of {dev.shape[0]}"
        )
    if np.any(thr < 0):
        raise ConfigurationError("thresholds must be non-negative")
    with np.errstate(invalid="ignore"):
        mask = dev <= thr[:, np.newaxis, np.newaxis, np.newaxis]
    # NaN <= t is already False, but make the contract explicit.
    mask &= np.isfinite(dev)
    return mask


def batch_map_areas(masks: np.ndarray) -> np.ndarray:
    """Per-reader proximity-map areas, shape ``(T, K)`` (int)."""
    if masks.ndim != 4:
        raise ConfigurationError(
            f"masks must have shape (T, K, v_rows, v_cols), got {masks.shape}"
        )
    return masks.sum(axis=(2, 3))


def batch_eliminate(
    masks: np.ndarray, min_votes: np.ndarray | None = None
) -> np.ndarray:
    """Batched intersection of the per-reader maps → ``(T, v_rows, v_cols)``.

    ``min_votes`` is per tag (``None`` = all K readers, the paper's
    strict intersection).
    """
    if masks.ndim != 4:
        raise ConfigurationError(
            f"masks must have shape (T, K, v_rows, v_cols), got {masks.shape}"
        )
    n_tags, k = masks.shape[:2]
    if min_votes is None:
        needed = np.full(n_tags, k, dtype=np.int64)
    else:
        needed = np.asarray(min_votes, dtype=np.int64)
        if needed.shape != (n_tags,):
            raise ConfigurationError(
                f"min_votes shape {needed.shape} mismatches batch of {n_tags}"
            )
    if np.any(needed < 1) or np.any(needed > k):
        bad = needed[(needed < 1) | (needed > k)][0]
        raise ConfigurationError(f"min_votes must be within 1..{k}, got {int(bad)}")
    votes = masks.sum(axis=1, dtype=np.int64)
    return votes >= needed[:, np.newaxis, np.newaxis]


def batch_w1(
    deviations: np.ndarray,
    selected: np.ndarray,
    *,
    mode: str = "inverse",
    virtual_rssi: np.ndarray | None = None,
    dtype=np.float64,
) -> np.ndarray:
    """Batched discrepancy factor — twin of
    :func:`repro.core.weighting.compute_w1`, shape ``(T, v_rows, v_cols)``.
    """
    dev = _check_batch(deviations, dtype=dtype)
    sel = np.asarray(selected, dtype=bool)
    if sel.shape != (dev.shape[0], *dev.shape[2:]):
        raise ConfigurationError(
            f"selection shape {sel.shape} mismatches deviations {dev.shape}"
        )
    out = np.zeros(sel.shape, dtype=dtype)
    if mode == "uniform":
        out[sel] = 1.0
        return out
    if mode == "inverse":
        mean_dev = dev.mean(axis=1)
        out[sel] = 1.0 / (mean_dev[sel] + _EPS_DB)
        return out
    if mode == "paper-literal":
        if virtual_rssi is None:
            raise ConfigurationError(
                "paper-literal w1 requires the interpolated virtual_rssi"
            )
        v = _check_batch(virtual_rssi, "virtual_rssi", dtype=dtype)
        if v.shape != dev.shape:
            raise ConfigurationError(
                f"virtual_rssi shape {v.shape} mismatches deviations {dev.shape}"
            )
        literal = (dev / np.maximum(np.abs(v), _EPS_DB)).mean(axis=1)
        out[sel] = 1.0 / (literal[sel] + _EPS_DB)
        return out
    raise ConfigurationError(f"unknown w1 mode {mode!r}")


def _label_structure(connectivity: int) -> np.ndarray:
    if connectivity == 4:
        return np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]])
    if connectivity == 8:
        return np.ones((3, 3))
    raise ConfigurationError(f"connectivity must be 4 or 8, got {connectivity}")


def batch_w2(
    selected: np.ndarray, *, connectivity: int = 4, dtype=np.float64
) -> np.ndarray:
    """Batched cluster-density factor — twin of
    :func:`repro.core.weighting.compute_w2`.

    All T masks are labelled in **one** ``scipy.ndimage.label`` call:
    the masks are stacked into a tall ``(T*(rows+1), cols)`` plane with a
    blank separator row between consecutive tags. One blank row is
    enough for both 4- and 8-connectivity (rows of adjacent tags end up
    two apart), so components never bridge tags. Component sizes are
    exact integers, hence bitwise identical to per-tag labelling.
    """
    sel = np.asarray(selected, dtype=bool)
    if sel.ndim != 3:
        raise ConfigurationError(
            f"selected must have shape (T, v_rows, v_cols), got {sel.shape}"
        )
    structure = _label_structure(connectivity)
    n_tags, rows, cols = sel.shape
    stacked = np.zeros(((rows + 1) * n_tags, cols), dtype=bool)
    # View the stack as (T, rows+1, cols): tag t fills the first `rows`
    # rows of its block, the last row stays blank (separator).
    stacked.reshape(n_tags, rows + 1, cols)[:, :rows, :] = sel
    labels, n = ndimage.label(stacked, structure=structure)
    out = np.zeros(sel.shape, dtype=dtype)
    if n == 0:
        return out
    sizes = np.bincount(labels.ravel(), minlength=n + 1).astype(dtype)
    block = labels.reshape(n_tags, rows + 1, cols)[:, :rows, :]
    mask = block > 0
    out[mask] = sizes[block[mask]]
    return out


def batch_combine_weights(
    w1: np.ndarray, w2: np.ndarray | None, *, dtype=np.float64
) -> np.ndarray:
    """Normalize ``w = w1 * w2`` per tag — twin of
    :func:`repro.core.weighting.combine_weights`.
    """
    w1 = np.asarray(w1, dtype=dtype)
    if w1.ndim != 3:
        raise ConfigurationError(
            f"w1 must have shape (T, v_rows, v_cols), got {w1.shape}"
        )
    w = w1 if w2 is None else w1 * np.asarray(w2, dtype=dtype)
    if np.any(w < 0):
        raise ConfigurationError("weights must be non-negative")
    n_tags = w.shape[0]
    totals = w.reshape(n_tags, -1).sum(axis=1)
    if np.any(totals <= 0):
        raise EstimationError("no surviving cells to weight")
    return w / totals[:, np.newaxis, np.newaxis]


def batch_landmarc_distances(
    tracking: np.ndarray, references: np.ndarray, *, ord: float = 2.0
) -> np.ndarray:
    """RSSI-space distances for T readings at once, shape ``(T, n_refs)``.

    Batched twin of :func:`repro.baselines.landmarc.rssi_space_distances`
    (finite positive ``ord`` only — the norms the estimator uses). The
    scalar function sums per-reader contributions in canonical (sorted)
    order; sorting each column of a ``(T, K, n_refs)`` tensor along the K
    axis yields the same sorted sequences, and the axis-1 reduction adds
    the K slices in the same sequential order as the scalar axis-0
    reduction — hence bitwise identity per tag. For fully present
    readings the coverage rescale is exactly ``K/K = 1.0`` and
    ``1.0 * sums`` is bitwise ``sums``, so one formula covers the scalar
    function's masked and unmasked branches alike.

    Parameters
    ----------
    tracking:
        ``(T, K)`` tracking-tag RSSI.
    references:
        ``(T, K, n_refs)`` reference-tag RSSI (NaN = masked hole).
    """
    t = np.asarray(tracking, dtype=np.float64)
    r = np.asarray(references, dtype=np.float64)
    if r.ndim != 3 or t.shape != r.shape[:2]:
        raise ConfigurationError(
            f"expected tracking (T, K) and references (T, K, n_refs), got "
            f"{t.shape} and {r.shape}"
        )
    if not np.isfinite(ord) or ord <= 0:
        raise ConfigurationError(
            f"batched distances require a finite positive ord, got {ord}"
        )
    diff = r - t[:, :, np.newaxis]
    present = np.isfinite(diff)
    k = diff.shape[1]
    counts = present.sum(axis=1)  # (T, n_refs)
    contrib = np.sort(np.abs(np.where(present, diff, 0.0)) ** ord, axis=1)
    sums = contrib.sum(axis=1)
    out = np.full(sums.shape, np.inf)
    has_any = counts > 0
    out[has_any] = (k / counts[has_any] * sums[has_any]) ** (1.0 / ord)
    return out


def batch_positions(weights: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Weighted centroid per tag, shape ``(T, 2)``.

    Looped per tag on purpose: ``w.ravel() @ positions`` is exactly the
    scalar estimator's contraction (BLAS gemv); a batched gemm could
    re-order the partial sums and break bitwise equivalence.
    """
    w = np.asarray(weights, dtype=np.float64)
    pos = np.asarray(positions, dtype=np.float64)
    if w.ndim != 3:
        raise ConfigurationError(
            f"weights must have shape (T, v_rows, v_cols), got {w.shape}"
        )
    if pos.shape != (w.shape[1] * w.shape[2], 2):
        raise ConfigurationError(
            f"positions shape {pos.shape} mismatches lattice {w.shape[1:]}"
        )
    out = np.empty((w.shape[0], 2))
    for t in range(w.shape[0]):
        out[t] = w[t].ravel() @ pos
    return out
