"""Shared data types for readings and estimates.

The whole library converses in terms of two records:

* :class:`TrackingReading` — one localization input: the RSSI of the
  tracking tag and of every real reference tag, as seen by each reader.
  This is what the middleware hands to an estimator, and what both
  LANDMARC and VIRE consume.
* :class:`EstimateResult` — one localization output: the estimated
  coordinate plus optional diagnostics.

Estimators implement the :class:`Estimator` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from .exceptions import ReadingError

__all__ = [
    "TrackingReading",
    "EstimateResult",
    "Estimator",
    "estimation_error",
]


@dataclass(frozen=True)
class TrackingReading:
    """Per-reader RSSI snapshot used as the input of a location estimate.

    Parameters
    ----------
    reference_rssi:
        Array of shape ``(K, n_refs)``: RSSI (dBm) of each real reference
        tag as measured by each of the ``K`` readers.
    tracking_rssi:
        Array of shape ``(K,)``: RSSI (dBm) of the tracking tag at each
        reader.
    reference_positions:
        Array of shape ``(n_refs, 2)``: known coordinates (metres) of the
        reference tags, in the same order as the columns of
        ``reference_rssi``.
    reader_ids:
        Optional identifiers for the readers (defaults to ``0..K-1``).
    tag_id:
        Optional identifier of the tracking tag.
    timestamp:
        Optional simulation/wall-clock time of the snapshot (seconds).
    masked:
        ``True`` marks a *partial* reading assembled under degraded
        input: ``reference_rssi`` may contain NaN where a (reader,
        reference-tag) series was missing or stale, and readers may be
        absent entirely. Strict readings (``masked=False``, the default)
        keep the original all-finite validation, so pre-existing callers
        are untouched. ``tracking_rssi`` and ``reference_positions``
        must be finite in either mode.
    """

    reference_rssi: np.ndarray
    tracking_rssi: np.ndarray
    reference_positions: np.ndarray
    reader_ids: tuple[Any, ...] | None = None
    tag_id: Any = None
    timestamp: float | None = None
    masked: bool = False

    def __post_init__(self) -> None:
        ref = np.asarray(self.reference_rssi, dtype=np.float64)
        trk = np.asarray(self.tracking_rssi, dtype=np.float64)
        pos = np.asarray(self.reference_positions, dtype=np.float64)
        object.__setattr__(self, "reference_rssi", ref)
        object.__setattr__(self, "tracking_rssi", trk)
        object.__setattr__(self, "reference_positions", pos)
        if ref.ndim != 2:
            raise ReadingError(
                f"reference_rssi must be 2-D (K, n_refs), got shape {ref.shape}"
            )
        if trk.ndim != 1:
            raise ReadingError(
                f"tracking_rssi must be 1-D (K,), got shape {trk.shape}"
            )
        if ref.shape[0] != trk.shape[0]:
            raise ReadingError(
                "reader count mismatch: reference_rssi has "
                f"{ref.shape[0]} readers, tracking_rssi has {trk.shape[0]}"
            )
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ReadingError(
                f"reference_positions must have shape (n_refs, 2), got {pos.shape}"
            )
        if pos.shape[0] != ref.shape[1]:
            raise ReadingError(
                "reference tag count mismatch: reference_rssi has "
                f"{ref.shape[1]} tags, reference_positions has {pos.shape[0]}"
            )
        if self.masked:
            # NaN marks a missing series; infinities are still corrupt data.
            if np.any(np.isinf(ref)):
                raise ReadingError("reference_rssi contains infinite values")
        elif not np.all(np.isfinite(ref)):
            raise ReadingError("reference_rssi contains non-finite values")
        if not np.all(np.isfinite(trk)):
            raise ReadingError("tracking_rssi contains non-finite values")
        if not np.all(np.isfinite(pos)):
            raise ReadingError("reference_positions contains non-finite values")
        if self.reader_ids is not None:
            ids = tuple(self.reader_ids)
            if len(ids) != trk.shape[0]:
                raise ReadingError(
                    f"reader_ids has {len(ids)} entries for {trk.shape[0]} readers"
                )
            object.__setattr__(self, "reader_ids", ids)

    @property
    def n_readers(self) -> int:
        """Number of readers ``K`` in this snapshot."""
        return int(self.tracking_rssi.shape[0])

    @property
    def n_references(self) -> int:
        """Number of real reference tags in this snapshot."""
        return int(self.reference_rssi.shape[1])

    @property
    def reference_finite_mask(self) -> np.ndarray:
        """Boolean ``(K, n_refs)``: True where the reference RSSI is present."""
        return np.isfinite(self.reference_rssi)

    @property
    def reader_reference_coverage(self) -> np.ndarray:
        """Per-reader fraction of present reference values, shape ``(K,)``."""
        return self.reference_finite_mask.mean(axis=1)

    @property
    def is_complete(self) -> bool:
        """True when every reference value is present (masked or not)."""
        return not self.masked or bool(self.reference_finite_mask.all())

    def subset_readers(self, indices: Sequence[int]) -> "TrackingReading":
        """Return a new reading restricted to the given reader indices.

        Useful for reader-count ablations and for failure-injection tests
        (dropping a reader). Masked readings stay masked.
        """
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size == 0:
            raise ReadingError("cannot build a reading with zero readers")
        ids = None
        if self.reader_ids is not None:
            ids = tuple(self.reader_ids[int(i)] for i in idx)
        return TrackingReading(
            reference_rssi=self.reference_rssi[idx, :],
            tracking_rssi=self.tracking_rssi[idx],
            reference_positions=self.reference_positions,
            reader_ids=ids,
            tag_id=self.tag_id,
            timestamp=self.timestamp,
            masked=self.masked,
        )


@dataclass(frozen=True)
class EstimateResult:
    """The output of one location estimate.

    Attributes
    ----------
    position:
        Estimated ``(x, y)`` coordinate in metres.
    estimator:
        Short name of the estimator that produced this result.
    diagnostics:
        Free-form per-estimator diagnostics (selected cell count, threshold
        used, neighbour indices, ...). Never required for correctness.
    """

    position: tuple[float, float]
    estimator: str = ""
    diagnostics: Mapping[str, Any] = field(default_factory=dict)

    @property
    def x(self) -> float:
        return float(self.position[0])

    @property
    def y(self) -> float:
        return float(self.position[1])

    def error_to(self, true_position: Sequence[float]) -> float:
        """Euclidean estimation error ``e`` to the true coordinate (paper §4.3)."""
        return estimation_error(self.position, true_position)


def estimation_error(
    estimated: Sequence[float], true_position: Sequence[float]
) -> float:
    """Euclidean distance between an estimate and the ground-truth position.

    This is the paper's error metric ``e = sqrt((x-x0)^2 + (y-y0)^2)``.
    """
    est = np.asarray(estimated, dtype=np.float64)
    true = np.asarray(true_position, dtype=np.float64)
    if est.shape != (2,) or true.shape != (2,):
        raise ReadingError(
            f"positions must be 2-vectors, got shapes {est.shape} and {true.shape}"
        )
    return float(np.hypot(est[0] - true[0], est[1] - true[1]))


@runtime_checkable
class Estimator(Protocol):
    """Protocol implemented by every localization estimator in this package."""

    #: short human-readable name used in reports ("LANDMARC", "VIRE", ...)
    name: str

    def estimate(self, reading: TrackingReading) -> EstimateResult:
        """Estimate the tracking tag's position from one reading."""
        ...
