"""repro — a reproduction of "VIRE: Active RFID-based Localization Using
Virtual Reference Elimination" (Zhao, Liu, Ni — ICPP 2007).

The package implements the VIRE algorithm, the LANDMARC baseline, and a
complete synthetic substitute for the paper's RF Code testbed: a
physically-motivated RF channel (path loss, correlated shadowing,
image-method multipath, fading, tag interference) and an event-driven
tag/reader/middleware simulation.

Quickstart
----------
>>> from repro import (paper_scenario, run_scenario,
...                    LandmarcEstimator, VIREEstimator, VIREConfig)
>>> scenario = paper_scenario("Env3", n_trials=5)
>>> vire = VIREEstimator(scenario.grid, VIREConfig(target_total_tags=900))
>>> result = run_scenario(scenario, [LandmarcEstimator(), vire])
>>> result.by_name("VIRE").summary().mean < result.by_name("LANDMARC").summary().mean
True

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from .types import TrackingReading, EstimateResult, Estimator, estimation_error
from .exceptions import (
    ReproError,
    ConfigurationError,
    GeometryError,
    ChannelError,
    ReadingError,
    EstimationError,
    SimulationError,
    SupervisionError,
    CheckpointError,
)
from .geometry import (
    ReferenceGrid,
    Room,
    Wall,
    rectangular_room,
    paper_testbed_grid,
    corner_reader_positions,
    figure2a_tracking_tags,
    NON_BOUNDARY_TAGS,
    BOUNDARY_TAGS,
)
from .rf import (
    RFChannel,
    EnvironmentSpec,
    env1,
    env2,
    env3,
    environment_by_name,
    LogDistancePathLoss,
    ShadowingSpec,
    MultipathSpec,
    RicianFading,
    TagInterferenceModel,
    HumanMovementDisturbance,
    PowerLevelQuantizer,
)
from .hardware import (
    TestbedSimulator,
    Deployment,
    build_paper_deployment,
    ActiveTag,
    Reader,
    MiddlewareServer,
    SmoothingSpec,
    TagSpec,
    NEW_EQUIPMENT,
    ORIGINAL_EQUIPMENT,
)
from .baselines import (
    FingerprintEstimator,
    LandmarcEstimator,
    WeightedKnnEstimator,
    NearestReferenceEstimator,
    WeightedCentroidEstimator,
    TriangulationLandmarcEstimator,
)
from .core import (
    VIREEstimator,
    SoftVIREEstimator,
    VIREConfig,
    VirtualGrid,
    BoundaryAwareEstimator,
    IrregularVirtualGrid,
    IrregularVIREEstimator,
    QuorumPolicy,
)
from .faults import (
    FaultPlan,
    FaultInjector,
    FaultEvent,
    chaos_preset,
    ReaderOutageFault,
    BurstLossFault,
    TagDeathFault,
    CalibrationDriftFault,
    DelayFault,
    CrashPoint,
    SimulatedCrash,
)
from .calibration import (
    CalibrationPolicy,
    DriftCorrector,
    TrustState,
)
from .runtime import (
    RuntimePolicy,
    SupervisedPool,
    supervised_map,
    CheckpointWriter,
    CheckpointState,
    load_checkpoint,
)
from .tracking import (
    Trajectory,
    TagTracker,
    KalmanFilter2D,
    AlphaBetaFilter,
    MovingAverageFilter,
    NoFilter,
    evaluate_track,
)
from . import analysis
from .service import (
    LocalizationService,
    SessionReport,
    ServiceConfig,
    ServicePipeline,
    ServiceResult,
    InterpolationCache,
    MetricsRegistry,
)
from .engine import (
    BatchEngine,
    BatchLandmarc,
    EngineConfig,
    estimate_all,
)
from .experiments import (
    TestbedScenario,
    paper_scenario,
    run_scenario,
    TrialSampler,
    MeasurementSpec,
    figures,
    sweeps,
)

__version__ = "1.0.0"

__all__ = [
    # types
    "TrackingReading", "EstimateResult", "Estimator", "estimation_error",
    # exceptions
    "ReproError", "ConfigurationError", "GeometryError", "ChannelError",
    "ReadingError", "EstimationError", "SimulationError",
    "SupervisionError", "CheckpointError",
    # geometry
    "ReferenceGrid", "Room", "Wall", "rectangular_room",
    "paper_testbed_grid", "corner_reader_positions", "figure2a_tracking_tags",
    "NON_BOUNDARY_TAGS", "BOUNDARY_TAGS",
    # rf
    "RFChannel", "EnvironmentSpec", "env1", "env2", "env3",
    "environment_by_name", "LogDistancePathLoss", "ShadowingSpec",
    "MultipathSpec", "RicianFading", "TagInterferenceModel",
    "HumanMovementDisturbance", "PowerLevelQuantizer",
    # hardware
    "TestbedSimulator", "Deployment", "build_paper_deployment", "ActiveTag",
    "Reader", "MiddlewareServer", "SmoothingSpec", "TagSpec",
    "NEW_EQUIPMENT", "ORIGINAL_EQUIPMENT",
    # baselines
    "LandmarcEstimator", "WeightedKnnEstimator", "NearestReferenceEstimator",
    "WeightedCentroidEstimator", "TriangulationLandmarcEstimator",
    "FingerprintEstimator",
    # core (VIRE)
    "VIREEstimator", "SoftVIREEstimator", "VIREConfig", "VirtualGrid",
    "BoundaryAwareEstimator",
    "IrregularVirtualGrid", "IrregularVIREEstimator", "QuorumPolicy",
    # faults (chaos engineering)
    "FaultPlan", "FaultInjector", "FaultEvent", "chaos_preset",
    "ReaderOutageFault", "BurstLossFault", "TagDeathFault",
    "CalibrationDriftFault", "DelayFault",
    "CrashPoint", "SimulatedCrash",
    # calibration (self-healing drift correction + tag quarantine)
    "CalibrationPolicy", "DriftCorrector", "TrustState",
    # runtime (supervised execution + checkpoints)
    "RuntimePolicy", "SupervisedPool", "supervised_map",
    "CheckpointWriter", "CheckpointState", "load_checkpoint",
    # tracking (mobility)
    "Trajectory", "TagTracker", "KalmanFilter2D", "AlphaBetaFilter",
    "MovingAverageFilter", "NoFilter", "evaluate_track",
    # engine (vectorized batch estimation)
    "BatchEngine", "BatchLandmarc", "EngineConfig", "estimate_all",
    # experiments
    "TestbedScenario", "paper_scenario", "run_scenario", "TrialSampler",
    "MeasurementSpec", "figures", "sweeps", "analysis",
    # service (streaming localization)
    "LocalizationService", "SessionReport", "ServiceConfig",
    "ServicePipeline", "ServiceResult", "InterpolationCache",
    "MetricsRegistry",
    "__version__",
]
