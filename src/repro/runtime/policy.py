"""RuntimePolicy: the knobs of the supervised execution layer.

One frozen dataclass carries every supervision/recovery knob so it can
thread unchanged through :class:`~repro.engine.config.EngineConfig` (the
sweep/process-pool side) and :class:`~repro.service.pipeline.ServiceConfig`
(the streaming side). The defaults are deliberately conservative:
``supervised=False`` leaves every existing code path *bit-identical* to
the unsupervised behaviour — no wrapper objects, no extra branches on the
hot path — so turning the feature off really is the null operation.

:class:`RetryPolicy` is the shared deadline/retry/backoff vocabulary:
one source of truth for the backoff math, consumed both by the process
pool (:class:`~repro.runtime.supervisor.SupervisedPool`, via
:attr:`RuntimePolicy.retry`) and by the zone gateway's supervised
worker-call path (:class:`~repro.zones.failover.ZoneFailoverPolicy`).

Determinism contract: supervision changes *scheduling*, never *answers*.
A retried shard re-executes the same pure function over the same inputs,
and the serial last-resort fallback runs that function in-process — so a
crashed or hung worker degrades throughput, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..exceptions import ConfigurationError

__all__ = ["RetryPolicy", "RuntimePolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline + bounded exponential backoff for one supervised call.

    Parameters
    ----------
    deadline_s:
        Per-call deadline in wall-clock seconds once the supervisor
        starts waiting on it. ``None`` disables deadlines (death of the
        callee is still supervised).
    max_retries:
        How many times one call may be re-attempted after a timeout or
        callee death before the caller's last resort (serial fallback,
        zone respawn, or :class:`~repro.exceptions.SupervisionError`)
        takes over.
    backoff_base_s / backoff_multiplier:
        Exponential backoff between attempts: attempt ``k`` (1-based)
        waits ``backoff_base_s * backoff_multiplier**(k-1)`` before the
        retry. Callers inject the sleep, so tests pay no wall-clock.
    """

    deadline_s: float | None = None
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be positive or None, got {self.deadline_s}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0:
            raise ConfigurationError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1, "
                f"got {self.backoff_multiplier}"
            )

    def with_(self, **changes) -> "RetryPolicy":
        """Modified copy (thin wrapper over dataclasses.replace)."""
        return replace(self, **changes)

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        return self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)


@dataclass(frozen=True)
class RuntimePolicy:
    """Supervision and checkpointing knobs of :mod:`repro.runtime`.

    Parameters
    ----------
    supervised:
        Master switch. ``False`` (default) routes process-pool work
        through the bare executor exactly as before and disables the
        service's per-shard engine supervision.
    shard_timeout_s:
        Per-shard (per-task) deadline in wall-clock seconds once the
        supervisor starts waiting on it. ``None`` disables deadlines
        (worker death is still supervised).
    max_retries:
        How many times one task may be re-dispatched to the pool after a
        timeout or worker death before the serial fallback (or
        :class:`~repro.exceptions.SupervisionError`) takes over.
    backoff_base_s / backoff_multiplier:
        Exponential backoff between retries of one task: attempt ``k``
        (1-based) sleeps ``backoff_base_s * backoff_multiplier**(k-1)``
        before resubmission. The sleep function is injectable on the
        pool, so tests pay no wall-clock for it.
    serial_fallback:
        After retries are exhausted, re-execute the task serially
        in-process (the deterministic last resort). ``False`` raises
        :class:`~repro.exceptions.SupervisionError` instead.
    checkpoint_interval_s:
        Streaming sessions: simulated seconds between write-ahead
        checkpoint snapshots (see :mod:`repro.runtime.checkpoint`).
        Only consulted when a checkpoint path is attached to the run.
    """

    supervised: bool = False
    shard_timeout_s: float | None = None
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    serial_fallback: bool = True
    checkpoint_interval_s: float = 2.0

    def __post_init__(self) -> None:
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ConfigurationError(
                f"shard_timeout_s must be positive or None, "
                f"got {self.shard_timeout_s}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0:
            raise ConfigurationError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1, "
                f"got {self.backoff_multiplier}"
            )
        if self.checkpoint_interval_s <= 0:
            raise ConfigurationError(
                f"checkpoint_interval_s must be positive, "
                f"got {self.checkpoint_interval_s}"
            )

    def with_(self, **changes) -> "RuntimePolicy":
        """Modified copy (thin wrapper over dataclasses.replace)."""
        return replace(self, **changes)

    @property
    def retry(self) -> RetryPolicy:
        """This policy's deadline/retry/backoff knobs as a :class:`RetryPolicy`.

        The pool-facing fields (``shard_timeout_s``, ``max_retries``,
        ``backoff_*``) are the *same* values — this view exists so every
        consumer of the backoff math (:class:`SupervisedPool`, the zone
        gateway's call path) shares one implementation.
        """
        return RetryPolicy(
            deadline_s=self.shard_timeout_s,
            max_retries=self.max_retries,
            backoff_base_s=self.backoff_base_s,
            backoff_multiplier=self.backoff_multiplier,
        )

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based); see :class:`RetryPolicy`."""
        return self.retry.backoff_s(attempt)
