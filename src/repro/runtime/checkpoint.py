"""Append-only JSONL write-ahead checkpoints for streaming sessions.

The checkpoint file is a sequence of JSON documents, one per line, in
strict append order — the classic write-ahead discipline:

* ``{"type": "header", ...}`` — once per file: format version plus
  enough scenario identity (environment, seed, duration, tag ids) to
  refuse a resume against the wrong world.
* ``{"type": "result", "i": N, ...}`` — one line per served result, in
  completion order, flushed as served. These are the *expensive* bytes:
  every result logged here is an estimate the resumed session never has
  to recompute.
* ``{"type": "snapshot", "t": ..., "results_count": K, ...}`` — a
  consistency cut: "the first K result lines above, plus this pipeline
  state, describe the session exactly at simulated time t". Results are
  durable only once a snapshot commits them; trailing result lines past
  the last snapshot are discarded on load (the resumed session recomputes
  them bit-identically — determinism makes the recompute free of risk).
* ``{"type": "resume", ...}`` / ``{"type": "end", ...}`` — markers for
  observability; loaders skip them.

Robustness: the loader tolerates a truncated or corrupt tail (the crash
may have landed mid-write) by stopping at the first unparsable line, and
resolves duplicate result indices (a pre-crash tail recomputed after a
resume) by keeping the *latest* line — which, by the determinism
contract, is byte-identical to the one it replaces.

This module is deliberately below the service layer: it speaks plain
dicts. :mod:`repro.service.session` owns the conversion between
:class:`~repro.service.pipeline.ServiceResult` and result documents.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, IO, Mapping

import numpy as np

from ..exceptions import CheckpointError
from ..utils.logging import get_structured_logger, log_event

__all__ = [
    "FORMAT_VERSION",
    "CheckpointWriter",
    "CheckpointState",
    "load_checkpoint",
    "validate_header",
    "jsonable",
]

FORMAT_VERSION = 1

_LOGGER_NAME = "repro.runtime"


def jsonable(value: Any) -> Any:
    """Best-effort conversion of ``value`` into plain JSON types.

    NumPy scalars and arrays become Python numbers and lists; mappings
    and sequences recurse; anything else falls back to ``str`` — the
    checkpoint must always be writable, even for exotic diagnostics.
    """
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [jsonable(v) for v in items]
    return str(value)


def _dump_line(doc: Mapping[str, Any]) -> str:
    return json.dumps(jsonable(doc), sort_keys=True, separators=(",", ":"))


class CheckpointWriter:
    """Appends WAL lines to a checkpoint file, flushing every write.

    Parameters
    ----------
    path:
        Checkpoint file. ``append=False`` truncates (a fresh session);
        ``append=True`` continues an existing file (a resumed session).
    fsync:
        When True, snapshots additionally ``os.fsync`` — full crash
        durability at the price of one disk sync per snapshot.
    """

    def __init__(self, path: str | os.PathLike, *, append: bool = False,
                 fsync: bool = False):
        self.path = os.fspath(path)
        self._fsync = bool(fsync)
        mode = "a" if append else "w"
        self._fh: IO[str] | None = open(self.path, mode, encoding="utf-8")
        self._logger = get_structured_logger(_LOGGER_NAME)
        self.results_logged = 0
        self.snapshots_written = 0

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.flush()
            fh.close()

    @property
    def closed(self) -> bool:
        return self._fh is None

    def _write(self, doc: Mapping[str, Any], *, sync: bool = False) -> None:
        if self._fh is None:
            raise CheckpointError(f"checkpoint writer for {self.path} is closed")
        self._fh.write(_dump_line(doc) + "\n")
        self._fh.flush()
        if sync and self._fsync:
            os.fsync(self._fh.fileno())

    # -- record kinds --------------------------------------------------------

    def write_header(self, **fields: Any) -> None:
        self._write({"type": "header", "version": FORMAT_VERSION, **fields})

    def append_result(self, index: int, doc: Mapping[str, Any]) -> None:
        self._write({"type": "result", "i": int(index), **doc})
        self.results_logged += 1

    def write_snapshot(
        self, *, t: float, results_count: int, **fields: Any
    ) -> None:
        from ..obs import current_tracer  # local: keep module import-light

        with current_tracer().span(
            "runtime.snapshot", t_cut=float(t), results=int(results_count)
        ):
            self._write(
                {
                    "type": "snapshot",
                    "t": float(t),
                    "results_count": int(results_count),
                    **fields,
                },
                sync=True,
            )
        self.snapshots_written += 1
        log_event(
            self._logger, "checkpoint_snapshot",
            path=self.path, t=t, results=results_count,
        )

    def write_marker(self, kind: str, **fields: Any) -> None:
        if kind in ("header", "result", "snapshot"):
            raise CheckpointError(f"{kind!r} is not a marker type")
        self._write({"type": kind, **fields})


@dataclass(frozen=True)
class CheckpointState:
    """A loaded checkpoint: the last committed consistency cut.

    Attributes
    ----------
    header:
        The file's header document (scenario identity, version).
    snapshot:
        The last complete snapshot document.
    results:
        The committed result documents, in completion order — exactly
        ``snapshot["results_count"]`` of them.
    """

    header: Mapping[str, Any]
    snapshot: Mapping[str, Any]
    results: tuple[Mapping[str, Any], ...]

    @property
    def t_cut(self) -> float:
        """Simulated time of the consistency cut."""
        return float(self.snapshot["t"])


def validate_header(
    restored: CheckpointState, expected: Mapping[str, Any]
) -> None:
    """Refuse to resume a checkpoint against a different world.

    Every key of ``expected`` must match the loaded header after
    :func:`jsonable` normalization. The identity keys include the
    session's ``zone`` (``None`` for unzoned sessions), so a zone
    worker's checkpoint can never resume into a different zone — the
    two zones are independent seeded worlds and replay against the
    wrong one would silently produce garbage.
    """
    for key, want in expected.items():
        got = restored.header.get(key)
        if jsonable(got) != jsonable(want):
            raise CheckpointError(
                f"checkpoint header mismatch on {key!r}: checkpoint has "
                f"{got!r}, this session has {want!r} — refusing to "
                f"resume against a different world"
            )


def load_checkpoint(path: str | os.PathLike) -> CheckpointState:
    """Parse a checkpoint file down to its last committed cut.

    Raises :class:`~repro.exceptions.CheckpointError` when the file has
    no header, no complete snapshot, an unsupported version, or a
    snapshot that commits results the file never logged.
    """
    path = os.fspath(path)
    header: Mapping[str, Any] | None = None
    snapshot: Mapping[str, Any] | None = None
    results_by_index: dict[int, Mapping[str, Any]] = {}
    truncated = False
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                truncated = True  # crash landed mid-write; stop here
                break
            kind = doc.get("type")
            if kind == "header":
                if header is None:
                    header = doc
            elif kind == "result":
                results_by_index[int(doc["i"])] = doc
            elif kind == "snapshot":
                snapshot = doc
            # markers ("resume", "end", unknown future kinds): skipped
    if header is None:
        raise CheckpointError(f"checkpoint {path} has no header line")
    version = header.get("version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {version!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    if snapshot is None:
        raise CheckpointError(
            f"checkpoint {path} has no complete snapshot to resume from"
        )
    count = int(snapshot["results_count"])
    missing = [i for i in range(count) if i not in results_by_index]
    if missing:
        raise CheckpointError(
            f"checkpoint {path} snapshot commits {count} results but "
            f"indices {missing[:5]}{'...' if len(missing) > 5 else ''} "
            f"were never logged"
        )
    log_event(
        get_structured_logger(_LOGGER_NAME), "checkpoint_loaded",
        path=path, t=snapshot.get("t"), results=count,
        truncated_tail=truncated,
    )
    return CheckpointState(
        header=header,
        snapshot=snapshot,
        results=tuple(results_by_index[i] for i in range(count)),
    )
