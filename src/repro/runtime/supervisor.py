"""SupervisedPool: process-pool execution that survives its workers.

PR 3 moved the heavy sweeps onto ``ProcessPoolExecutor``; this module
makes that substrate survivable. A bare pool has three failure modes that
abort an entire run:

* a worker dies (OOM-killed, ``os._exit``, segfault) — the executor
  raises :class:`BrokenProcessPool` and *every* outstanding future is
  lost;
* a worker hangs — ``pool.map`` blocks forever, no deadline;
* a transient exception poisons one shard — the whole sweep unwinds.

:class:`SupervisedPool` wraps the executor with per-task deadlines,
bounded retries with exponential backoff, automatic pool respawn on
worker death, and a deterministic serial in-process fallback. Because
every task function here is *pure* (a seeded trial/shard computes from
its inputs alone), re-execution is bit-identical to a clean first run —
supervision changes scheduling, never answers. The golden-trace and
property suites assert exactly that.

Failure classification:

* ``BrokenExecutor`` / ``BrokenProcessPool`` — worker death. Respawn the
  pool, resubmit every unfinished task, charge one attempt to the task
  being awaited.
* ``TimeoutError`` — deadline exceeded. The hung worker cannot be
  cancelled through the executor API, so the pool is killed and
  respawned to reclaim the slot; the task is charged one attempt.
* any other exception — a deterministic application error: the serial
  path would raise the very same thing, so it propagates immediately
  (retrying deterministic failures only wastes time).

Everything is observable: retries, timeouts, respawns and serial
fallbacks are counted through an optional (duck-typed)
:class:`~repro.service.metrics.MetricsRegistry` and logged as structured
``event=...`` lines under the ``repro.runtime`` logger.
"""

from __future__ import annotations

import concurrent.futures
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence, TypeVar

from ..exceptions import ConfigurationError, SupervisionError
from ..obs import current_tracer
from ..utils.logging import get_structured_logger, log_event
from .policy import RuntimePolicy

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["SupervisedPool", "supervised_map", "run_shard_with_salvage"]

_LOGGER_NAME = "repro.runtime"

# Timeout classes differ across Python versions (concurrent.futures got
# its own before 3.11 aliased it to the builtin); catch both.
_TIMEOUT_ERRORS = (concurrent.futures.TimeoutError, TimeoutError)


def _worker_init() -> None:
    """Restore default SIGTERM handling inside pool workers.

    Forked workers inherit the parent's signal handlers; the CLI maps
    SIGTERM to ``KeyboardInterrupt`` for graceful shutdown, which — if
    inherited — turns :meth:`SupervisedPool.close`'s ``terminate()``
    into an exception raised inside ``multiprocessing``'s queue lock
    (noisy tracebacks, and a deadlock if the dying worker holds the
    call-queue lock). Workers must die quietly on SIGTERM.
    """

    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except ValueError:  # pragma: no cover - non-main thread
        pass


class SupervisedPool:
    """A process pool with deadlines, retries, respawn and serial fallback.

    Parameters
    ----------
    max_workers:
        Worker processes (must be >= 1).
    policy:
        The :class:`~repro.runtime.policy.RuntimePolicy` driving
        deadlines/retries/backoff/fallback.
    metrics:
        Optional duck-typed metrics registry (anything with
        ``counter(name, help)``); mirrors supervision counters as
        ``runtime_*_total``.
    sleep:
        Injectable backoff sleep (tests pass a recorder and pay no
        wall-clock).

    Use as a context manager; :meth:`close` kills any leftover worker
    (including hung ones) on the way out.
    """

    def __init__(
        self,
        max_workers: int,
        policy: RuntimePolicy | None = None,
        *,
        metrics: Any | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = int(max_workers)
        self.policy = policy or RuntimePolicy(supervised=True)
        self._sleep = sleep
        self._pool: ProcessPoolExecutor | None = None
        self._logger = get_structured_logger(_LOGGER_NAME)
        self.retries = 0
        self.timeouts = 0
        self.respawns = 0
        self.serial_fallbacks = 0
        self._metrics = metrics
        self._c_retries = self._c_timeouts = None
        self._c_respawns = self._c_fallbacks = self._c_tasks = None
        if metrics is not None:
            self._c_tasks = metrics.counter(
                "runtime_tasks_total", "Tasks dispatched to the supervised pool"
            )
            self._c_retries = metrics.counter(
                "runtime_retries_total", "Supervised-pool task retries"
            )
            self._c_timeouts = metrics.counter(
                "runtime_timeouts_total", "Supervised-pool task deadline hits"
            )
            self._c_respawns = metrics.counter(
                "runtime_pool_respawns_total",
                "Process-pool respawns after worker death or hang",
            )
            self._c_fallbacks = metrics.counter(
                "runtime_serial_fallbacks_total",
                "Tasks recovered by the serial in-process fallback",
            )

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, initializer=_worker_init
            )
        return self._pool

    def _kill_pool(self) -> None:
        """Tear the executor down hard, terminating hung workers."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            if proc.is_alive():
                proc.terminate()
        for proc in processes:
            proc.join(timeout=5.0)

    def close(self) -> None:
        """Release the pool (terminates any leftover/hung worker)."""
        self._kill_pool()

    # -- the supervised map --------------------------------------------------

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every task; results in input order.

        ``fn`` must be picklable and *pure per task* — that purity is
        what makes retries and the serial fallback bit-identical to a
        clean run. Raises :class:`~repro.exceptions.SupervisionError`
        only when a task exhausts retries and the serial fallback is
        disabled; deterministic application errors raised by ``fn``
        propagate unchanged.
        """
        items = list(tasks)
        if not items:
            return []
        if self._c_tasks is not None:
            self._c_tasks.inc(len(items))
        pool = self._ensure_pool()
        futures: dict[int, concurrent.futures.Future] = {
            i: pool.submit(fn, item) for i, item in enumerate(items)
        }
        attempts = [0] * len(items)
        results: list[R | None] = [None] * len(items)
        for i in range(len(items)):
            results[i] = self._await_task(i, fn, items, futures, attempts)
        return list(results)  # type: ignore[return-value]

    def _await_task(
        self,
        i: int,
        fn: Callable[[T], R],
        items: list[T],
        futures: dict[int, concurrent.futures.Future],
        attempts: list[int],
    ) -> R:
        # One source of truth for deadline/retry/backoff math: the
        # RetryPolicy view shared with the zone gateway's call path.
        retry = self.policy.retry
        timeout = retry.deadline_s
        while True:
            future = futures[i]
            try:
                return future.result(timeout=timeout)
            except concurrent.futures.BrokenExecutor:
                # BrokenProcessPool and friends: worker death killed the
                # whole executor and every outstanding future with it.
                attempts[i] += 1
                log_event(
                    self._logger, "pool_broken",
                    task=i, attempt=attempts[i],
                )
                self._respawn(fn, items, futures, skip=i)
            except _TIMEOUT_ERRORS:
                attempts[i] += 1
                self.timeouts += 1
                if self._c_timeouts is not None:
                    self._c_timeouts.inc()
                current_tracer().event(
                    "runtime.timeout", task=i, attempt=attempts[i]
                )
                log_event(
                    self._logger, "pool_task_timeout",
                    task=i, attempt=attempts[i], deadline_s=timeout,
                )
                # A hung worker cannot be cancelled through the executor
                # API; kill the pool to reclaim the slot.
                self._respawn(fn, items, futures, skip=i)
            # Any other exception propagates: fn is deterministic, so the
            # serial path would raise the identical error.

            if attempts[i] > retry.max_retries:
                return self._serial_fallback(i, fn, items[i])
            self.retries += 1
            if self._c_retries is not None:
                self._c_retries.inc()
            current_tracer().event(
                "runtime.retry", task=i, attempt=attempts[i]
            )
            backoff = retry.backoff_s(attempts[i])
            log_event(
                self._logger, "pool_retry",
                task=i, attempt=attempts[i], backoff_s=round(backoff, 6),
            )
            if backoff > 0:
                self._sleep(backoff)
            futures[i] = self._ensure_pool().submit(fn, items[i])

    def _respawn(
        self,
        fn: Callable[[T], R],
        items: list[T],
        futures: dict[int, concurrent.futures.Future],
        *,
        skip: int,
    ) -> None:
        """Replace the dead pool; resubmit every task without a result.

        Task ``skip`` (the one whose failure triggered the respawn) is
        left to the caller's retry/fallback logic so it is never
        dispatched twice concurrently.
        """
        self._kill_pool()
        self.respawns += 1
        if self._c_respawns is not None:
            self._c_respawns.inc()
        current_tracer().event("runtime.respawn", workers=self.max_workers)
        pool = self._ensure_pool()
        resubmitted = 0
        for j, future in futures.items():
            if j == skip:
                continue
            done_ok = (
                future.done()
                and not future.cancelled()
                and future.exception() is None
            )
            if not done_ok:
                futures[j] = pool.submit(fn, items[j])
                resubmitted += 1
        log_event(
            self._logger, "pool_respawn",
            workers=self.max_workers, resubmitted=resubmitted,
        )

    def _serial_fallback(self, i: int, fn: Callable[[T], R], item: T) -> R:
        if not self.policy.serial_fallback:
            raise SupervisionError(
                f"task {i} failed after {self.policy.max_retries} retries "
                f"and the serial fallback is disabled"
            )
        self.serial_fallbacks += 1
        if self._c_fallbacks is not None:
            self._c_fallbacks.inc()
        current_tracer().event("runtime.serial_fallback", task=i)
        log_event(self._logger, "pool_serial_fallback", task=i)
        # Deterministic last resort: the same pure function, in-process.
        # A crashed worker therefore degrades throughput, not correctness.
        return fn(item)

    def counters(self) -> dict[str, int]:
        """Snapshot of the pool's supervision accounting."""
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "respawns": self.respawns,
            "serial_fallbacks": self.serial_fallbacks,
        }

    def __repr__(self) -> str:
        return (
            f"SupervisedPool(workers={self.max_workers}, "
            f"retries={self.retries}, respawns={self.respawns}, "
            f"fallbacks={self.serial_fallbacks})"
        )


def supervised_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    *,
    max_workers: int,
    policy: RuntimePolicy | None = None,
    metrics: Any | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> list[R]:
    """One-shot :meth:`SupervisedPool.map` with pool lifecycle handled."""
    with SupervisedPool(
        max_workers, policy, metrics=metrics, sleep=sleep
    ) as pool:
        return pool.map(fn, tasks)


def run_shard_with_salvage(
    fn: Callable[[Sequence[T]], Sequence[R]],
    items: Sequence[T],
    *,
    error_factory: Callable[[T, Exception], R],
    metrics: Any | None = None,
) -> list[R]:
    """In-process shard supervision for serving paths (no processes).

    Runs ``fn`` over the whole shard; if the *shard pass* raises, the
    shard is salvaged item by item (one ``fn([item])`` call each), and an
    item whose solo pass still raises is replaced by
    ``error_factory(item, exc)`` — so one poisoned input degrades one
    answer, never the whole batch. Used by the service's engine passes,
    where outcomes are values and exceptions are engine bugs.
    """
    logger = get_structured_logger(_LOGGER_NAME)
    counter = None
    if metrics is not None:
        counter = metrics.counter(
            "runtime_shard_salvages_total",
            "Serving-path shard passes recovered item by item",
        )
    tracer = current_tracer()
    with tracer.span("runtime.shard", size=len(items)) as shard_span:
        try:
            return list(fn(items))
        except Exception as exc:  # noqa: BLE001 - salvage is the whole point
            if counter is not None:
                counter.inc()
            log_event(
                logger, "shard_salvage",
                size=len(items), error=type(exc).__name__,
            )
            with tracer.span(
                "runtime.salvage", error=type(exc).__name__
            ) as salvage_span:
                out: list[R] = []
                salvaged = 0
                for item in items:
                    try:
                        out.extend(fn([item]))
                    except Exception as item_exc:  # noqa: BLE001
                        out.append(error_factory(item, item_exc))
                        salvaged += 1
                salvage_span.set("substituted", salvaged)
            shard_span.set("salvaged", True)
            return out
