"""Supervised execution + crash-safe checkpointing (``repro.runtime``).

The execution substrate under the sweeps and the streaming service,
hardened the way long-lived fingerprint-serving systems are:

* :mod:`~repro.runtime.policy` — :class:`RuntimePolicy`, the one frozen
  dataclass of supervision knobs (deadlines, retries, backoff, serial
  fallback, checkpoint cadence) threaded through
  :class:`~repro.engine.config.EngineConfig` and
  :class:`~repro.service.pipeline.ServiceConfig`. Disabled by default:
  existing behaviour stays bit-identical.
* :mod:`~repro.runtime.supervisor` — :class:`SupervisedPool`, the
  drop-in wrapper around the process-pool paths
  (:func:`repro.utils.parallel.map_trials`,
  :func:`repro.engine.sharding.map_shards`): per-task deadlines, bounded
  retries with exponential backoff, automatic pool respawn on worker
  death, and a deterministic serial in-process fallback. Crashes degrade
  throughput, never correctness.
* :mod:`~repro.runtime.checkpoint` — append-only JSONL write-ahead
  checkpoints for streaming sessions, with the determinism witness: a
  session killed mid-run and resumed from its checkpoint reports
  byte-identically to the uninterrupted run.

Layering: ``runtime`` sits beside ``utils`` and below ``engine`` and
``service``; it imports nothing above ``utils``.
"""

from .checkpoint import (
    FORMAT_VERSION,
    CheckpointState,
    CheckpointWriter,
    load_checkpoint,
)
from .policy import RetryPolicy, RuntimePolicy
from .supervisor import SupervisedPool, run_shard_with_salvage, supervised_map

__all__ = [
    "FORMAT_VERSION",
    "CheckpointState",
    "CheckpointWriter",
    "RetryPolicy",
    "RuntimePolicy",
    "SupervisedPool",
    "load_checkpoint",
    "run_shard_with_salvage",
    "supervised_map",
]
