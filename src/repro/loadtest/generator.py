"""The open-loop load harness: drive zones from an arrival schedule.

:func:`run_load_test` materializes a profile's
:class:`~repro.loadtest.profiles.ArrivalSchedule` and replays it against
real serving machinery — a single :class:`~repro.zones.worker.ZoneWorker`
(which *is* the unzoned :class:`~repro.service.pipeline.ServicePipeline`
driven with session semantics) or a full
:class:`~repro.zones.gateway.ZoneGateway` for multi-zone profiles. The
schedule, not the service, decides when queries arrive: a saturated
pipeline accumulates sim-clock queue wait, ages requests past their
deadline and descends the degradation ladder, all of it deterministic
and therefore assertable.

Every number in :meth:`LoadTestReport.witness_document` is sim-clock or
a counter — wall-clock throughput lives in the separate
:attr:`LoadTestReport.wall_s` / :meth:`LoadTestReport.wall_document`
surface so the witness stays byte-identical across same-seed runs.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..service.pipeline import ServiceConfig, ServiceResult
from ..zones.failover import AdmissionPolicy, ZoneAdmission, ZoneFailoverPolicy
from ..zones.gateway import ZoneGateway
from ..zones.spec import scaled_site_plan
from ..zones.worker import ZoneWorker
from .profiles import ArrivalSchedule, LoadProfile, generate_schedule
from .slo import slo_summary

__all__ = ["LoadTestReport", "run_load_test"]

#: Session-summary keys that are pure functions of the seed (counters
#: and sim-clock facts only; anything wall-clock is excluded).
_ZONE_WITNESS_COUNTERS = (
    "requests",
    "results",
    "failed",
    "degraded",
    "records_streamed",
    "records_dropped",
    "records_shed",
    "queue_high_watermark",
    "batches_flushed",
    "cache_hits",
    "cache_misses",
    "frames_received",
    "frames_dropped",
)


def _round9(obj: Any) -> Any:
    """Canonicalize a JSON-ready tree: floats to 9 decimals, no NaN.

    Non-finite floats become ``None`` so canonical documents stay valid
    strict JSON and golden comparisons never hit ``nan != nan``.
    """
    if isinstance(obj, dict):
        return {k: _round9(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_round9(v) for v in obj]
    if isinstance(obj, float):
        return round(obj, 9) if math.isfinite(obj) else None
    return obj


def _zone_witness(summary: Mapping[str, float], metrics) -> dict[str, Any]:
    """The deterministic slice of one zone's session summary."""
    doc: dict[str, Any] = {
        key: int(summary[key])
        for key in _ZONE_WITNESS_COUNTERS
        if key in summary
    }
    hits, misses = doc.get("cache_hits", 0), doc.get("cache_misses", 0)
    doc["cache_hit_rate"] = hits / (hits + misses) if hits + misses else 0.0
    for name, key in (
        ("admission_requests_admitted_total", "admission_admitted"),
        ("admission_requests_shed_total", "admission_shed"),
    ):
        if metrics is not None and name in metrics:
            doc[key] = int(metrics.get(name).value)
    return doc


@dataclass(frozen=True)
class LoadTestReport:
    """Everything one load-test run produced.

    ``results`` are the zones' served answers (interim gateway answers
    for down zones are kept apart in ``interim``); ``slo`` is the
    deterministic SLO document (:func:`repro.loadtest.slo.slo_summary`);
    ``zones`` maps zone id to its deterministic counter slice.
    """

    profile: LoadProfile
    schedule: ArrivalSchedule
    results: tuple[ServiceResult, ...]
    interim: tuple[ServiceResult, ...]
    slo: Mapping[str, Any]
    zones: Mapping[str, Mapping[str, Any]]
    errors_m: tuple[float, ...]
    admission: Mapping[str, int]
    wall_s: float
    gateway_summary: Mapping[str, float] | None = field(default=None)
    #: The gateway's ``repro_gateway_*`` registry (multi-zone runs only);
    #: diagnostics surface, never part of the witness.
    gateway_metrics: Any = field(default=None, compare=False)
    #: Zone id → live ``repro_zone_<id>_*`` registry; diagnostics only.
    zone_metrics: Mapping[str, Any] = field(
        default_factory=dict, compare=False
    )

    @property
    def offered(self) -> int:
        return len(self.schedule)

    @property
    def served(self) -> int:
        return len(self.results)

    @property
    def mean_error_m(self) -> float:
        """Mean localization error over every answer with known truth."""
        if not self.errors_m:
            return math.nan
        return float(sum(self.errors_m) / len(self.errors_m))

    def capacity_point(self) -> dict[str, float]:
        """This run as one sweep point of the capacity model."""
        requests = sum(z.get("requests", 0) for z in self.zones.values())
        batches = sum(
            z.get("batches_flushed", 0) for z in self.zones.values()
        )
        hits = sum(z.get("cache_hits", 0) for z in self.zones.values())
        misses = sum(
            z.get("cache_misses", 0) for z in self.zones.values()
        )
        slo = self.slo
        return {
            "offered_rate_per_s": self.offered / self.profile.duration_s,
            "sustained_per_s": slo["sustained_per_s"],
            "batch_size_mean": requests / batches if batches else 0.0,
            "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            "degraded_fraction": slo["degraded_fraction"],
            "n_zones": float(self.profile.n_zones),
            "availability": slo["availability"],
            "latency_p99_s": slo["latency"]["p99_s"],
            "mean_error_m": self.mean_error_m,
        }

    def witness_document(self) -> dict[str, Any]:
        """The run's determinism witness: sim-clock facts only.

        Byte-identical (as ``json.dumps(..., sort_keys=True)``) across
        two same-seed runs — the acceptance gate of the whole harness.
        """
        doc = {
            "profile": self.profile.canonical_document(),
            "schedule_digest": self.schedule.digest(),
            "offered": self.offered,
            "served": self.served,
            "interim_served": len(self.interim),
            "admission": dict(self.admission),
            "slo": dict(self.slo),
            "zones": {zid: dict(z) for zid, z in self.zones.items()},
            "capacity_point": self.capacity_point(),
        }
        return _round9(doc)

    def wall_document(self) -> dict[str, float]:
        """Wall-clock companion facts (NOT part of the witness)."""
        return {
            "wall_s": self.wall_s,
            "localizations_per_s_wall": (
                self.served / self.wall_s if self.wall_s > 0 else math.inf
            ),
        }


def _service_config(
    profile: LoadProfile, config: ServiceConfig | None
) -> ServiceConfig:
    config = config or ServiceConfig()
    if profile.max_batches_per_tick is not None:
        config = config.with_(
            max_batches_per_tick=profile.max_batches_per_tick
        )
    return config


def _run_single_zone(
    profile: LoadProfile,
    schedule: ArrivalSchedule,
    config: ServiceConfig,
    perf_clock: Callable[[], float],
    warmup_max_s: float,
) -> LoadTestReport:
    plan = scaled_site_plan(
        profile.environment, 1, seed=profile.seed
    )
    spec = plan.zones[0]
    worker = ZoneWorker(
        spec,
        config,
        perf_clock=perf_clock,
        warmup_max_s=warmup_max_s,
        query_schedule=schedule.for_zone(spec.zone_id),
    )
    gate = None
    if profile.admission_rate_per_s is not None:
        gate = ZoneAdmission(
            AdmissionPolicy(
                rate_per_s=profile.admission_rate_per_s,
                burst=profile.admission_burst,
            ),
            metrics=worker.metrics,
        )
        worker.set_admission(gate)
    t0 = perf_clock()
    report = worker.run(profile.duration_s)
    wall_s = perf_clock() - t0
    admission = {
        "admitted": (
            gate.admitted if gate is not None
            else int(report.summary["requests"])
        ),
        "shed": gate.shed if gate is not None else 0,
    }
    results = tuple(report.results)
    return LoadTestReport(
        profile=profile,
        schedule=schedule,
        results=results,
        interim=(),
        slo=slo_summary(
            results,
            offered=len(schedule),
            duration_s=profile.duration_s,
        ),
        zones={
            spec.zone_id: _zone_witness(report.summary, worker.metrics)
        },
        errors_m=tuple(float(e) for e in report.errors_m),
        admission=admission,
        wall_s=wall_s,
        zone_metrics={spec.zone_id: worker.metrics},
    )


def _run_multi_zone(
    profile: LoadProfile,
    schedule: ArrivalSchedule,
    config: ServiceConfig,
    perf_clock: Callable[[], float],
    warmup_max_s: float,
) -> LoadTestReport:
    plan = scaled_site_plan(
        profile.environment, profile.n_zones, seed=profile.seed
    )
    kwargs: dict[str, Any] = {}
    if profile.admission_rate_per_s is not None:
        kwargs["failover"] = ZoneFailoverPolicy(
            admission=AdmissionPolicy(
                rate_per_s=profile.admission_rate_per_s,
                burst=profile.admission_burst,
            )
        )
    gateway = ZoneGateway(
        plan,
        config,
        perf_clock=perf_clock,
        warmup_max_s=warmup_max_s,
        query_schedules={
            spec.zone_id: schedule.for_zone(spec.zone_id)
            for spec in plan.zones
        },
        **kwargs,
    )
    t0 = perf_clock()
    multi = gateway.run(profile.duration_s)
    wall_s = perf_clock() - t0
    results: list[ServiceResult] = []
    zones: dict[str, dict[str, Any]] = {}
    zone_metrics: dict[str, Any] = {}
    errors: list[float] = []
    admitted = 0
    shed = 0
    for zone_id in sorted(multi.zones):
        report = multi.zones[zone_id]
        results.extend(report.results)
        zones[zone_id] = _zone_witness(report.summary, report.metrics)
        zone_metrics[zone_id] = report.metrics
        errors.extend(float(e) for e in report.errors_m)
        admitted += zones[zone_id].get(
            "admission_admitted", zones[zone_id].get("requests", 0)
        )
        shed += zones[zone_id].get("admission_shed", 0)
    return LoadTestReport(
        profile=profile,
        schedule=schedule,
        results=tuple(results),
        interim=tuple(multi.interim),
        slo=slo_summary(
            results,
            offered=len(schedule),
            duration_s=profile.duration_s,
        ),
        zones=zones,
        errors_m=tuple(errors),
        admission={"admitted": admitted, "shed": shed},
        wall_s=wall_s,
        gateway_summary=dict(multi.summary),
        gateway_metrics=multi.metrics,
        zone_metrics=zone_metrics,
    )


def run_load_test(
    profile: LoadProfile,
    *,
    config: ServiceConfig | None = None,
    perf_clock: Callable[[], float] = time.perf_counter,
    warmup_max_s: float = 120.0,
) -> LoadTestReport:
    """Run one open-loop load test and return its report.

    ``config`` overrides the service knobs (tests pass a cheap
    ``VIREConfig(subdivisions=5)`` world); the profile's
    ``max_batches_per_tick`` is stamped onto whatever config is used,
    so the profile alone defines the executor budget of a sweep point.
    """
    schedule = generate_schedule(profile)
    config = _service_config(profile, config)
    runner = _run_single_zone if profile.n_zones == 1 else _run_multi_zone
    return runner(profile, schedule, config, perf_clock, warmup_max_s)
