"""SLO analysis: latency percentiles, ladder breakdowns, availability.

Three input surfaces, one vocabulary:

* **served results** (:class:`repro.service.pipeline.ServiceResult`) —
  the primary, fully deterministic surface: queue-wait latency is
  sim-clock (``completed_at_s - requested_at_s``), so every percentile
  here is a pure function of the seed;
* **metrics registries** (:class:`repro.service.metrics.MetricsRegistry`)
  — Prometheus-style histograms summarized with within-bucket linear
  interpolation (:meth:`~repro.service.metrics.Histogram.bucket_quantile`),
  matching what a real scrape-side ``histogram_quantile`` would report;
* **obs traces** (span-forest JSONL documents) — per-stage wall-clock
  statistics and the ladder decision accounting, delegated to
  :mod:`repro.obs.profile`.

Ladder levels follow the service's degradation ladder (see
docs/SERVICE.md), with level 0 for gateway-interim answers served
*below* the ladder while a zone is down.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

from ..obs.profile import ladder_breakdown, stage_statistics
from ..service.metrics import Histogram, MetricsRegistry
from ..service.pipeline import ServiceResult

__all__ = [
    "LEVEL_NAMES",
    "quantile_linear",
    "result_level",
    "slo_summary",
    "metrics_slo",
    "trace_slo",
]

#: Human names of the degradation ladder levels (0 = below the ladder:
#: the gateway answered from a cached estimate while the zone was down).
LEVEL_NAMES = {
    0: "gateway_interim",
    1: "full_vire",
    2: "subset_vire",
    3: "landmarc",
    4: "last_known",
}

#: Default SLO percentiles.
SLO_QUANTILES = (0.50, 0.95, 0.99)


def quantile_linear(values: Sequence[float], q: float) -> float:
    """Quantile with linear interpolation between order statistics.

    The standard "type 7" estimator: ``q`` maps to the fractional
    position ``q * (n - 1)`` and the two straddling samples are blended
    — no snapping to whichever sample happens to sit at the nearest
    rank. NaN on empty input.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(float(v) for v in values)
    if not ordered:
        return math.nan
    pos = q * (len(ordered) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return ordered[lo]
    frac = pos - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


def result_level(result: ServiceResult) -> int:
    """Ladder level of one served result (0 = gateway-interim)."""
    estimator = result.estimator
    if estimator == "gateway-interim":
        return 0
    if estimator == "last-known":
        return 4
    if estimator == "LANDMARC":
        return 3
    if result.degraded:
        return 2
    return 1


def _latency_doc(
    waits: Sequence[float], quantiles: Sequence[float]
) -> dict[str, float]:
    doc = {
        f"p{int(q * 100)}_s": quantile_linear(waits, q) for q in quantiles
    }
    doc["max_s"] = max(waits) if waits else math.nan
    doc["mean_s"] = (sum(waits) / len(waits)) if waits else math.nan
    return doc


def slo_summary(
    results: Iterable[ServiceResult],
    *,
    offered: int,
    duration_s: float,
    quantiles: Sequence[float] = SLO_QUANTILES,
) -> dict[str, Any]:
    """The deterministic SLO document of one load-test run.

    ``offered`` is the open-loop arrival count — availability is served
    answers over *offered* arrivals, so admission sheds and failures
    both count against it (an SLO hides nothing the generator sent).
    Latency is sim-clock queue wait: the time a query spent between
    submission and batch execution, the quantity open-loop load testing
    exists to expose.
    """
    results = list(results)
    levels: dict[str, int] = {}
    reasons: dict[str, int] = {}
    estimators: dict[str, int] = {}
    degraded = 0
    for result in results:
        level = result_level(result)
        key = LEVEL_NAMES.get(level, str(level))
        levels[key] = levels.get(key, 0) + 1
        if result.degraded:
            degraded += 1
        if result.reason is not None:
            reasons[result.reason] = reasons.get(result.reason, 0) + 1
        estimators[result.estimator] = (
            estimators.get(result.estimator, 0) + 1
        )
    waits = [r.queue_wait_s for r in results]
    served = len(results)
    return {
        "offered": int(offered),
        "served": served,
        "availability": (served / offered) if offered else math.nan,
        "sustained_per_s": served / duration_s if duration_s > 0 else math.nan,
        "degraded": degraded,
        "degraded_fraction": (degraded / served) if served else 0.0,
        "levels": {k: levels[k] for k in sorted(levels)},
        "reasons": {k: reasons[k] for k in sorted(reasons)},
        "estimators": {k: estimators[k] for k in sorted(estimators)},
        "latency": _latency_doc(waits, quantiles),
    }


def metrics_slo(
    registry: MetricsRegistry,
    *,
    quantiles: Sequence[float] = SLO_QUANTILES,
) -> dict[str, dict[str, float]]:
    """Interpolated percentiles of every histogram in ``registry``.

    Uses the bucket counts (not the raw samples), i.e. exactly the
    information a Prometheus scrape would carry — this is what a
    dashboard's ``histogram_quantile`` sees, interpolation included.
    """
    out: dict[str, dict[str, float]] = {}
    for name, metric in sorted(registry.metrics().items()):
        if not isinstance(metric, Histogram):
            continue
        doc = {
            f"p{int(q * 100)}": metric.bucket_quantile(q) for q in quantiles
        }
        doc["count"] = float(metric.count)
        doc["sum"] = metric.sum
        out[name] = doc
    return out


def trace_slo(
    docs: Sequence[Mapping[str, Any]],
    *,
    quantiles: Sequence[float] = SLO_QUANTILES,  # noqa: ARG001 - fixed set
) -> dict[str, Any]:
    """Per-stage latency + ladder accounting from a span forest.

    Thin composition over :mod:`repro.obs.profile` so trace JSONL files
    recorded by ``repro trace record`` feed the same report pipeline as
    live runs.
    """
    stages = {
        name: {
            "count": stats.count,
            "total_s": stats.total_s,
            "p50_s": stats.p50_s,
            "p95_s": stats.p95_s,
            "p99_s": stats.p99_s,
            "max_s": stats.max_s,
        }
        for name, stats in sorted(stage_statistics(docs).items())
    }
    return {"stages": stages, "ladder": ladder_breakdown(docs)}
