"""Deterministic open-loop traffic profiles and arrival schedules.

A :class:`LoadProfile` names a traffic shape (steady, Poisson, bursty),
an offered rate and a deployment size; :func:`generate_schedule` turns
it into an :class:`ArrivalSchedule` — the *complete* list of query
arrival events for the whole run, materialized up front.

The generator is **open-loop**: arrival times are a pure function of
``(seed, profile)`` and never react to how the service keeps up, so an
overloaded pipeline cannot mask its own saturation by slowing the
producer down (closed-loop harnesses systematically under-report
queueing delay — the "coordinated omission" trap).

Determinism contract
--------------------
Arrival times are drawn from the same derived-RNG-stream machinery the
fault models use (:func:`repro.utils.rng.derive_rng`): every zone owns
an independent stream keyed by ``(seed, "loadtest", profile.name,
zone_id)``. Consequences, both load-bearing:

* the same seed + profile yields a **byte-identical** schedule (pinned
  by a golden fixture and a hypothesis property test), and
* adding or removing zones never perturbs the arrivals of the zones
  that remain — sweep points with different ``n_zones`` stay
  event-for-event comparable on their shared zones.

Event times are rounded to 9 decimals at creation, so the in-memory
schedule *is* its canonical JSON document.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping

from ..exceptions import ConfigurationError
from ..geometry.placement import figure2a_tracking_tags, paper_testbed_grid
from ..utils.rng import derive_rng

__all__ = [
    "ARRIVAL_PROCESSES",
    "LoadProfile",
    "ArrivalSchedule",
    "generate_schedule",
    "preset_profile",
    "PRESET_PROFILES",
]

#: Supported arrival processes. ``uniform`` spaces arrivals exactly
#: ``1/rate`` apart (worst-case *sustained* pressure, zero variance);
#: ``poisson`` draws i.i.d. exponential inter-arrivals (memoryless
#: traffic); ``burst`` is a thinned Poisson process whose instantaneous
#: rate alternates between ``rate`` and ``rate * burst_factor`` on a
#: fixed duty cycle (beacon-storm traffic).
ARRIVAL_PROCESSES = ("uniform", "poisson", "burst")


@dataclass(frozen=True)
class LoadProfile:
    """One named open-loop traffic shape plus its capacity knobs.

    Parameters
    ----------
    name:
        Identity of the profile; part of the RNG derivation key, so two
        profiles with different names draw disjoint arrival streams
        even at identical rates.
    process:
        Arrival process, one of :data:`ARRIVAL_PROCESSES`.
    environment:
        RF environment preset name (``Env1``/``Env2``/``Env3``).
    n_zones:
        Zones in the site plan; each zone hosts the paper's nine
        Fig. 2(a) tracking tags and receives its own arrival stream.
    duration_s:
        Sim-clock length of the measured window (warm-up excluded).
    rate_per_s:
        Offered query arrivals per zone per sim-second (base rate; the
        ``burst`` process exceeds it inside burst windows).
    burst_factor / burst_period_s / burst_duty:
        Burst shape: the instantaneous rate is ``rate_per_s *
        burst_factor`` for the first ``burst_duty`` fraction of every
        ``burst_period_s`` window, ``rate_per_s`` otherwise. Ignored by
        the other processes.
    seed:
        Root seed of the derived arrival streams (and of the site plan).
    max_batches_per_tick:
        Executor capacity cap forwarded to
        :attr:`~repro.service.pipeline.ServiceConfig.max_batches_per_tick`
        — bounds estimation work per tick so overload manifests as
        queueing delay and ladder descent instead of being silently
        absorbed. ``None`` leaves the executor unbounded.
    admission_rate_per_s / admission_burst:
        When ``admission_rate_per_s`` is set, a per-zone sim-clock
        token bucket (:class:`repro.zones.failover.AdmissionPolicy`)
        sheds arrivals beyond the sustained rate before they reach the
        batcher (shed-newest).
    """

    name: str = "steady"
    process: str = "uniform"
    environment: str = "Env1"
    n_zones: int = 1
    duration_s: float = 12.0
    rate_per_s: float = 4.0
    burst_factor: float = 4.0
    burst_period_s: float = 8.0
    burst_duty: float = 0.25
    seed: int = 0
    max_batches_per_tick: int | None = None
    admission_rate_per_s: float | None = None
    admission_burst: int = 16

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ConfigurationError(
                f"unknown arrival process {self.process!r}; "
                f"expected one of {ARRIVAL_PROCESSES}"
            )
        if self.environment not in ("Env1", "Env2", "Env3"):
            raise ConfigurationError(
                f"unknown environment {self.environment!r}; "
                f"expected Env1, Env2 or Env3"
            )
        if self.n_zones < 1:
            raise ConfigurationError(
                f"n_zones must be >= 1, got {self.n_zones}"
            )
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be > 0, got {self.duration_s}"
            )
        if self.rate_per_s <= 0:
            raise ConfigurationError(
                f"rate_per_s must be > 0, got {self.rate_per_s}"
            )
        if self.burst_factor < 1.0:
            raise ConfigurationError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if self.burst_period_s <= 0:
            raise ConfigurationError(
                f"burst_period_s must be > 0, got {self.burst_period_s}"
            )
        if not 0.0 < self.burst_duty <= 1.0:
            raise ConfigurationError(
                f"burst_duty must be in (0, 1], got {self.burst_duty}"
            )
        if (
            self.max_batches_per_tick is not None
            and self.max_batches_per_tick < 1
        ):
            raise ConfigurationError(
                f"max_batches_per_tick must be >= 1 or None, "
                f"got {self.max_batches_per_tick}"
            )
        if (
            self.admission_rate_per_s is not None
            and self.admission_rate_per_s <= 0
        ):
            raise ConfigurationError(
                f"admission_rate_per_s must be > 0 or None, "
                f"got {self.admission_rate_per_s}"
            )

    def with_(self, **changes) -> "LoadProfile":
        """Modified copy (thin wrapper over dataclasses.replace)."""
        return replace(self, **changes)

    def zone_ids(self) -> tuple[str, ...]:
        """Zone ids of the site plan this profile drives (``z0``…)."""
        return tuple(f"z{i}" for i in range(self.n_zones))

    def canonical_document(self) -> dict:
        """The profile as a sorted-key JSON-ready dict."""
        return {
            "name": self.name,
            "process": self.process,
            "environment": self.environment,
            "n_zones": self.n_zones,
            "duration_s": round(float(self.duration_s), 9),
            "rate_per_s": round(float(self.rate_per_s), 9),
            "burst_factor": round(float(self.burst_factor), 9),
            "burst_period_s": round(float(self.burst_period_s), 9),
            "burst_duty": round(float(self.burst_duty), 9),
            "seed": int(self.seed),
            "max_batches_per_tick": self.max_batches_per_tick,
            "admission_rate_per_s": (
                None
                if self.admission_rate_per_s is None
                else round(float(self.admission_rate_per_s), 9)
            ),
            "admission_burst": int(self.admission_burst),
        }


@dataclass(frozen=True)
class ArrivalSchedule:
    """The materialized arrival events of one profile, sorted by time.

    ``events`` holds ``(t_rel_s, zone_id, tag_label)`` triples with
    ``t_rel_s`` relative to the measured window's start (warm-up is
    zone-local and excluded). The schedule is the determinism witness
    of the traffic generator: :meth:`digest` hashes its canonical JSON.
    """

    profile: LoadProfile
    events: tuple[tuple[float, str, str], ...] = field(default=())

    def __len__(self) -> int:
        return len(self.events)

    def for_zone(self, zone_id: str) -> tuple[tuple[float, str], ...]:
        """This zone's ``(t_rel_s, tag_label)`` events, in time order."""
        if zone_id not in self.profile.zone_ids():
            raise ConfigurationError(
                f"schedule has no zone {zone_id!r}; "
                f"profile spans {self.profile.zone_ids()}"
            )
        return tuple(
            (t, label) for t, zid, label in self.events if zid == zone_id
        )

    def offered_by_zone(self) -> dict[str, int]:
        """Arrival count per zone (zones with zero arrivals included)."""
        counts = {zid: 0 for zid in self.profile.zone_ids()}
        for _, zid, _ in self.events:
            counts[zid] += 1
        return counts

    def canonical_document(self) -> dict:
        """Byte-stable JSON document of the whole schedule."""
        return {
            "profile": self.profile.canonical_document(),
            "n_events": len(self.events),
            "events": [
                [t, zid, label] for t, zid, label in self.events
            ],
        }

    def digest(self) -> str:
        """SHA-256 of the canonical schedule document."""
        payload = json.dumps(
            self.canonical_document(), sort_keys=True
        ).encode()
        return hashlib.sha256(payload).hexdigest()


def _tag_labels() -> tuple[str, ...]:
    """The nine Fig. 2(a) tracking-tag labels every zone hosts."""
    tags = figure2a_tracking_tags(paper_testbed_grid())
    return tuple(str(label) for label in sorted(tags))


def _burst_rate(profile: LoadProfile, t: float) -> float:
    """Instantaneous arrival rate of the ``burst`` process at ``t``."""
    phase = t % profile.burst_period_s
    if phase < profile.burst_duty * profile.burst_period_s:
        return profile.rate_per_s * profile.burst_factor
    return profile.rate_per_s


def _zone_arrivals(profile: LoadProfile, zone_id: str) -> Iterator[float]:
    """Arrival times of one zone's stream, strictly inside the window."""
    rng = derive_rng(profile.seed, "loadtest", profile.name, zone_id)
    interval = 1.0 / profile.rate_per_s
    if profile.process == "uniform":
        t = interval
        while t < profile.duration_s:
            yield t
            t += interval
        return
    if profile.process == "poisson":
        t = float(rng.exponential(interval))
        while t < profile.duration_s:
            yield t
            t += float(rng.exponential(interval))
        return
    # burst: thinned Poisson at the peak rate. Candidate arrivals come
    # at rate * burst_factor; each survives with probability
    # r(t)/peak, which reproduces the piecewise-constant intensity
    # exactly (Lewis–Shedler thinning) while spending a fixed two RNG
    # draws per candidate — the stream stays replayable no matter how
    # the duty cycle slices it.
    peak = profile.rate_per_s * profile.burst_factor
    t = float(rng.exponential(1.0 / peak))
    while t < profile.duration_s:
        keep = float(rng.random()) < _burst_rate(profile, t) / peak
        if keep:
            yield t
        t += float(rng.exponential(1.0 / peak))


def generate_schedule(profile: LoadProfile) -> ArrivalSchedule:
    """Materialize the full arrival schedule of ``profile``.

    Pure function of the profile (incl. its seed): per-zone derived RNG
    streams, times rounded to 9 decimals, events sorted by
    ``(time, zone, label)`` so the order is canonical.
    """
    labels = _tag_labels()
    events: list[tuple[float, str, str]] = []
    for zone_id in profile.zone_ids():
        rng = derive_rng(
            profile.seed, "loadtest", profile.name, zone_id, "labels"
        )
        for t in _zone_arrivals(profile, zone_id):
            label = labels[int(rng.integers(0, len(labels)))]
            events.append((round(t, 9), zone_id, label))
    events.sort()
    return ArrivalSchedule(profile=profile, events=tuple(events))


#: Named sweep presets: the base shapes ``repro loadtest`` scales.
PRESET_PROFILES: Mapping[str, LoadProfile] = {
    "steady": LoadProfile(name="steady", process="uniform"),
    "poisson": LoadProfile(name="poisson", process="poisson"),
    "burst": LoadProfile(name="burst", process="burst"),
}


def preset_profile(name: str) -> LoadProfile:
    """Look up a preset profile by name."""
    try:
        return PRESET_PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown load profile {name!r}; "
            f"expected one of {sorted(PRESET_PROFILES)}"
        ) from None
