"""Capacity model: localizations/s as a function of operating point.

Fitted from load-sweep points by ordinary least squares over a small
feature set — mean batch size, interpolation-cache hit rate, degraded
(ladder-descent) fraction and zone count — so ``repro report`` can
answer "what throughput should this configuration sustain?" and CI can
flag a capacity regression as a *model* shift rather than a single
noisy number.

The solver is deliberately **pure Python** (normal equations +
Gauss–Jordan elimination with a tiny ridge term). ``numpy.linalg``
routes through whatever BLAS the platform ships, and different BLAS
builds legitimately differ in the last ulp — unacceptable for a model
whose canonical document is pinned byte-for-byte in a golden fixture.
A 5×5 solve does not need BLAS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..exceptions import ConfigurationError

__all__ = ["CAPACITY_FEATURES", "CapacityModel", "fit_capacity_model"]

#: Feature keys of a sweep point, in model order (intercept implicit).
CAPACITY_FEATURES = (
    "batch_size_mean",
    "cache_hit_rate",
    "degraded_fraction",
    "n_zones",
)

#: Target key of a sweep point: sustained sim-clock localizations/s.
CAPACITY_TARGET = "sustained_per_s"

#: Ridge term stabilizing the normal equations when a sweep holds a
#: feature constant (e.g. every point at n_zones=1): the coefficient of
#: a constant column is pulled to 0 instead of blowing up.
_RIDGE = 1e-9


def _solve(matrix: list[list[float]], rhs: list[float]) -> list[float]:
    """Gauss–Jordan with partial pivoting; pure-Python determinism."""
    n = len(rhs)
    aug = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(aug[r][col]))
        if abs(aug[pivot][col]) < 1e-30:
            raise ConfigurationError(
                "capacity model normal equations are singular"
            )
        aug[col], aug[pivot] = aug[pivot], aug[col]
        scale = aug[col][col]
        aug[col] = [v / scale for v in aug[col]]
        for row in range(n):
            if row == col:
                continue
            factor = aug[row][col]
            if factor:
                aug[row] = [
                    v - factor * p for v, p in zip(aug[row], aug[col])
                ]
    return [aug[i][n] for i in range(n)]


@dataclass(frozen=True)
class CapacityModel:
    """A fitted linear capacity model.

    ``coefficients`` aligns with :data:`CAPACITY_FEATURES`;
    ``intercept`` is the implicit constant term. ``r2`` is the in-sample
    coefficient of determination (1.0 on an exactly linear sweep).
    """

    features: tuple[str, ...]
    intercept: float
    coefficients: tuple[float, ...]
    r2: float
    n_points: int

    def predict(self, point: Mapping[str, float]) -> float:
        """Predicted sustained localizations/s at ``point``."""
        try:
            return self.intercept + sum(
                c * float(point[f])
                for c, f in zip(self.coefficients, self.features)
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"capacity-model point is missing feature {exc}"
            ) from None

    def canonical_document(self) -> dict:
        """Byte-stable JSON document (floats rounded to 9 decimals)."""
        return {
            "target": CAPACITY_TARGET,
            "features": list(self.features),
            "intercept": round(self.intercept, 9),
            "coefficients": {
                f: round(c, 9)
                for f, c in zip(self.features, self.coefficients)
            },
            "r2": round(self.r2, 9) if math.isfinite(self.r2) else None,
            "n_points": self.n_points,
        }


def fit_capacity_model(
    points: Sequence[Mapping[str, float]],
    *,
    features: Sequence[str] = CAPACITY_FEATURES,
    target: str = CAPACITY_TARGET,
) -> CapacityModel:
    """Least-squares fit of ``target`` over ``features``.

    Each point is a flat mapping (a sweep-point capacity record, see
    :meth:`repro.loadtest.generator.LoadTestReport.capacity_point`).
    Needs at least one point; with fewer points than coefficients the
    ridge term keeps the fit defined (it degenerates gracefully toward
    the mean).
    """
    if not points:
        raise ConfigurationError(
            "capacity model needs at least one sweep point"
        )
    features = tuple(features)
    k = len(features) + 1  # + intercept
    rows = []
    ys = []
    for point in points:
        try:
            rows.append(
                [1.0] + [float(point[f]) for f in features]
            )
            ys.append(float(point[target]))
        except KeyError as exc:
            raise ConfigurationError(
                f"sweep point is missing key {exc}"
            ) from None
    # Normal equations AᵀA x = Aᵀy with ridge on the diagonal.
    ata = [
        [
            sum(row[i] * row[j] for row in rows)
            + (_RIDGE if i == j else 0.0)
            for j in range(k)
        ]
        for i in range(k)
    ]
    atb = [sum(row[i] * y for row, y in zip(rows, ys)) for i in range(k)]
    solution = _solve(ata, atb)
    intercept, coefficients = solution[0], tuple(solution[1:])
    predictions = [
        intercept + sum(c * v for c, v in zip(coefficients, row[1:]))
        for row in rows
    ]
    mean_y = sum(ys) / len(ys)
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    ss_res = sum((y - p) ** 2 for y, p in zip(ys, predictions))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else math.nan
    return CapacityModel(
        features=features,
        intercept=intercept,
        coefficients=coefficients,
        r2=r2,
        n_points=len(points),
    )
