"""Open-loop load testing, SLO analysis and the capacity model.

The proof layer for the ROADMAP's "heavy traffic" claim:

* :mod:`~repro.loadtest.profiles` — deterministic traffic shapes and
  byte-identical arrival schedules from derived RNG streams;
* :mod:`~repro.loadtest.generator` — the open-loop harness driving
  real zone workers / the zone gateway from a schedule;
* :mod:`~repro.loadtest.slo` — percentiles, ladder breakdowns and
  availability from results, metrics registries and obs traces;
* :mod:`~repro.loadtest.capacity` — the fitted localizations/s model.

``python -m repro loadtest`` runs a seeded sweep; ``python -m repro
report --from <dir>`` regenerates every capacity/accuracy figure from
the sweep's JSONL (see :mod:`repro.analysis.registry`). Methodology in
docs/LOADTEST.md.
"""

from .capacity import CAPACITY_FEATURES, CapacityModel, fit_capacity_model
from .generator import LoadTestReport, run_load_test
from .profiles import (
    ARRIVAL_PROCESSES,
    PRESET_PROFILES,
    ArrivalSchedule,
    LoadProfile,
    generate_schedule,
    preset_profile,
)
from .slo import (
    LEVEL_NAMES,
    metrics_slo,
    quantile_linear,
    result_level,
    slo_summary,
    trace_slo,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "PRESET_PROFILES",
    "ArrivalSchedule",
    "LoadProfile",
    "generate_schedule",
    "preset_profile",
    "LoadTestReport",
    "run_load_test",
    "CAPACITY_FEATURES",
    "CapacityModel",
    "fit_capacity_model",
    "LEVEL_NAMES",
    "metrics_slo",
    "quantile_linear",
    "result_level",
    "slo_summary",
    "trace_slo",
]
