"""Mobility: tracking moving tags over time (paper §6 future work).

The paper evaluates static tags and defers "more complex dynamic factors
such as mobility" to future work. This subpackage supplies the missing
layer for moving assets:

* :mod:`~repro.tracking.trajectory` — timed ground-truth paths and
  trajectory-level error metrics,
* :mod:`~repro.tracking.filters` — position filters that exploit motion
  continuity (moving average, alpha-beta, constant-velocity Kalman),
* :mod:`~repro.tracking.tracker` — :class:`TagTracker`, which feeds
  middleware snapshots through an estimator and a filter, tolerating
  missing readings.
"""

from .trajectory import Trajectory, TrajectoryError, evaluate_track
from .filters import (
    PositionFilter,
    NoFilter,
    MovingAverageFilter,
    AlphaBetaFilter,
    KalmanFilter2D,
)
from .tracker import TagTracker, TrackPoint
from .gated import GatedVIREEstimator

__all__ = [
    "Trajectory",
    "TrajectoryError",
    "evaluate_track",
    "PositionFilter",
    "NoFilter",
    "MovingAverageFilter",
    "AlphaBetaFilter",
    "KalmanFilter2D",
    "TagTracker",
    "TrackPoint",
    "GatedVIREEstimator",
]
