"""TagTracker: estimator + filter over a stream of readings.

The tracker is estimator-agnostic (LANDMARC or VIRE via the
:class:`~repro.types.Estimator` protocol) and resilient to dropped
snapshots — when the middleware cannot produce a complete reading
(weak frames, dead tag), the tracker records a dropout and lets the
filter coast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..exceptions import ReadingError
from ..types import Estimator, TrackingReading
from .filters import NoFilter, PositionFilter

__all__ = ["TrackPoint", "TagTracker"]


@dataclass(frozen=True)
class TrackPoint:
    """One tracker output sample."""

    time_s: float
    raw: tuple[float, float] | None      # estimator output (None on dropout)
    filtered: tuple[float, float] | None  # filter output (None before first fix)
    dropout: bool


@dataclass
class TagTracker:
    """Track one tag through a sequence of readings.

    Parameters
    ----------
    estimator:
        Any position estimator.
    filter:
        A position filter; defaults to pass-through.
    """

    estimator: Estimator
    filter: PositionFilter = field(default_factory=NoFilter)

    def __post_init__(self) -> None:
        self.history: list[TrackPoint] = []

    def ingest(self, time_s: float, reading: TrackingReading | None) -> TrackPoint:
        """Process one snapshot (or None for an explicit dropout)."""
        raw: tuple[float, float] | None = None
        dropout = reading is None
        if reading is not None:
            raw = self.estimator.estimate(reading).position
        filtered = self.filter.update(time_s, raw)
        point = TrackPoint(
            time_s=float(time_s), raw=raw, filtered=filtered, dropout=dropout
        )
        self.history.append(point)
        return point

    def ingest_from(
        self,
        time_s: float,
        snapshot_fn: Callable[[], TrackingReading],
    ) -> TrackPoint:
        """Pull a snapshot from a callable, converting ReadingError into a
        dropout (the middleware raises when a reading is incomplete)."""
        try:
            reading = snapshot_fn()
        except ReadingError:
            reading = None
        return self.ingest(time_s, reading)

    def fixes(self, *, filtered: bool = True) -> list[tuple[float, tuple[float, float]]]:
        """``(time, position)`` pairs for trajectory evaluation."""
        out = []
        for p in self.history:
            pos = p.filtered if filtered else p.raw
            if pos is not None:
                out.append((p.time_s, pos))
        return out

    @property
    def dropout_count(self) -> int:
        return sum(1 for p in self.history if p.dropout)

    def reset(self) -> None:
        """Clear history and filter state (e.g. when reassigning the tag)."""
        self.history.clear()
        self.filter.reset()
