"""Position filters for fix sequences.

Per-fix VIRE estimates are independent; a moving asset's consecutive
positions are not. These filters exploit that continuity:

* :class:`MovingAverageFilter` — boxcar over the last w fixes (lags on
  turns, kills jitter),
* :class:`AlphaBetaFilter` — the classic fixed-gain position/velocity
  tracker,
* :class:`KalmanFilter2D` — a constant-velocity Kalman filter with
  white-noise acceleration; the measurement noise should be set to the
  estimator's static error (≈ 0.3-0.6 m for VIRE, per EXPERIMENTS.md).

All filters implement :class:`PositionFilter`: feed ``update(t, (x, y))``
per fix, read the filtered position back. ``update(t, None)`` advances
time without a measurement (a dropped reading) — the alpha-beta and
Kalman filters coast on their velocity estimate.
"""

from __future__ import annotations

from collections import deque
from typing import Protocol, runtime_checkable

import numpy as np

from ..exceptions import ConfigurationError
from ..utils.validation import ensure_in_range, ensure_positive, ensure_positive_int

__all__ = [
    "PositionFilter",
    "NoFilter",
    "MovingAverageFilter",
    "AlphaBetaFilter",
    "KalmanFilter2D",
]


@runtime_checkable
class PositionFilter(Protocol):
    """Streaming smoother over timestamped position fixes."""

    def update(
        self, time_s: float, measurement: tuple[float, float] | None
    ) -> tuple[float, float] | None:
        """Ingest one fix (or a dropout) and return the filtered position.

        Returns None while the filter has not yet seen any measurement.
        """
        ...

    def reset(self) -> None:
        """Forget all state."""
        ...


class NoFilter:
    """Pass-through: the raw estimate is the track."""

    def __init__(self) -> None:
        self._last: tuple[float, float] | None = None

    def update(self, time_s, measurement):
        if measurement is not None:
            self._last = (float(measurement[0]), float(measurement[1]))
        return self._last

    def reset(self) -> None:
        self._last = None


class MovingAverageFilter:
    """Mean of the last ``window`` measurements."""

    def __init__(self, window: int = 4):
        self.window = ensure_positive_int(window, "window")
        self._history: deque[np.ndarray] = deque(maxlen=self.window)

    def update(self, time_s, measurement):
        if measurement is not None:
            self._history.append(np.asarray(measurement, dtype=np.float64))
        if not self._history:
            return None
        mean = np.mean(self._history, axis=0)
        return (float(mean[0]), float(mean[1]))

    def reset(self) -> None:
        self._history.clear()


class AlphaBetaFilter:
    """Fixed-gain position/velocity tracker.

    Predicts ``x += v * dt``, then corrects position by ``alpha`` times
    the residual and velocity by ``beta / dt`` times the residual.
    """

    def __init__(self, alpha: float = 0.5, beta: float = 0.1):
        self.alpha = ensure_in_range(alpha, "alpha", 0.0, 1.0)
        self.beta = ensure_in_range(beta, "beta", 0.0, 2.0)
        self.reset()

    def reset(self) -> None:
        self._pos: np.ndarray | None = None
        self._vel = np.zeros(2)
        self._time: float | None = None

    def update(self, time_s, measurement):
        time_s = float(time_s)
        if self._pos is None:
            if measurement is None:
                return None
            self._pos = np.asarray(measurement, dtype=np.float64)
            self._time = time_s
            return (float(self._pos[0]), float(self._pos[1]))

        dt = time_s - (self._time if self._time is not None else time_s)
        if dt < 0:
            raise ConfigurationError(f"time went backwards: dt={dt}")
        self._time = time_s
        predicted = self._pos + self._vel * dt
        if measurement is None:
            self._pos = predicted  # coast
        else:
            z = np.asarray(measurement, dtype=np.float64)
            residual = z - predicted
            self._pos = predicted + self.alpha * residual
            if dt > 0:
                self._vel = self._vel + (self.beta / dt) * residual
        return (float(self._pos[0]), float(self._pos[1]))


class KalmanFilter2D:
    """Constant-velocity Kalman filter with white-noise acceleration.

    State ``[x, y, vx, vy]``; process noise is parameterized by the
    acceleration spectral density ``process_accel`` (m/s²) — how hard the
    asset can manoeuvre — and the measurement noise by the static
    estimator error ``measurement_sigma_m``.
    """

    def __init__(
        self,
        measurement_sigma_m: float = 0.5,
        process_accel: float = 0.5,
    ):
        self.measurement_sigma_m = ensure_positive(
            measurement_sigma_m, "measurement_sigma_m"
        )
        self.process_accel = ensure_positive(process_accel, "process_accel")
        self.reset()

    def reset(self) -> None:
        self._state: np.ndarray | None = None  # [x, y, vx, vy]
        self._cov = np.eye(4)
        self._time: float | None = None

    @property
    def velocity(self) -> tuple[float, float] | None:
        """Current velocity estimate (m/s), if initialized."""
        if self._state is None:
            return None
        return (float(self._state[2]), float(self._state[3]))

    def _predict(self, dt: float) -> None:
        assert self._state is not None
        f = np.eye(4)
        f[0, 2] = dt
        f[1, 3] = dt
        q_scalar = self.process_accel**2
        # White-noise-acceleration discretization.
        q = np.zeros((4, 4))
        q[0, 0] = q[1, 1] = dt**4 / 4.0
        q[0, 2] = q[2, 0] = dt**3 / 2.0
        q[1, 3] = q[3, 1] = dt**3 / 2.0
        q[2, 2] = q[3, 3] = dt**2
        self._state = f @ self._state
        self._cov = f @ self._cov @ f.T + q_scalar * q

    def update(self, time_s, measurement):
        time_s = float(time_s)
        if self._state is None:
            if measurement is None:
                return None
            self._state = np.array(
                [float(measurement[0]), float(measurement[1]), 0.0, 0.0]
            )
            # Uninformative velocity prior, measurement-level position prior.
            self._cov = np.diag(
                [self.measurement_sigma_m**2, self.measurement_sigma_m**2,
                 1.0, 1.0]
            )
            self._time = time_s
            return (float(self._state[0]), float(self._state[1]))

        dt = time_s - (self._time if self._time is not None else time_s)
        if dt < 0:
            raise ConfigurationError(f"time went backwards: dt={dt}")
        self._time = time_s
        if dt > 0:
            self._predict(dt)
        if measurement is not None:
            h = np.zeros((2, 4))
            h[0, 0] = h[1, 1] = 1.0
            r = np.eye(2) * self.measurement_sigma_m**2
            z = np.asarray(measurement, dtype=np.float64)
            innovation = z - h @ self._state
            s = h @ self._cov @ h.T + r
            gain = self._cov @ h.T @ np.linalg.inv(s)
            self._state = self._state + gain @ innovation
            self._cov = (np.eye(4) - gain @ h) @ self._cov
        return (float(self._state[0]), float(self._state[1]))
