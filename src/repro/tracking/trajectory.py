"""Ground-truth trajectories and trajectory-level error metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["Trajectory", "TrajectoryError", "evaluate_track"]


@dataclass(frozen=True)
class Trajectory:
    """A timed piecewise-linear ground-truth path.

    Parameters
    ----------
    times_s:
        Strictly increasing timestamps of the waypoints.
    waypoints:
        ``(n, 2)`` coordinates; the tag moves linearly between
        consecutive waypoints and stands still before the first / after
        the last timestamp.
    """

    times_s: tuple[float, ...]
    waypoints: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        times = tuple(float(t) for t in self.times_s)
        points = tuple((float(x), float(y)) for x, y in self.waypoints)
        if len(times) != len(points):
            raise ConfigurationError(
                f"{len(times)} timestamps for {len(points)} waypoints"
            )
        if len(times) < 1:
            raise ConfigurationError("trajectory needs at least one waypoint")
        if any(t1 >= t2 for t1, t2 in zip(times, times[1:])):
            raise ConfigurationError("timestamps must be strictly increasing")
        if not all(np.isfinite(t) for t in times) or not all(
            np.isfinite(x) and np.isfinite(y) for x, y in points
        ):
            raise ConfigurationError("trajectory contains non-finite values")
        object.__setattr__(self, "times_s", times)
        object.__setattr__(self, "waypoints", points)

    @property
    def start_time_s(self) -> float:
        return self.times_s[0]

    @property
    def end_time_s(self) -> float:
        return self.times_s[-1]

    @property
    def length_m(self) -> float:
        """Total path length."""
        pts = np.asarray(self.waypoints)
        if pts.shape[0] < 2:
            return 0.0
        return float(np.sum(np.linalg.norm(np.diff(pts, axis=0), axis=1)))

    def position_at(self, time_s: float) -> tuple[float, float]:
        """True position at a given time (clamped at the endpoints)."""
        times = np.asarray(self.times_s)
        pts = np.asarray(self.waypoints)
        if time_s <= times[0]:
            p = pts[0]
        elif time_s >= times[-1]:
            p = pts[-1]
        else:
            i = int(np.searchsorted(times, time_s, side="right")) - 1
            frac = (time_s - times[i]) / (times[i + 1] - times[i])
            p = pts[i] + frac * (pts[i + 1] - pts[i])
        return (float(p[0]), float(p[1]))

    def sample(self, interval_s: float) -> list[tuple[float, tuple[float, float]]]:
        """``(time, position)`` pairs every ``interval_s`` along the path."""
        if interval_s <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval_s}")
        times = np.arange(self.start_time_s, self.end_time_s + 1e-9, interval_s)
        return [(float(t), self.position_at(float(t))) for t in times]

    @staticmethod
    def constant_speed(
        waypoints: Sequence[tuple[float, float]],
        speed_mps: float,
        start_time_s: float = 0.0,
    ) -> "Trajectory":
        """Build a trajectory walking the waypoints at a constant speed."""
        if speed_mps <= 0:
            raise ConfigurationError(f"speed must be positive, got {speed_mps}")
        pts = [np.asarray(p, dtype=np.float64) for p in waypoints]
        if len(pts) < 2:
            raise ConfigurationError("need at least two waypoints")
        times = [float(start_time_s)]
        for a, b in zip(pts, pts[1:]):
            step = float(np.linalg.norm(b - a))
            if step <= 0:
                raise ConfigurationError("consecutive waypoints must differ")
            times.append(times[-1] + step / speed_mps)
        return Trajectory(
            times_s=tuple(times),
            waypoints=tuple((float(p[0]), float(p[1])) for p in pts),
        )


@dataclass(frozen=True)
class TrajectoryError:
    """Error statistics of a fix sequence against a trajectory."""

    rmse_m: float
    mean_m: float
    p90_m: float
    max_m: float
    n_fixes: int


def evaluate_track(
    trajectory: Trajectory,
    fixes: Sequence[tuple[float, tuple[float, float]]],
) -> TrajectoryError:
    """Compare timestamped position fixes against the ground truth.

    Parameters
    ----------
    trajectory:
        The true path.
    fixes:
        ``(time_s, (x, y))`` pairs, e.g. from :class:`~repro.tracking.tracker.TagTracker`.
    """
    if not fixes:
        raise ConfigurationError("no fixes to evaluate")
    errors = []
    for t, (x, y) in fixes:
        tx, ty = trajectory.position_at(float(t))
        errors.append(np.hypot(x - tx, y - ty))
    arr = np.asarray(errors)
    return TrajectoryError(
        rmse_m=float(np.sqrt(np.mean(arr**2))),
        mean_m=float(arr.mean()),
        p90_m=float(np.percentile(arr, 90)),
        max_m=float(arr.max()),
        n_fixes=int(arr.size),
    )
