"""Motion-gated VIRE: constrain elimination with the previous fix.

When tracking a moving tag, consecutive positions are physically
constrained: between fixes ``dt`` apart the tag cannot have moved more
than ``v_max * dt``. :class:`GatedVIREEstimator` feeds that constraint
*into* VIRE's elimination — candidate cells outside the reachable disc
around the previous estimate are eliminated up front, exactly like an
additional reader's proximity map.

Gating both sharpens the estimate (fewer aliased candidates survive)
and stabilizes tracks (no teleporting fixes). The classic failure mode —
a wrong early fix locking the gate onto the wrong region — is handled by
a fallback: if the gate would empty the surviving set, the estimator
reverts to ungated VIRE for that fix and re-seeds the gate.
"""

from __future__ import annotations

import numpy as np

from ..core.config import VIREConfig
from ..core.elimination import eliminate
from ..core.estimator import VIREEstimator
from ..core.proximity import build_proximity_maps, rssi_deviations
from ..core.weighting import combine_weights, compute_w1, compute_w2
from ..exceptions import ConfigurationError
from ..geometry.grid import ReferenceGrid
from ..types import EstimateResult, TrackingReading
from ..utils.validation import ensure_positive

__all__ = ["GatedVIREEstimator"]


class GatedVIREEstimator:
    """VIRE with a motion gate from the previous fix.

    Parameters
    ----------
    grid:
        The real reference grid.
    config:
        Base VIRE configuration.
    v_max_mps:
        Maximum plausible tag speed; the gate radius is
        ``v_max_mps * dt + slack_m``.
    slack_m:
        Additive slack absorbing the previous fix's own error.

    Notes
    -----
    The estimator is stateful (it remembers the previous fix and its
    timestamp); call :meth:`reset` when reassigning it to another tag.
    Readings must carry a ``timestamp`` for the gate to engage; without
    one the estimator behaves exactly like plain VIRE.
    """

    name = "VIRE+gate"

    def __init__(
        self,
        grid: ReferenceGrid,
        config: VIREConfig | None = None,
        *,
        v_max_mps: float = 1.5,
        slack_m: float = 0.5,
    ):
        self.inner = VIREEstimator(grid, config)
        self.v_max_mps = ensure_positive(v_max_mps, "v_max_mps")
        if slack_m < 0:
            raise ConfigurationError(f"slack_m must be >= 0, got {slack_m}")
        self.slack_m = float(slack_m)
        self._positions = self.inner.virtual_grid.positions()
        self._last_fix: tuple[float, float] | None = None
        self._last_time: float | None = None
        self.gate_fallbacks = 0

    def reset(self) -> None:
        """Forget the previous fix (e.g. when the tag is reassigned)."""
        self._last_fix = None
        self._last_time = None
        self.gate_fallbacks = 0

    def _gate_mask(self, timestamp: float | None) -> np.ndarray | None:
        """Boolean lattice mask of cells reachable since the last fix."""
        if (
            self._last_fix is None
            or self._last_time is None
            or timestamp is None
        ):
            return None
        dt = float(timestamp) - self._last_time
        if dt < 0:
            raise ConfigurationError(
                f"reading timestamp went backwards: {timestamp} < {self._last_time}"
            )
        radius = self.v_max_mps * dt + self.slack_m
        diff = self._positions - np.asarray(self._last_fix)[np.newaxis, :]
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        return (dist <= radius).reshape(self.inner.virtual_grid.shape)

    def estimate(self, reading: TrackingReading) -> EstimateResult:
        inner = self.inner
        config = inner.config
        virtual = inner.interpolate_reading(reading)
        deviations = rssi_deviations(virtual, reading.tracking_rssi)
        threshold = inner.select_threshold(deviations)
        maps = build_proximity_maps(deviations, threshold)
        selected = eliminate(maps, min_votes=config.min_votes)

        gate = self._gate_mask(reading.timestamp)
        gated = False
        if gate is not None:
            candidate = selected & gate
            if candidate.any():
                selected = candidate
                gated = True
            else:
                # Gate conflicts with the radio evidence — trust the radio,
                # re-seed the gate from this fix.
                self.gate_fallbacks += 1

        if not selected.any():
            # Same fallback semantics as plain VIRE's "relax".
            result = inner.estimate(reading)
            self._remember(result, reading)
            return EstimateResult(
                position=result.position,
                estimator=self.name,
                diagnostics={**dict(result.diagnostics), "gated": False},
            )

        w1 = compute_w1(
            deviations,
            selected,
            mode=config.w1_mode,
            virtual_rssi=virtual if config.w1_mode == "paper-literal" else None,
        )
        w2 = (
            compute_w2(selected, connectivity=config.connectivity)
            if config.use_w2
            else None
        )
        weights = combine_weights(w1, w2)
        xy = weights.ravel() @ self._positions
        result = EstimateResult(
            position=(float(xy[0]), float(xy[1])),
            estimator=self.name,
            diagnostics={
                "threshold_db": float(threshold),
                "n_selected": int(selected.sum()),
                "gated": gated,
                "gate_fallbacks": self.gate_fallbacks,
            },
        )
        self._remember(result, reading)
        return result

    def _remember(self, result: EstimateResult, reading: TrackingReading) -> None:
        self._last_fix = result.position
        if reading.timestamp is not None:
            self._last_time = float(reading.timestamp)

    def __repr__(self) -> str:
        return (
            f"GatedVIREEstimator(v_max={self.v_max_mps} m/s, "
            f"slack={self.slack_m} m)"
        )
