"""Deployment builder: from an environment + grid to a running testbed.

:func:`build_paper_deployment` assembles the paper's §5 testbed — a
reference grid, four corner readers 1 m outside the grid, and any number
of tracking tags — inside a chosen environment, returning a
:class:`Deployment` that owns the simulator and knows the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from ..exceptions import ConfigurationError
from ..geometry.grid import ReferenceGrid
from ..geometry.placement import corner_reader_positions, paper_testbed_grid
from ..rf.disturbance import HumanMovementDisturbance
from ..rf.environments import EnvironmentSpec
from ..rf.interference import TagInterferenceModel
from ..utils.rng import derive_rng
from .middleware import SmoothingSpec
from .readers import Reader
from .simulator import TestbedSimulator
from .tags import NEW_EQUIPMENT, ActiveTag, TagSpec

__all__ = ["Deployment", "build_paper_deployment"]


@dataclass
class Deployment:
    """A fully wired testbed plus its ground truth.

    Attributes
    ----------
    simulator:
        The event-driven simulator, ready to run.
    grid:
        The real reference grid geometry.
    tracking_truth:
        Mapping of tracking tag id -> true position at deployment time
        (updated by :meth:`move_tracking_tag`).
    """

    simulator: TestbedSimulator
    grid: ReferenceGrid
    environment: EnvironmentSpec
    tracking_truth: dict[str, tuple[float, float]] = field(default_factory=dict)

    def move_tracking_tag(self, tag_id: str, position: tuple[float, float]) -> None:
        """Move a tracking tag and record the new ground truth."""
        if tag_id not in self.tracking_truth:
            raise ConfigurationError(f"{tag_id!r} is not a tracking tag")
        self.simulator.tag(tag_id).move_to(position)
        self.tracking_truth[tag_id] = (float(position[0]), float(position[1]))

    @property
    def reader_positions(self) -> np.ndarray:
        return self.simulator.channel.reader_positions


def build_paper_deployment(
    environment: EnvironmentSpec,
    *,
    grid: ReferenceGrid | None = None,
    tracking_tags: Mapping[str, tuple[float, float]] | None = None,
    reader_margin_m: float = 1.0,
    reader_positions: Iterable[tuple[float, float]] | None = None,
    tag_spec: TagSpec = NEW_EQUIPMENT,
    smoothing: SmoothingSpec | None = None,
    tracking_smoothing: SmoothingSpec | None = None,
    seed: int = 0,
    disturbances: Iterable[HumanMovementDisturbance] = (),
    interference: TagInterferenceModel | None = None,
) -> Deployment:
    """Build the paper's testbed inside ``environment``.

    Parameters
    ----------
    environment:
        One of the Env1/Env2/Env3 presets (or a custom spec).
    grid:
        Real reference grid; defaults to the paper's 4x4 @ 1 m.
    tracking_tags:
        Mapping of tag id -> true position. May be empty and populated
        later via the simulator API, but passing them here registers the
        ground truth.
    reader_margin_m:
        Clearance of the corner readers beyond the grid (paper: 1 m).
    reader_positions:
        Explicit reader coordinates, overriding the four-corner layout.
        Used by merged multi-room deployments (``repro.zones``) where
        readers sit at each room's corners rather than the site's. Must
        not coincide with any reference-lattice point (the channel
        refuses zero-length tag→reader segments).
    seed:
        Controls the frozen channel world *and* per-reading randomness.
    """
    grid = grid or paper_testbed_grid()
    if reader_positions is not None:
        reader_pos = np.asarray(
            [[float(p[0]), float(p[1])] for p in reader_positions],
            dtype=np.float64,
        )
        if reader_pos.ndim != 2 or reader_pos.shape[0] < 1:
            raise ConfigurationError(
                "reader_positions must contain at least one (x, y) pair"
            )
    else:
        reader_pos = corner_reader_positions(grid, margin=reader_margin_m)
    for pos in reader_pos:
        if not environment.room.contains(pos, pad=1e-9):
            raise ConfigurationError(
                f"reader at {tuple(pos)} falls outside room bounds "
                f"{environment.room.bounds}; enlarge the room or shrink the grid"
            )
    channel = environment.build_channel(reader_pos, seed=seed)

    tags: list[ActiveTag] = []
    ref_positions = grid.tag_positions()
    offset_rng = derive_rng(seed, "tag-offsets")
    for i, p in enumerate(ref_positions):
        tag = ActiveTag(f"ref-{i}", (p[0], p[1]), tag_spec, is_reference=True)
        if environment.reference_tag_offset_sigma_db > 0:
            tag.offset_db = float(
                offset_rng.normal(0.0, environment.reference_tag_offset_sigma_db)
            )
        tags.append(tag)
    truth: dict[str, tuple[float, float]] = {}
    for tag_id, pos in (tracking_tags or {}).items():
        tag = ActiveTag(str(tag_id), pos, tag_spec, is_reference=False)
        if environment.tracking_tag_offset_sigma_db > 0:
            tag.offset_db = float(
                offset_rng.normal(0.0, environment.tracking_tag_offset_sigma_db)
            )
        tags.append(tag)
        truth[str(tag_id)] = (float(pos[0]), float(pos[1]))

    readers = [
        Reader(f"reader-{k}", (p[0], p[1])) for k, p in enumerate(reader_pos)
    ]
    simulator = TestbedSimulator(
        channel,
        tags,
        readers,
        smoothing=smoothing,
        tracking_smoothing=tracking_smoothing,
        seed=seed,
        disturbances=disturbances,
        interference=interference,
    )
    return Deployment(
        simulator=simulator,
        grid=grid,
        environment=environment,
        tracking_truth=truth,
    )
