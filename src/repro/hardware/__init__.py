"""Event-driven testbed simulation: active tags, readers, middleware.

This subpackage emulates the RF Code deployment of the paper at the
system level: tags beacon independently every ~2 s (7.5 s on the original
LANDMARC equipment), readers receive each beacon through the
:class:`~repro.rf.RFChannel`, and a middleware server aggregates readings
per (reader, tag) with temporal smoothing, handing consistent
:class:`~repro.types.TrackingReading` snapshots to the estimators.
"""

from .events import EventQueue, SimClock
from .tags import TagSpec, ActiveTag, NEW_EQUIPMENT, ORIGINAL_EQUIPMENT
from .readers import Reader, ReadingRecord
from .middleware import MiddlewareServer, SmoothingSpec
from .simulator import TestbedSimulator
from .streams import SimulatorRecordStream
from .deployment import Deployment, build_paper_deployment

__all__ = [
    "EventQueue",
    "SimClock",
    "TagSpec",
    "ActiveTag",
    "NEW_EQUIPMENT",
    "ORIGINAL_EQUIPMENT",
    "Reader",
    "ReadingRecord",
    "MiddlewareServer",
    "SmoothingSpec",
    "TestbedSimulator",
    "SimulatorRecordStream",
    "Deployment",
    "build_paper_deployment",
]
