"""Stream adapter: testbed beacon records as a consumable stream.

The paper's middleware (§3.2) receives a continuous stream of
``(tag ID, reader ID, RSSI)`` tuples from the readers. Inside the
event-driven simulator those records are pushed synchronously into the
built-in :class:`~repro.hardware.middleware.MiddlewareServer`; the
streaming service instead wants to *pull* them through its own bounded
ingestion queue so that overflow, backpressure and drops are real.

:class:`SimulatorRecordStream` interposes on the simulator's record sink
(:meth:`TestbedSimulator.set_record_sink`) and exposes the beacon traffic
as time-chunked batches — synchronously via :meth:`advance` /
:meth:`iter_chunks`, or asynchronously via :meth:`aiter_records` for the
asyncio ingestion loop. Simulation time only advances while the consumer
pulls, so the whole stack stays deterministic for a given seed.
"""

from __future__ import annotations

from typing import AsyncIterator, Iterator

from ..exceptions import ConfigurationError, SimulationError
from .readers import ReadingRecord
from .simulator import TestbedSimulator

__all__ = ["SimulatorRecordStream"]


class SimulatorRecordStream:
    """Pull-based stream of :class:`ReadingRecord` from a running testbed.

    Use as a context manager — the stream owns the simulator's record
    sink while open, and restores direct middleware delivery on close::

        with SimulatorRecordStream(simulator, step_s=0.5) as stream:
            for now_s, records in stream.iter_chunks(duration_s=10.0):
                ...

    Parameters
    ----------
    simulator:
        The testbed to tap. Must not already have a record sink.
    step_s:
        Simulation-time granularity of one chunk. Smaller steps give the
        consumer finer interleaving (more snapshot opportunities) at
        slightly more per-chunk overhead.
    """

    def __init__(self, simulator: TestbedSimulator, *, step_s: float = 0.5):
        if step_s <= 0:
            raise ConfigurationError(f"step_s must be positive, got {step_s}")
        self.simulator = simulator
        self.step_s = float(step_s)
        self._buffer: list[ReadingRecord] = []
        self._open = False
        self._records_streamed = 0

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "SimulatorRecordStream":
        if self._open:
            raise SimulationError("stream is already open")
        if self.simulator.record_sink is not None:
            raise SimulationError(
                "simulator already has a record sink; only one stream may "
                "tap a testbed at a time"
            )
        self.simulator.set_record_sink(self._buffer.append)
        self._open = True
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Release the simulator's record sink."""
        if self._open:
            self.simulator.set_record_sink(None)
            self._open = False

    @property
    def records_streamed(self) -> int:
        """Total records handed to consumers so far."""
        return self._records_streamed

    # -- synchronous consumption --------------------------------------------

    def advance(self, dt_s: float) -> list[ReadingRecord]:
        """Advance simulation time by ``dt_s``; return the records emitted."""
        if not self._open:
            raise SimulationError("stream is closed; use it as a context manager")
        self.simulator.run_for(dt_s)
        out, self._buffer[:] = list(self._buffer), []
        self._records_streamed += len(out)
        return out

    def iter_chunks(
        self, duration_s: float
    ) -> Iterator[tuple[float, list[ReadingRecord]]]:
        """Yield ``(now_s, records)`` chunks covering ``duration_s``.

        The final chunk is truncated so the stream ends exactly at
        ``start + duration_s``.
        """
        if duration_s < 0:
            raise ConfigurationError(
                f"duration_s must be >= 0, got {duration_s}"
            )
        end = self.simulator.now + duration_s
        while self.simulator.now < end:
            dt = min(self.step_s, end - self.simulator.now)
            records = self.advance(dt)
            yield self.simulator.now, records

    # -- asynchronous consumption -------------------------------------------

    async def aiter_records(self, duration_s: float) -> AsyncIterator[ReadingRecord]:
        """Asynchronously yield individual records covering ``duration_s``.

        Yields control to the event loop between chunks (simulated time,
        never wall-clock sleeps), so an asyncio ingestion task can
        interleave with the batcher/estimator tasks deterministically.
        """
        import asyncio

        for _, records in self.iter_chunks(duration_s):
            for record in records:
                yield record
            await asyncio.sleep(0)

    def __repr__(self) -> str:
        state = "open" if self._open else "closed"
        return (
            f"SimulatorRecordStream({state}, step={self.step_s:g}s, "
            f"streamed={self._records_streamed})"
        )
