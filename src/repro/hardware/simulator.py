"""The testbed simulator: wires tags, readers, channel and middleware.

Each tag gets a recurring beacon event. On each beacon, every reader
draws one RSSI sample from the channel (each with its own randomness),
optionally degraded by active disturbances (a person walking through) and
by tag-density interference offsets, and forwards detections to the
middleware. The simulation is deterministic for a given seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from ..exceptions import ConfigurationError, SimulationError
from ..rf.channel import RFChannel
from ..rf.disturbance import HumanMovementDisturbance
from ..rf.interference import TagInterferenceModel
from ..types import TrackingReading
from ..utils.rng import derive_rng
from .events import EventQueue
from .middleware import MiddlewareServer, SmoothingSpec
from .readers import Reader, ReadingRecord
from .tags import ActiveTag

if TYPE_CHECKING:  # faults layer sits beside hardware; import is type-only
    from ..faults.injector import FaultInjector

__all__ = ["TestbedSimulator"]


class TestbedSimulator:
    """Event-driven simulation of one RFID testbed.

    Parameters
    ----------
    channel:
        The frozen RF world. Its reader ordering must match ``readers``.
    tags:
        All tags (reference + tracking). Reference tags must have
        ``is_reference=True`` and unique ids.
    readers:
        The readers, in the same order as the channel's reader positions.
    smoothing:
        Middleware smoothing config.
    seed:
        Seed for all per-reading randomness (fading draws, beacon jitter).
    disturbances:
        Optional human-movement disturbances active during the run.
    interference:
        Optional tag-density interference model; systematic offsets are
        drawn once at start from the deployment geometry.
    """

    def __init__(
        self,
        channel: RFChannel,
        tags: Sequence[ActiveTag],
        readers: Sequence[Reader],
        *,
        smoothing: SmoothingSpec | None = None,
        tracking_smoothing: SmoothingSpec | None = None,
        seed: int = 0,
        disturbances: Iterable[HumanMovementDisturbance] = (),
        interference: TagInterferenceModel | None = None,
    ):
        if len(readers) != channel.n_readers:
            raise ConfigurationError(
                f"{len(readers)} readers supplied for a channel with "
                f"{channel.n_readers} reader positions"
            )
        for i, (reader, pos) in enumerate(zip(readers, channel.reader_positions)):
            if not np.allclose(reader.position, pos):
                raise ConfigurationError(
                    f"reader {i} position {reader.position} mismatches channel "
                    f"position {tuple(pos)}"
                )
        ids = [t.tag_id for t in tags]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("tag ids must be unique")
        self.channel = channel
        self.tags = list(tags)
        self.readers = list(readers)
        self.disturbances = tuple(disturbances)
        self.interference = interference
        self.seed = int(seed)

        reference = {
            t.tag_id: t.position for t in self.tags if t.is_reference
        }
        if not reference:
            raise ConfigurationError("deployment has no reference tags")
        self.middleware = MiddlewareServer(
            reader_ids=[r.reader_id for r in self.readers],
            reference_tags=reference,
            smoothing=smoothing,
            tracking_smoothing=tracking_smoothing,
        )
        for reader in self.readers:
            # Expose per-reader frame accounting (frames received vs
            # dropped at the detection floor) through the middleware.
            self.middleware.register_frame_source(reader)
        self.queue = EventQueue()
        self._beacon_rng = derive_rng(self.seed, "beacons")
        self._sample_rng = derive_rng(self.seed, "samples")
        self._record_sink: Callable[[ReadingRecord], None] | None = None
        self._fault_injector: "FaultInjector | None" = None

        self._interference_offsets: dict[str, float] = {}
        if self.interference is not None:
            positions = np.array([t.position for t in self.tags])
            offsets = self.interference.systematic_offsets_db(
                positions, derive_rng(self.seed, "interference")
            )
            self._interference_offsets = {
                t.tag_id: float(o) for t, o in zip(self.tags, offsets)
            }

        # Stagger initial beacons uniformly over one interval so the
        # middleware fills evenly instead of in bursts.
        for tag in self.tags:
            first = self._beacon_rng.uniform(0.0, tag.spec.beacon_interval_s)
            self.queue.schedule(first, self._make_beacon_event(tag))

    # -- simulation machinery ---------------------------------------------

    def _make_beacon_event(self, tag: ActiveTag):
        def fire() -> None:
            if not tag.alive:
                return  # battery dead: no beacon, no rescheduling
            self._emit_beacon(tag)
            tag.record_beacon()
            if tag.alive:
                self.queue.schedule_in(
                    tag.next_beacon_delay(self._beacon_rng), fire
                )

        return fire

    def _emit_beacon(self, tag: ActiveTag) -> None:
        now = self.queue.clock.now
        pos = np.asarray(tag.position)[np.newaxis, :]
        # extra_* terms are attenuations; a positive tag offset boosts RSSI.
        extra_base = self._interference_offsets.get(tag.tag_id, 0.0) - tag.offset_db
        if self.interference is not None:
            # Per-reading interference jitter (collisions are per frame).
            positions = np.array([tag.position])
            extra_base += float(
                self.interference.reading_jitter_db(
                    positions, self._sample_rng, n_reads=1
                )[0, 0]
            )
        for k, reader in enumerate(self.readers):
            extra = extra_base
            for disturbance in self.disturbances:
                extra += disturbance.attenuation_at(now, tag.position, reader.position)
            rssi = float(
                self.channel.sample_rssi(
                    k, pos, self._sample_rng, n_reads=1, extra_attenuation_db=extra
                )[0, 0]
            )
            record = reader.receive(tag.tag_id, now, rssi)
            if record is not None:
                self._deliver(record, now)

    def _deliver(self, record: ReadingRecord, now: float) -> None:
        """Route one detected record through faults (if any) to delivery."""
        if self._fault_injector is not None:
            for rec in self._fault_injector.process(record, now):
                self._dispatch(rec)
        else:
            self._dispatch(record)

    def _dispatch(self, record: ReadingRecord) -> None:
        if self._record_sink is not None:
            self._record_sink(record)
        else:
            self.middleware.ingest(record)

    # -- public API ---------------------------------------------------------

    def set_record_sink(
        self, sink: Callable[[ReadingRecord], None] | None
    ) -> None:
        """Divert reading records to ``sink`` instead of the middleware.

        While a sink is installed, *every* detected beacon record goes to
        the sink and the built-in :class:`MiddlewareServer` receives
        nothing — the sink owns delivery (this is how the streaming
        service interposes its bounded ingestion queue between readers
        and middleware, so queue overflow genuinely loses data). Pass
        ``None`` to restore direct middleware ingestion.
        """
        self._record_sink = sink

    @property
    def record_sink(self) -> Callable[[ReadingRecord], None] | None:
        """The installed record sink, if any."""
        return self._record_sink

    def set_fault_injector(self, injector: "FaultInjector | None") -> None:
        """Interpose a :class:`~repro.faults.injector.FaultInjector`.

        The injector wraps the record path *between* reader detection
        and delivery (middleware or record sink): every detected beacon
        record passes through the injector's fault plan, and only
        survivors are delivered — possibly modified (calibration drift)
        or late (delay faults, released as simulated time advances).
        The RF channel and reader randomness are untouched, so with no
        injector — or an injector over an *empty* plan — downstream
        output is bit-identical to a fault-free run. Pass ``None`` to
        remove.
        """
        self._fault_injector = injector

    @property
    def fault_injector(self) -> "FaultInjector | None":
        """The installed fault injector, if any."""
        return self._fault_injector

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self.queue.clock.now

    def run_for(self, duration_s: float) -> int:
        """Advance the simulation by ``duration_s``; returns events fired."""
        if duration_s < 0:
            raise SimulationError(f"duration must be >= 0, got {duration_s}")
        fired = self.queue.run_until(self.now + duration_s)
        if self._fault_injector is not None:
            # Delay faults buffer records past the last beacon of the
            # window; release everything due by the new simulation time.
            for rec in self._fault_injector.release_due(self.now):
                self._dispatch(rec)
        return fired

    def warm_up(self, *, min_coverage: float = 1.0, max_time_s: float = 120.0) -> float:
        """Run until every reader has fresh readings of the reference grid.

        Returns the simulation time reached. Raises
        :class:`SimulationError` if coverage is still insufficient at
        ``max_time_s`` (e.g. a reference tag is out of range of a reader).
        """
        step = 2.0
        deadline = self.now + max_time_s
        while self.now < deadline:
            self.run_for(step)
            coverage = self.middleware.coverage(self.now)
            if all(c >= min_coverage for c in coverage.values()):
                return self.now
        raise SimulationError(
            f"reference coverage below {min_coverage} after {max_time_s}s: "
            f"{self.middleware.coverage(self.now)}"
        )

    def tag(self, tag_id: str) -> ActiveTag:
        """Look up a tag by id."""
        for t in self.tags:
            if t.tag_id == tag_id:
                return t
        raise ConfigurationError(f"no tag with id {tag_id!r}")

    def reading_for(self, tracking_tag_id: str) -> TrackingReading:
        """Middleware snapshot for one tracking tag at the current time."""
        return self.middleware.snapshot(tracking_tag_id, self.now)
