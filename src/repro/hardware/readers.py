"""RFID readers.

A reader is a passive receiver in this model: when a tag beacons, every
reader in range draws an RSSI sample from the channel and forwards a
:class:`ReadingRecord` to the middleware. Detection is probabilistic near
the sensitivity floor — frames whose instantaneous RSSI lands below the
detection threshold are lost, which is how real readers behave and what
creates missing readings for the failure-handling paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["Reader", "ReadingRecord"]


@dataclass(frozen=True)
class ReadingRecord:
    """One received beacon: (reader, tag, time, RSSI)."""

    reader_id: str
    tag_id: str
    time_s: float
    rssi_dbm: float


class Reader:
    """A fixed receiver identified by ``reader_id`` at ``position``.

    Parameters
    ----------
    detection_threshold_dbm:
        Frames weaker than this are dropped (never reach the middleware).
        The default sits above the channel's sensitivity floor so the
        drop path actually occurs for distant/obstructed tags.
    """

    def __init__(
        self,
        reader_id: str,
        position: tuple[float, float],
        *,
        detection_threshold_dbm: float = -98.0,
    ):
        if not reader_id:
            raise ConfigurationError("reader_id must be non-empty")
        x, y = float(position[0]), float(position[1])
        if not (np.isfinite(x) and np.isfinite(y)):
            raise ConfigurationError(f"non-finite reader position {position}")
        self.reader_id = str(reader_id)
        self.position = (x, y)
        self.detection_threshold_dbm = float(detection_threshold_dbm)
        self.frames_received = 0
        self.frames_dropped = 0

    def receive(
        self, tag_id: str, time_s: float, rssi_dbm: float
    ) -> ReadingRecord | None:
        """Process one beacon; return a record, or None if undetectable."""
        if not np.isfinite(rssi_dbm) or rssi_dbm < self.detection_threshold_dbm:
            self.frames_dropped += 1
            return None
        self.frames_received += 1
        return ReadingRecord(
            reader_id=self.reader_id,
            tag_id=tag_id,
            time_s=float(time_s),
            rssi_dbm=float(rssi_dbm),
        )

    def __repr__(self) -> str:
        return f"Reader({self.reader_id!r}, {self.position})"
