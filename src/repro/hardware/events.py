"""A minimal discrete-event engine.

The testbed has a genuinely asynchronous structure — every tag beacons on
its own jittered schedule and the middleware snapshots at query time — so
we simulate it with a classic priority-queue event loop rather than fixed
time steps. The engine is deliberately tiny: time-ordered callbacks with
a deterministic tie-break, nothing more.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable

from ..exceptions import SimulationError

__all__ = ["SimClock", "EventQueue"]


@dataclass
class SimClock:
    """Current simulation time in seconds. Shared by all components."""

    now: float = 0.0

    def advance_to(self, t: float) -> None:
        if t < self.now:
            raise SimulationError(
                f"time cannot move backwards: {t} < {self.now}"
            )
        self.now = t


class EventQueue:
    """Time-ordered event queue with deterministic FIFO tie-breaking.

    Events scheduled for the same instant fire in scheduling order, which
    keeps simulations bit-for-bit reproducible across runs.
    """

    def __init__(self, clock: SimClock | None = None):
        self.clock = clock or SimClock()
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._n_dispatched = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def n_dispatched(self) -> int:
        """Total number of events dispatched so far."""
        return self._n_dispatched

    def schedule(self, time_s: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire at absolute time ``time_s``."""
        if time_s < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time_s} < {self.clock.now}"
            )
        heapq.heappush(self._heap, (float(time_s), next(self._counter), callback))

    def schedule_in(self, delay_s: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after a relative delay."""
        if delay_s < 0:
            raise SimulationError(f"delay must be non-negative, got {delay_s}")
        self.schedule(self.clock.now + delay_s, callback)

    def run_until(self, t_end: float, *, max_events: int | None = None) -> int:
        """Dispatch events up to and including time ``t_end``.

        Returns the number of events dispatched. ``max_events`` guards
        against runaway self-rescheduling loops in tests.
        """
        dispatched = 0
        while self._heap and self._heap[0][0] <= t_end:
            if max_events is not None and dispatched >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} before reaching t={t_end}"
                )
            time_s, _, callback = heapq.heappop(self._heap)
            self.clock.advance_to(time_s)
            callback()
            dispatched += 1
            self._n_dispatched += 1
        self.clock.advance_to(t_end)
        return dispatched

    def run_all(self, *, max_events: int = 1_000_000) -> int:
        """Dispatch every pending event (careful with self-rescheduling)."""
        dispatched = 0
        while self._heap:
            if dispatched >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            time_s, _, callback = heapq.heappop(self._heap)
            self.clock.advance_to(time_s)
            callback()
            dispatched += 1
            self._n_dispatched += 1
        return dispatched
