"""Active RFID tags.

An active tag beacons autonomously: every ``beacon_interval_s`` (plus
per-beacon jitter, since real tags drift to avoid persistent collisions)
it emits a frame carrying its ID. Two equipment presets bracket the
paper's history: the original 2003 LANDMARC gear beaconed every 7.5 s,
the improved RF Code gear every 2 s (§3.2).

Tags can move: :meth:`ActiveTag.move_to` updates the position used for
subsequent beacons, which is how the tracking examples move assets
through the testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..utils.validation import ensure_non_negative, ensure_positive

__all__ = ["TagSpec", "ActiveTag", "NEW_EQUIPMENT", "ORIGINAL_EQUIPMENT"]


@dataclass(frozen=True)
class TagSpec:
    """Electrical/behavioural parameters shared by a batch of tags.

    Parameters
    ----------
    beacon_interval_s:
        Mean interval between beacons.
    beacon_jitter_s:
        Uniform +/- jitter applied to each interval (collision avoidance).
    battery_life_beacons:
        Number of beacons before the battery dies (None = unlimited). Tags
        past end-of-life silently stop beaconing — a realistic failure
        mode exercised by the failure-injection tests.
    """

    beacon_interval_s: float = 2.0
    beacon_jitter_s: float = 0.2
    battery_life_beacons: int | None = None

    def __post_init__(self) -> None:
        ensure_positive(self.beacon_interval_s, "beacon_interval_s")
        ensure_non_negative(self.beacon_jitter_s, "beacon_jitter_s")
        if self.beacon_jitter_s >= self.beacon_interval_s:
            raise ConfigurationError(
                "beacon_jitter_s must be smaller than beacon_interval_s"
            )
        if self.battery_life_beacons is not None and self.battery_life_beacons < 1:
            raise ConfigurationError("battery_life_beacons must be >= 1 or None")


#: The improved RF Code equipment used by the VIRE paper (§3.2).
NEW_EQUIPMENT = TagSpec(beacon_interval_s=2.0, beacon_jitter_s=0.2)

#: The original 2003 LANDMARC equipment (§3.1): 7.5 s average interval.
ORIGINAL_EQUIPMENT = TagSpec(beacon_interval_s=7.5, beacon_jitter_s=0.75)


class ActiveTag:
    """One active RFID tag with an ID, a position and a beacon schedule.

    Parameters
    ----------
    tag_id:
        Unique identifier (string), e.g. ``"ref-0"`` or ``"track-3"``.
    position:
        Initial ``(x, y)`` coordinate in metres.
    spec:
        Behavioural parameters.
    is_reference:
        True for reference tags (known location), False for tracking tags.
    """

    def __init__(
        self,
        tag_id: str,
        position: tuple[float, float],
        spec: TagSpec = NEW_EQUIPMENT,
        *,
        is_reference: bool = False,
    ):
        if not tag_id:
            raise ConfigurationError("tag_id must be non-empty")
        self.tag_id = str(tag_id)
        self._position = (float(position[0]), float(position[1]))
        if not (np.isfinite(self._position[0]) and np.isfinite(self._position[1])):
            raise ConfigurationError(f"non-finite tag position {position}")
        self.spec = spec
        self.is_reference = bool(is_reference)
        self.beacons_sent = 0
        #: Quasi-static RSSI offset (dB) of this physical tag: antenna
        #: detuning by whatever the tag is mounted on, unit-to-unit TX
        #: power spread. Set by the deployment builder from the
        #: environment's tag-offset sigmas; 0 means a perfectly nominal tag.
        self.offset_db = 0.0

    @property
    def position(self) -> tuple[float, float]:
        return self._position

    def move_to(self, position: tuple[float, float]) -> None:
        """Relocate the tag (takes effect from its next beacon)."""
        x, y = float(position[0]), float(position[1])
        if not (np.isfinite(x) and np.isfinite(y)):
            raise ConfigurationError(f"non-finite tag position {position}")
        self._position = (x, y)

    @property
    def alive(self) -> bool:
        """False once the battery budget is exhausted."""
        life = self.spec.battery_life_beacons
        return life is None or self.beacons_sent < life

    def next_beacon_delay(self, rng: np.random.Generator) -> float:
        """Draw the delay until this tag's next beacon."""
        jitter = self.spec.beacon_jitter_s
        if jitter == 0:
            return self.spec.beacon_interval_s
        return self.spec.beacon_interval_s + rng.uniform(-jitter, jitter)

    def record_beacon(self) -> None:
        """Bookkeeping hook called by the simulator on each emission."""
        self.beacons_sent += 1

    def with_spec(self, spec: TagSpec) -> "ActiveTag":
        """A fresh tag with the same identity but different behaviour."""
        return ActiveTag(
            self.tag_id, self._position, spec, is_reference=self.is_reference
        )

    def __repr__(self) -> str:
        kind = "ref" if self.is_reference else "track"
        return f"ActiveTag({self.tag_id!r}, {self._position}, {kind})"
