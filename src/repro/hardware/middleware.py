"""The central middleware server.

The paper (§3.2): "The information of tags received by readers is
gathered to a central processing server … through the software middleware
program, we can directly obtain the useful information … including the
tag ID, the reader ID, and RSSI values."

:class:`MiddlewareServer` collects :class:`~repro.hardware.readers.ReadingRecord`
streams and maintains, per (reader, tag), a temporally smoothed RSSI
estimate. Smoothing is the designed defence against per-reading fading
and transient disturbances (§4.1); both a sliding-window mean and an EWMA
are provided. :meth:`snapshot` assembles the consistent
:class:`~repro.types.TrackingReading` an estimator consumes, enforcing
freshness so a tag that stopped beaconing (dead battery, left the area)
is reported missing rather than silently stale.

Partial input: the default (strict) snapshot raises on any missing
series — bit-identical to the original behaviour. With
``allow_partial=True`` the middleware instead returns a *masked*
reading: readers with no fresh tracking-tag value are absent, missing
reference values become NaN, and ``TrackingReading.masked`` flags the
degradation so quorum-aware estimators can decide what survives.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from ..exceptions import ConfigurationError, ReadingError
from ..types import TrackingReading
from .readers import ReadingRecord

__all__ = ["SmoothingSpec", "MiddlewareServer"]


@dataclass(frozen=True)
class SmoothingSpec:
    """Temporal smoothing configuration.

    Parameters
    ----------
    mode:
        ``"window"`` — mean of the last ``window`` readings;
        ``"ewma"`` — exponentially weighted moving average with weight
        ``alpha`` on the newest reading;
        ``"latest"`` — no smoothing.
    window:
        Window length for ``"window"`` mode.
    alpha:
        EWMA weight in (0, 1] for ``"ewma"`` mode.
    max_age_s:
        A (reader, tag) series with no reading newer than this is treated
        as missing at snapshot time (None disables the freshness check).
    """

    mode: str = "window"
    window: int = 5
    alpha: float = 0.4
    max_age_s: float | None = 30.0

    def __post_init__(self) -> None:
        if self.mode not in ("window", "ewma", "latest"):
            raise ConfigurationError(f"unknown smoothing mode {self.mode!r}")
        if self.window < 1:
            raise ConfigurationError(f"window must be >= 1, got {self.window}")
        if not (0.0 < self.alpha <= 1.0):
            raise ConfigurationError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.max_age_s is not None and self.max_age_s <= 0:
            raise ConfigurationError(f"max_age_s must be positive, got {self.max_age_s}")


class _Series:
    """Smoothed RSSI state for one (reader, tag) pair."""

    __slots__ = ("history", "ewma", "last_time", "_window_cache")

    def __init__(self, window: int):
        self.history: deque[float] = deque(maxlen=window)
        self.ewma: float | None = None
        self.last_time: float = -np.inf
        self._window_cache: float | None = None

    def update(self, rssi: float, time_s: float, spec: SmoothingSpec) -> None:
        self.history.append(rssi)
        self._window_cache = None
        if self.ewma is None:
            self.ewma = rssi
        else:
            self.ewma = spec.alpha * rssi + (1.0 - spec.alpha) * self.ewma
        self.last_time = time_s

    def value(self, spec: SmoothingSpec) -> float:
        if not self.history:
            raise ReadingError("series has no readings")
        if spec.mode == "window":
            # Memoized between ingests: every snapshot (and the
            # calibration loop's reference sweep) re-reads each series
            # several times per tick.
            if self._window_cache is None:
                self._window_cache = float(np.mean(self.history))
            return self._window_cache
        if spec.mode == "ewma":
            assert self.ewma is not None
            return float(self.ewma)
        return float(self.history[-1])


class MiddlewareServer:
    """Collects reading records and produces estimator-ready snapshots.

    Parameters
    ----------
    reader_ids:
        Ordered reader identifiers; this order defines the row order of
        every snapshot's RSSI matrices.
    reference_tags:
        Mapping of reference tag id -> known ``(x, y)`` position; the
        iteration order defines the reference-column order of snapshots.
    smoothing:
        Temporal smoothing configuration.
    """

    def __init__(
        self,
        reader_ids: Iterable[str],
        reference_tags: Mapping[str, tuple[float, float]],
        smoothing: SmoothingSpec | None = None,
        tracking_smoothing: SmoothingSpec | None = None,
    ):
        self.reader_ids = tuple(reader_ids)
        if not self.reader_ids:
            raise ConfigurationError("need at least one reader id")
        if len(set(self.reader_ids)) != len(self.reader_ids):
            raise ConfigurationError("reader ids must be unique")
        self.reference_ids = tuple(reference_tags.keys())
        if not self.reference_ids:
            raise ConfigurationError("need at least one reference tag")
        self.reference_positions = np.array(
            [reference_tags[t] for t in self.reference_ids], dtype=np.float64
        )
        self._reference_id_set = frozenset(self.reference_ids)
        self.smoothing = smoothing or SmoothingSpec()
        # Reference tags are static, so deep smoothing is free accuracy;
        # tracking tags move, so their series may want a shorter memory.
        # Default: same smoothing for both.
        self.tracking_smoothing = tracking_smoothing or self.smoothing
        self._series: dict[tuple[str, str], _Series] = {}
        self._records_ingested = 0
        self._frame_sources: dict[str, object] = {}

    @property
    def records_ingested(self) -> int:
        return self._records_ingested

    # -- frame accounting ----------------------------------------------------

    def register_frame_source(self, reader: object) -> None:
        """Attach a per-reader frame counter source.

        ``reader`` is anything with ``reader_id``, ``frames_received``
        and ``frames_dropped`` attributes (a
        :class:`~repro.hardware.readers.Reader`). The simulator registers
        its readers automatically so detection-floor drops — tracked by
        the readers but previously invisible from the middleware — are
        observable here and exportable by the service metrics registry.
        """
        reader_id = getattr(reader, "reader_id", None)
        if reader_id not in self.reader_ids:
            raise ConfigurationError(
                f"cannot register frame source for unknown reader {reader_id!r}"
            )
        self._frame_sources[reader_id] = reader

    def frame_stats(self) -> dict[str, dict[str, int]]:
        """Per-reader ``{"received": n, "dropped": n}`` frame counters.

        Readers without a registered source report zeros (the counters
        live on the reader objects; a hand-fed middleware has none).
        """
        out: dict[str, dict[str, int]] = {}
        for reader_id in self.reader_ids:
            source = self._frame_sources.get(reader_id)
            out[reader_id] = {
                "received": int(getattr(source, "frames_received", 0) or 0),
                "dropped": int(getattr(source, "frames_dropped", 0) or 0),
            }
        return out

    def _spec_for(self, tag_id: str) -> SmoothingSpec:
        return (
            self.smoothing
            if tag_id in self._reference_id_set
            else self.tracking_smoothing
        )

    def ingest(self, record: ReadingRecord) -> None:
        """Accept one reading record from a reader."""
        if record.reader_id not in self.reader_ids:
            raise ReadingError(f"unknown reader id {record.reader_id!r}")
        key = (record.reader_id, record.tag_id)
        spec = self._spec_for(record.tag_id)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _Series(spec.window)
        series.update(record.rssi_dbm, record.time_s, spec)
        self._records_ingested += 1

    def _smoothed(self, reader_id: str, tag_id: str, now_s: float) -> float | None:
        series = self._series.get((reader_id, tag_id))
        if series is None or not series.history:
            return None
        spec = self._spec_for(tag_id)
        max_age = spec.max_age_s
        if max_age is not None and now_s - series.last_time > max_age:
            return None
        return series.value(spec)

    def snapshot(
        self,
        tracking_tag_id: str,
        now_s: float,
        *,
        allow_partial: bool = False,
    ) -> TrackingReading:
        """Assemble the localization input for one tracking tag.

        Strict mode (the default) raises
        :class:`~repro.exceptions.ReadingError` if any reader lacks a
        fresh reading of the tracking tag or of any reference tag —
        estimators require a complete matrix. (Readers that miss weak
        frames produce exactly this error; callers decide whether to
        retry after more simulation time or drop the reader via
        :meth:`TrackingReading.subset_readers`.)

        With ``allow_partial=True`` the middleware degrades instead of
        refusing: readers with no fresh tracking-tag value are *absent*
        from the returned reading, missing reference values become NaN,
        and the reading carries ``masked=True`` whenever anything was
        missing. When every series is fresh the result is bit-identical
        to the strict snapshot. Raises :class:`ReadingError` only when
        *no* reader has a fresh tracking-tag value.
        """
        if not allow_partial:
            k = len(self.reader_ids)
            n = len(self.reference_ids)
            ref = np.empty((k, n))
            trk = np.empty(k)
            for i, reader_id in enumerate(self.reader_ids):
                t_val = self._smoothed(reader_id, tracking_tag_id, now_s)
                if t_val is None:
                    raise ReadingError(
                        f"reader {reader_id!r} has no fresh reading of tracking "
                        f"tag {tracking_tag_id!r} at t={now_s:.1f}s"
                    )
                trk[i] = t_val
                for j, ref_id in enumerate(self.reference_ids):
                    r_val = self._smoothed(reader_id, ref_id, now_s)
                    if r_val is None:
                        raise ReadingError(
                            f"reader {reader_id!r} has no fresh reading of "
                            f"reference tag {ref_id!r} at t={now_s:.1f}s"
                        )
                    ref[i, j] = r_val
            return TrackingReading(
                reference_rssi=ref,
                tracking_rssi=trk,
                reference_positions=self.reference_positions,
                reader_ids=self.reader_ids,
                tag_id=tracking_tag_id,
                timestamp=now_s,
            )

        surviving: list[int] = []
        trk_vals: list[float] = []
        rows: list[np.ndarray] = []
        missing_refs = 0
        for i, reader_id in enumerate(self.reader_ids):
            t_val = self._smoothed(reader_id, tracking_tag_id, now_s)
            if t_val is None:
                continue  # the whole reader is absent from this snapshot
            row = np.empty(len(self.reference_ids))
            for j, ref_id in enumerate(self.reference_ids):
                r_val = self._smoothed(reader_id, ref_id, now_s)
                if r_val is None:
                    row[j] = np.nan
                    missing_refs += 1
                else:
                    row[j] = r_val
            surviving.append(i)
            trk_vals.append(t_val)
            rows.append(row)
        if not surviving:
            raise ReadingError(
                f"no reader has a fresh reading of tracking tag "
                f"{tracking_tag_id!r} at t={now_s:.1f}s"
            )
        masked = missing_refs > 0 or len(surviving) < len(self.reader_ids)
        return TrackingReading(
            reference_rssi=np.vstack(rows),
            tracking_rssi=np.asarray(trk_vals),
            reference_positions=self.reference_positions,
            reader_ids=tuple(self.reader_ids[i] for i in surviving),
            tag_id=tracking_tag_id,
            timestamp=now_s,
            masked=masked,
        )

    def reference_matrix(self, now_s: float) -> np.ndarray:
        """Smoothed reference-tag RSSI as one ``(K, n_refs)`` matrix.

        Row order is :attr:`reader_ids`, column order
        :attr:`reference_ids` — the same layout as a snapshot's
        ``reference_rssi``. Missing or stale series are NaN. This is the
        calibration loop's per-tick observation: reference tags sit at
        known positions, so the difference between this matrix and a
        clean baseline is pure calibration error plus noise
        (:mod:`repro.calibration`).
        """
        out = np.full(
            (len(self.reader_ids), len(self.reference_ids)), np.nan
        )
        for i, reader_id in enumerate(self.reader_ids):
            for j, ref_id in enumerate(self.reference_ids):
                value = self._smoothed(reader_id, ref_id, now_s)
                if value is not None:
                    out[i, j] = value
        return out

    def coverage(self, now_s: float) -> dict[str, float]:
        """Fraction of fresh (reader, reference-tag) series per reader.

        Diagnostic used by examples to decide the warm-up time before the
        first snapshot. A deployment with zero reference tags (possible
        for subclasses or hand-built servers, though the constructor
        requires at least one) reports vacuous full coverage — there is
        nothing left to wait for — rather than dividing by zero.
        """
        n_refs = len(self.reference_ids)
        if n_refs == 0:
            return {reader_id: 1.0 for reader_id in self.reader_ids}
        out = {}
        for reader_id in self.reader_ids:
            fresh = sum(
                1
                for ref_id in self.reference_ids
                if self._smoothed(reader_id, ref_id, now_s) is not None
            )
            out[reader_id] = fresh / n_refs
        return out

    def reader_freshness(
        self,
        now_s: float,
        tracking_tag_ids: Iterable[str] = (),
    ) -> dict[str, float]:
        """Fresh fraction per reader over reference *and* tracking tags.

        The tracking-tag variant of :meth:`coverage` used by the service
        health tracker: a reader that still sees the static reference
        grid but has lost every moving tag is degraded, and vice versa.
        With no tags at all (no references, no tracking ids) the answer
        is vacuous full freshness.
        """
        tag_ids = list(self.reference_ids) + [
            t for t in tracking_tag_ids if t not in self._reference_id_set
        ]
        if not tag_ids:
            return {reader_id: 1.0 for reader_id in self.reader_ids}
        out = {}
        for reader_id in self.reader_ids:
            fresh = sum(
                1
                for tag_id in tag_ids
                if self._smoothed(reader_id, tag_id, now_s) is not None
            )
            out[reader_id] = fresh / len(tag_ids)
        return out
