"""Argument validation helpers.

These raise :class:`~repro.exceptions.ConfigurationError` with a uniform
message format so constructor validation stays one-line per parameter.
"""

from __future__ import annotations

from numbers import Integral, Real
from typing import Any

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "ensure_positive",
    "ensure_positive_int",
    "ensure_non_negative",
    "ensure_in_range",
    "ensure_finite",
]


def ensure_positive(value: Any, name: str) -> float:
    """Validate ``value > 0`` and return it as a float."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    v = float(value)
    if not np.isfinite(v) or v <= 0.0:
        raise ConfigurationError(f"{name} must be positive and finite, got {value!r}")
    return v


def ensure_non_negative(value: Any, name: str) -> float:
    """Validate ``value >= 0`` and return it as a float."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    v = float(value)
    if not np.isfinite(v) or v < 0.0:
        raise ConfigurationError(
            f"{name} must be non-negative and finite, got {value!r}"
        )
    return v


def ensure_positive_int(value: Any, name: str, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer ``>= minimum`` and return it."""
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    v = int(value)
    if v < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {v}")
    return v


def ensure_in_range(
    value: Any,
    name: str,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate ``low <= value <= high`` (or strict) and return it as float."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    v = float(value)
    ok = (low <= v <= high) if inclusive else (low < v < high)
    if not np.isfinite(v) or not ok:
        bracket = "[]" if inclusive else "()"
        raise ConfigurationError(
            f"{name} must be in {bracket[0]}{low}, {high}{bracket[1]}, got {value!r}"
        )
    return v


def ensure_finite(array: Any, name: str) -> np.ndarray:
    """Validate that an array is entirely finite; return it as float64."""
    arr = np.asarray(array, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError(f"{name} contains non-finite values")
    return arr
