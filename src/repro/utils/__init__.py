"""Small shared utilities: RNG management, validation, arrays, ASCII plots."""

from .rng import derive_rng, derive_seed, spawn_rngs
from .validation import (
    ensure_finite,
    ensure_in_range,
    ensure_positive,
    ensure_positive_int,
)
from .arrays import as_point, as_points, pairwise_distances

__all__ = [
    "derive_rng",
    "derive_seed",
    "spawn_rngs",
    "ensure_finite",
    "ensure_in_range",
    "ensure_positive",
    "ensure_positive_int",
    "as_point",
    "as_points",
    "pairwise_distances",
]
