"""Trial-level parallelism helpers.

Monte-Carlo experiment trials are embarrassingly parallel: each trial
builds its own frozen world from its own seed and shares nothing. The
helper below maps a picklable function over trial indices with an
optional process pool; ``n_jobs=1`` (the default) stays serial, which is
both the reproducible path and the fastest one for small trials where
process start-up dominates.

Guidance applied from the HPC notes: measure before parallelizing — the
per-trial work here is a few milliseconds of vectorized numpy, so the
pool only pays off for large sweeps (Fig. 7's density sweep); hence
opt-in rather than default.

Supervision: passing a :class:`~repro.runtime.policy.RuntimePolicy` with
``supervised=True`` routes the pool through
:class:`~repro.runtime.supervisor.SupervisedPool` — per-chunk deadlines,
bounded retries, pool respawn on worker death, and a deterministic
serial fallback. Results stay bit-identical either way: supervision
changes scheduling, never the per-index computation.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Sequence, TypeVar

from ..exceptions import ConfigurationError

if TYPE_CHECKING:  # runtime import stays lazy (no utils -> runtime cycle)
    from ..runtime.policy import RuntimePolicy

T = TypeVar("T")

__all__ = ["map_trials", "resolve_n_jobs", "compute_chunksize"]


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` request.

    ``None`` or 1 → serial; 0 or negative → one worker per CPU.
    """
    if n_jobs is None:
        return 1
    if n_jobs == 1:
        return 1
    if n_jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return int(n_jobs)


def compute_chunksize(n_items: int, n_workers: int, *, per_worker: int = 4) -> int:
    """Chunk size for :meth:`ProcessPoolExecutor.map` over ``n_items``.

    ``ProcessPoolExecutor.map`` defaults to ``chunksize=1``, which pays
    one pickle/unpickle round-trip per item; on a 1000-trial density
    sweep the IPC overhead dominates the few-millisecond trials. Aim for
    about ``per_worker`` chunks per worker — enough slack for dynamic
    load balancing across unevenly slow trials, while amortizing IPC
    over ``n_items / (n_workers * per_worker)`` items per message.
    """
    if n_items <= 0 or n_workers <= 0:
        return 1
    return max(1, n_items // (n_workers * per_worker))


def _check_indices(indices: Sequence[Any]) -> None:
    """Reject non-integer trial indices — including bools.

    ``isinstance(True, int)`` holds in Python, so a plain ``isinstance``
    guard silently accepts ``[True, False]`` and maps trials 1 and 0 —
    a classic footgun when a predicate list is passed where an index
    list was meant. Bools are therefore rejected explicitly.
    """
    for i in indices:
        if isinstance(i, bool) or not isinstance(i, int):
            raise ConfigurationError(
                f"trial indices must be integers (bool not allowed), "
                f"got {i!r}"
            )


def _apply_chunk(fn: Callable[[int], T], chunk: Sequence[int]) -> list[T]:
    """Module-level chunk runner (picklable unit for the supervised pool)."""
    return [fn(i) for i in chunk]


def map_trials(
    fn: Callable[[int], T],
    trial_indices: Sequence[int],
    *,
    n_jobs: int | None = None,
    policy: "RuntimePolicy | None" = None,
    metrics: Any | None = None,
) -> list[T]:
    """Apply ``fn`` to each trial index, optionally across processes.

    Results are returned in input order regardless of completion order,
    so parallel and serial runs are bit-identical given seeded trials
    (chunked dispatch only changes how indices are shipped to workers,
    never the per-index computation). ``fn`` must be picklable (a
    module-level function or a functools partial of one) when
    ``n_jobs != 1``.

    Parameters
    ----------
    policy:
        Optional :class:`~repro.runtime.policy.RuntimePolicy`; with
        ``supervised=True`` the pool gains deadlines, retries, respawn
        and the serial fallback (see :mod:`repro.runtime.supervisor`).
    metrics:
        Optional duck-typed metrics registry for the supervision
        counters.
    """
    jobs = resolve_n_jobs(n_jobs)
    indices = list(trial_indices)
    _check_indices(indices)
    if jobs == 1 or len(indices) <= 1:
        return [fn(i) for i in indices]
    workers = min(jobs, len(indices))
    chunksize = compute_chunksize(len(indices), workers)
    if policy is not None and policy.supervised:
        from ..runtime.supervisor import supervised_map  # lazy: no cycle

        chunks = [
            indices[lo:lo + chunksize]
            for lo in range(0, len(indices), chunksize)
        ]
        nested = supervised_map(
            partial(_apply_chunk, fn),
            chunks,
            max_workers=workers,
            policy=policy,
            metrics=metrics,
        )
        return [item for chunk in nested for item in chunk]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, indices, chunksize=chunksize))
