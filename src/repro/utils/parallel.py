"""Trial-level parallelism helpers.

Monte-Carlo experiment trials are embarrassingly parallel: each trial
builds its own frozen world from its own seed and shares nothing. The
helper below maps a picklable function over trial indices with an
optional process pool; ``n_jobs=1`` (the default) stays serial, which is
both the reproducible path and the fastest one for small trials where
process start-up dominates.

Guidance applied from the HPC notes: measure before parallelizing — the
per-trial work here is a few milliseconds of vectorized numpy, so the
pool only pays off for large sweeps (Fig. 7's density sweep); hence
opt-in rather than default.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

from ..exceptions import ConfigurationError

T = TypeVar("T")

__all__ = ["map_trials", "resolve_n_jobs", "compute_chunksize"]


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` request.

    ``None`` or 1 → serial; 0 or negative → one worker per CPU.
    """
    if n_jobs is None:
        return 1
    if n_jobs == 1:
        return 1
    if n_jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return int(n_jobs)


def compute_chunksize(n_items: int, n_workers: int, *, per_worker: int = 4) -> int:
    """Chunk size for :meth:`ProcessPoolExecutor.map` over ``n_items``.

    ``ProcessPoolExecutor.map`` defaults to ``chunksize=1``, which pays
    one pickle/unpickle round-trip per item; on a 1000-trial density
    sweep the IPC overhead dominates the few-millisecond trials. Aim for
    about ``per_worker`` chunks per worker — enough slack for dynamic
    load balancing across unevenly slow trials, while amortizing IPC
    over ``n_items / (n_workers * per_worker)`` items per message.
    """
    if n_items <= 0 or n_workers <= 0:
        return 1
    return max(1, n_items // (n_workers * per_worker))


def map_trials(
    fn: Callable[[int], T],
    trial_indices: Sequence[int],
    *,
    n_jobs: int | None = None,
) -> list[T]:
    """Apply ``fn`` to each trial index, optionally across processes.

    Results are returned in input order regardless of completion order,
    so parallel and serial runs are bit-identical given seeded trials
    (chunked dispatch only changes how indices are shipped to workers,
    never the per-index computation). ``fn`` must be picklable (a
    module-level function or a functools partial of one) when
    ``n_jobs != 1``.
    """
    jobs = resolve_n_jobs(n_jobs)
    indices = list(trial_indices)
    if any(not isinstance(i, int) for i in indices):
        raise ConfigurationError("trial indices must be integers")
    if jobs == 1 or len(indices) <= 1:
        return [fn(i) for i in indices]
    workers = min(jobs, len(indices))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(
            pool.map(fn, indices, chunksize=compute_chunksize(len(indices), workers))
        )
