"""Plain-text rendering of tables and charts for bench/example output.

The benchmark harness regenerates the paper's figures as *series of
numbers*; these helpers render them as aligned tables, horizontal bar
charts and coarse line charts so the shape of each figure is visible in a
terminal without matplotlib (which is not installed in this environment).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "bar_chart", "line_chart", "proximity_map_art"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_fmt: str = "{:.3f}",
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table.

    Floats are formatted with ``float_fmt``; everything else with ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def bar_chart(
    labels: Sequence[object],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str | None = None,
    value_fmt: str = "{:.3f}",
) -> str:
    """Render a horizontal bar chart (one row per label)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    vmax = max((v for v in values if math.isfinite(v)), default=0.0)
    scale = (width / vmax) if vmax > 0 else 0.0
    label_w = max((len(str(lab)) for lab in labels), default=0)
    out = []
    if title:
        out.append(title)
    for lab, val in zip(labels, values):
        n = int(round(val * scale)) if math.isfinite(val) else 0
        out.append(
            f"{str(lab).rjust(label_w)} | {'#' * n:<{width}} {value_fmt.format(val)}"
        )
    return "\n".join(out)


def line_chart(
    x: Sequence[float],
    y: Sequence[float],
    *,
    height: int = 12,
    width: int = 60,
    title: str | None = None,
) -> str:
    """Render a coarse character line chart of ``y`` against ``x``.

    Points are binned into a ``width x height`` character raster; the
    y-axis is annotated with min/max. Good enough to eyeball the U-shape
    of Fig. 8 or the knee of Fig. 7.
    """
    if len(x) != len(y):
        raise ValueError("x and y must have equal length")
    finite = [(a, b) for a, b in zip(x, y) if math.isfinite(a) and math.isfinite(b)]
    if not finite:
        return title or "(no finite data)"
    xs = [a for a, _ in finite]
    ys = [b for _, b in finite]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    raster = [[" "] * width for _ in range(height)]
    for a, b in finite:
        col = min(width - 1, int((a - xmin) / xspan * (width - 1)))
        row = min(height - 1, int((b - ymin) / yspan * (height - 1)))
        raster[height - 1 - row][col] = "*"
    out = []
    if title:
        out.append(title)
    out.append(f"y_max={ymax:.3f}")
    out.extend("|" + "".join(r) for r in raster)
    out.append("+" + "-" * width)
    out.append(f"y_min={ymin:.3f}   x: {xmin:.3f} .. {xmax:.3f}")
    return "\n".join(out)


def proximity_map_art(mask, *, on: str = "#", off: str = ".") -> str:
    """Render a boolean 2-D mask (a proximity map) as character art.

    Row 0 of the mask is the *bottom* of the picture (y increases upward),
    matching the geometric convention of the virtual grid.
    """
    rows = [
        "".join(on if bool(v) else off for v in row)
        for row in reversed(list(mask))
    ]
    return "\n".join(rows)


def format_mapping(mapping: Mapping[str, object], *, indent: str = "  ") -> str:
    """Render a flat mapping as aligned ``key: value`` lines."""
    if not mapping:
        return ""
    key_w = max(len(str(k)) for k in mapping)
    return "\n".join(f"{indent}{str(k).ljust(key_w)} : {v}" for k, v in mapping.items())
