"""NumPy array helpers shared across the package.

Kept deliberately small: coordinate coercion and vectorized pairwise
distances (the inner loop of every estimator).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import GeometryError

__all__ = ["as_point", "as_points", "pairwise_distances", "distances_to"]


def as_point(value: Sequence[float], name: str = "point") -> np.ndarray:
    """Coerce a 2-sequence to a float64 ``(2,)`` array, validating shape."""
    arr = np.asarray(value, dtype=np.float64)
    if arr.shape != (2,):
        raise GeometryError(f"{name} must be a 2-vector, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise GeometryError(f"{name} contains non-finite values: {arr}")
    return arr


def as_points(values: Sequence[Sequence[float]], name: str = "points") -> np.ndarray:
    """Coerce a sequence of 2-sequences to a float64 ``(n, 2)`` array."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 1 and arr.shape == (2,):
        arr = arr[np.newaxis, :]
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GeometryError(f"{name} must have shape (n, 2), got {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise GeometryError(f"{name} contains non-finite values")
    return arr


def pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distances between two point sets.

    Parameters
    ----------
    a: array of shape ``(n, 2)``
    b: array of shape ``(m, 2)``

    Returns
    -------
    Array of shape ``(n, m)`` with ``out[i, j] = ||a[i] - b[j]||``.

    Broadcast-based rather than loop-based; this is the hot path of the
    channel model and the estimators.
    """
    a = as_points(a, "a")
    b = as_points(b, "b")
    diff = a[:, np.newaxis, :] - b[np.newaxis, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def distances_to(points: np.ndarray, origin: Sequence[float]) -> np.ndarray:
    """Euclidean distance from each row of ``points`` to a single origin."""
    pts = as_points(points, "points")
    o = as_point(origin, "origin")
    d = pts - o[np.newaxis, :]
    return np.sqrt(np.einsum("ij,ij->i", d, d))
