"""Structured logging shared by every online subsystem.

The streaming service introduced ``event=... key=value`` structured log
lines; the fault-injection subsystem needs the identical discipline but
lives *below* the service layer, so the helpers moved here (``utils`` is
importable from everywhere). :mod:`repro.service.metrics` re-exports them
for backwards compatibility.

Library rule: never configure the root logger. Every subsystem logger is
``NullHandler``'d by default; applications opt in with
``logging.basicConfig(level=logging.INFO)`` (or their own handlers) and
immediately see the structured events.
"""

from __future__ import annotations

import logging

__all__ = ["get_structured_logger", "log_event"]


def get_structured_logger(name: str) -> logging.Logger:
    """A package logger with a ``NullHandler`` attached exactly once."""
    logger = logging.getLogger(name)
    if not any(isinstance(h, logging.NullHandler) for h in logger.handlers):
        logger.addHandler(logging.NullHandler())
    return logger


def _format_field(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    return f'"{text}"' if " " in text else text


def log_event(
    logger: logging.Logger, event: str, /, level: int = logging.INFO, **fields
) -> None:
    """Emit one structured ``event=... key=value`` log line.

    The line format is machine-greppable (``event=batch_flush size=8``)
    while staying readable in a terminal; parsing it back is a
    ``shlex.split`` away. Lazy: formatting only happens if the logger is
    enabled for ``level``.
    """
    if not logger.isEnabledFor(level):
        return
    parts = [f"event={event}"]
    parts += [f"{k}={_format_field(v)}" for k, v in fields.items()]
    logger.log(level, " ".join(parts))
