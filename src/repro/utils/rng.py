"""Deterministic random-number stream management.

Reproducibility discipline: every stochastic component of the simulator
(shadowing fields, fading draws, beacon jitter, interference, ...) draws
from its own named stream derived from a single experiment seed. Streams
are derived with :func:`numpy.random.SeedSequence` and string keys, so

* the same ``(seed, key)`` pair always yields the same stream,
* adding a new consumer never perturbs existing streams, and
* parallel sweeps can derive disjoint streams per trial.
"""

from __future__ import annotations

import zlib
from typing import Iterable

import numpy as np

__all__ = ["derive_seed", "derive_rng", "spawn_rngs"]


def _key_to_int(key: str | int) -> int:
    """Map a stream key to a stable 32-bit integer.

    String keys are hashed with CRC32 (stable across processes and Python
    versions, unlike the built-in ``hash``).
    """
    if isinstance(key, int):
        return key & 0xFFFFFFFF
    return zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF


def derive_seed(seed: int, *keys: str | int) -> np.random.SeedSequence:
    """Derive a :class:`~numpy.random.SeedSequence` for a named sub-stream.

    Parameters
    ----------
    seed:
        The experiment master seed.
    keys:
        Any number of string/int path components naming the consumer,
        e.g. ``derive_seed(7, "shadowing", reader_index)``.
    """
    return np.random.SeedSequence([int(seed) & 0xFFFFFFFF, *map(_key_to_int, keys)])


def derive_rng(seed: int, *keys: str | int) -> np.random.Generator:
    """Return a :class:`~numpy.random.Generator` for a named sub-stream."""
    return np.random.default_rng(derive_seed(seed, *keys))


def spawn_rngs(seed: int, n: int, *keys: str | int) -> list[np.random.Generator]:
    """Return ``n`` independent generators under a common named stream.

    Used for per-trial streams in Monte-Carlo sweeps: trial ``i`` gets
    ``spawn_rngs(seed, n, "trials")[i]`` and remains the same regardless of
    how many other trials run.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    base = derive_seed(seed, *keys)
    return [np.random.default_rng(s) for s in base.spawn(n)]


def rngs_for(seed: int, labels: Iterable[str]) -> dict[str, np.random.Generator]:
    """Return a dict of named generators, one per label."""
    return {label: derive_rng(seed, label) for label in labels}
