"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figure <fig2b|fig3|fig4|fig6|fig7|fig8>``
    Regenerate one of the paper's figures and print it.
``compare``
    VIRE vs LANDMARC (and optional extra baselines) in one environment,
    with the CDF table and the paired bootstrap verdict.
``report``
    The full reproduction report (all figures + statistics). With
    ``--from DIR`` it instead regenerates the capacity report from a
    load sweep's JSONL via the figure registry
    (:mod:`repro.analysis.registry`): ``--list-figures`` enumerates the
    registered figures, ``--figure NAME`` regenerates one in isolation,
    ``--out DIR`` writes one ``report_<figure>.json`` artifact per
    figure, and ``--json`` prints the canonical document (byte-identical
    across reruns over the same sweep — the CI load-smoke artifact).
``loadtest``
    Seeded open-loop load sweep (docs/LOADTEST.md): a deterministic
    arrival schedule (uniform/Poisson/bursty) drives the zone worker or
    the multi-zone gateway at one or more rate multipliers; each sweep
    point's witness document lands in ``load_sweep.jsonl`` and the
    fitted capacity report in ``capacity_report.json``. Same seed ⇒
    byte-identical schedule, witness and report.
``track``
    Demo: track a moving asset through the full event-driven testbed.
``serve``
    Run the real-time streaming localization service over a seeded
    scenario: live result table, then the metrics dump (cache hit rate,
    batches flushed, degraded requests, latency quantiles).
``chaos``
    Run the streaming service under a seeded fault plan (reader
    outages, burst loss, tag deaths, calibration drift, delays) and
    report availability, degradation-ladder usage and accuracy. With
    ``--json`` the output is a deterministic JSON document: running the
    same command twice must print byte-identical JSON, which the CI
    chaos-smoke job asserts.
``trace``
    Deterministic span tracing (``docs/OBSERVABILITY.md``):
    ``trace record`` runs a seeded serve session with the tracer
    enabled and streams the span forest to a JSONL trace file;
    ``trace summary`` prints the per-stage latency table (top-N by self
    time, p50/p95/p99) and the degradation-ladder breakdown;
    ``trace canon`` prints the canonical *logical* JSON (wall times
    stripped — the byte-identity artifact of the CI trace-smoke job);
    ``trace diff`` compares two traces and exits 1 when their logical
    content diverges.

Errors of the :class:`~repro.exceptions.ReproError` family (bad paths,
invalid configuration, refused resumes) print one ``error: ...`` line on
stderr and exit with code 2 — the same code argparse uses for usage
errors — instead of a traceback.

Crash resilience (``docs/RUNTIME.md``): ``serve`` accepts
``--checkpoint PATH`` (write-ahead JSONL checkpoint), ``--resume``
(continue a checkpointed session after a crash) and ``--kill-at T``
(simulate a hard kill at simulated time ``T``; exits with code 17 and
no final snapshot). ``serve --json`` prints the session's deterministic
witness document — the CI recovery-smoke job kills a seeded session,
resumes it, and asserts the resumed witness is byte-identical to an
uninterrupted run's. Both ``serve`` and ``chaos`` shut down gracefully
on SIGINT/SIGTERM: the batcher drains, a final snapshot is flushed, and
the metrics summary still prints.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
from typing import Iterator, Sequence

from . import __version__
from .analysis import cdf_comparison, format_cdf_comparison, paired_bootstrap
from .analysis.report import reproduction_report
from .baselines import (
    LandmarcEstimator,
    NearestReferenceEstimator,
    WeightedCentroidEstimator,
)
from .core.config import VIREConfig
from .core.estimator import VIREEstimator
from .exceptions import ConfigurationError, ReproError
from .experiments import figures
from .experiments.runner import run_scenario
from .experiments.scenarios import paper_scenario

__all__ = ["main", "build_parser"]

_FIGURES = {
    "fig2b": lambda args: figures.format_fig2b(
        figures.fig2b(n_trials=args.trials, base_seed=args.seed)
    ),
    "fig3": lambda args: figures.format_fig3(figures.fig3(seed=args.seed)),
    "fig4": lambda args: figures.format_fig4(figures.fig4(seed=args.seed)),
    "fig6": lambda args: figures.format_fig6(
        figures.fig6(n_trials=args.trials, base_seed=args.seed)
    ),
    "fig7": lambda args: figures.format_fig7(
        figures.fig7(n_trials=args.trials, base_seed=args.seed)
    ),
    "fig8": lambda args: figures.format_fig8(
        figures.fig8(n_trials=args.trials, base_seed=args.seed)
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VIRE (ICPP 2007) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate one paper figure")
    fig.add_argument("name", choices=sorted(_FIGURES))
    fig.add_argument("--trials", type=int, default=15)
    fig.add_argument("--seed", type=int, default=0)

    cmp_ = sub.add_parser("compare", help="VIRE vs LANDMARC in one environment")
    cmp_.add_argument("--env", default="Env3", choices=["Env1", "Env2", "Env3"])
    cmp_.add_argument("--trials", type=int, default=15)
    cmp_.add_argument("--seed", type=int, default=0)
    cmp_.add_argument(
        "--all-baselines",
        action="store_true",
        help="also run nearest-reference and soft-centroid baselines",
    )

    rep = sub.add_parser("report", help="full reproduction report")
    rep.add_argument("--trials", type=int, default=15)
    rep.add_argument("--seed", type=int, default=0)
    rep.add_argument("--no-sweeps", action="store_true",
                     help="skip the slow Fig. 7/8 sweeps")
    rep.add_argument("--from", dest="from_dir", default=None, metavar="DIR",
                     help="regenerate the capacity report from a "
                          "`loadtest --out DIR` sweep instead of running "
                          "the paper reproduction")
    rep.add_argument("--figure", default=None, metavar="NAME",
                     help="with --from: regenerate one registered figure "
                          "in isolation")
    rep.add_argument("--list-figures", action="store_true",
                     help="list the registered capacity figures and exit")
    rep.add_argument("--json", action="store_true",
                     help="with --from: print the canonical JSON document "
                          "(byte-identical across reruns; CI load smoke)")
    rep.add_argument("--out", default=None, metavar="DIR",
                     help="with --from: write one report_<figure>.json "
                          "artifact per figure into DIR")

    lt = sub.add_parser(
        "loadtest", help="seeded open-loop load sweep (docs/LOADTEST.md)"
    )
    lt.add_argument("--profile", default="steady",
                    choices=["steady", "poisson", "burst"],
                    help="traffic shape preset")
    lt.add_argument("--env", default="Env1", choices=["Env1", "Env2", "Env3"])
    lt.add_argument("--zones", type=int, default=1, metavar="N",
                    help="1 = single zone worker; >1 = the zone gateway")
    lt.add_argument("--duration", type=float, default=12.0,
                    help="schedule horizon in simulated seconds")
    lt.add_argument("--seed", type=int, default=0)
    lt.add_argument("--rate", type=float, default=4.0,
                    help="base per-zone arrival rate (queries/s)")
    lt.add_argument("--points", default="1",
                    help="comma-separated rate multipliers, one sweep "
                         "point each (e.g. 1,2,4)")
    lt.add_argument("--max-batches", type=int, default=None, metavar="K",
                    help="executor budget: at most K batches per tick "
                         "(models limited cores; omit for unbounded)")
    lt.add_argument("--admission-rate", type=float, default=None,
                    metavar="R", help="per-zone admission token rate "
                                      "(queries/s); omit to admit all")
    lt.add_argument("--subdivisions", type=int, default=None, metavar="N",
                    help="override the VIRE virtual grid subdivisions "
                         "(small N = cheap smoke runs)")
    lt.add_argument("--out", default=None, metavar="DIR",
                    help="write load_sweep.jsonl + capacity_report.json "
                         "into DIR")
    lt.add_argument("--json", action="store_true",
                    help="print the canonical capacity report JSON "
                         "(byte-identical across same-seed reruns)")
    lt.add_argument("--quiet", action="store_true",
                    help="suppress the per-point progress lines")

    trk = sub.add_parser("track", help="moving-asset tracking demo")
    trk.add_argument("--env", default="Env3", choices=["Env1", "Env2", "Env3"])
    trk.add_argument("--seed", type=int, default=7)

    srv = sub.add_parser("serve", help="run the streaming localization service")
    srv.add_argument("--env", default="Env3", choices=["Env1", "Env2", "Env3"])
    srv.add_argument("--duration", type=float, default=10.0,
                     help="streamed session length in simulated seconds")
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument("--batch-size", type=int, default=8,
                     help="micro-batch flush size")
    srv.add_argument("--max-latency", type=float, default=1.0,
                     help="micro-batch flush deadline (service seconds)")
    srv.add_argument("--query-interval", type=float, default=2.0,
                     help="per-tag localization query period (service seconds)")
    srv.add_argument("--no-cache", action="store_true",
                     help="disable the interpolation cache")
    srv.add_argument("--quantization-db", type=float, default=0.0,
                     help="cache key quantization (0 = exact keys)")
    srv.add_argument("--quiet", action="store_true",
                     help="suppress the live per-result rows")
    srv.add_argument("--prometheus", action="store_true",
                     help="append the full Prometheus text exposition")
    srv.add_argument("--checkpoint", default=None, metavar="PATH",
                     help="write-ahead JSONL checkpoint file "
                          "(see docs/RUNTIME.md)")
    srv.add_argument("--resume", action="store_true",
                     help="resume the session from --checkpoint "
                          "(replays the seeded stream to the last "
                          "snapshot, then continues live)")
    srv.add_argument("--kill-at", type=float, default=None, metavar="T",
                     help="simulate a hard kill at simulated time T "
                          "(no drain, no final snapshot; exit code 17)")
    srv.add_argument("--json", action="store_true",
                     help="print the deterministic witness document "
                          "(CI recovery smoke)")
    srv.add_argument("--zones", type=int, default=None, metavar="N",
                     help="run N shared-nothing zones behind the gateway "
                          "(repro.zones; see docs/ZONES.md)")
    srv.add_argument("--parallel", action="store_true",
                     help="with --zones: one process per zone "
                          "(bit-identical to the serial lockstep)")
    srv.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="with --zones: one write-ahead checkpoint file "
                          "per zone in DIR (zone respawn and --resume)")
    srv.add_argument("--kill-zone", default=None, metavar="ZID@T",
                     help="with --zones: crash zone ZID at simulated "
                          "time T; the gateway respawns it from its "
                          "checkpoint and replays the gap (CI "
                          "zone-failover smoke)")
    srv.add_argument("--no-failover", action="store_true",
                     help="with --zones: bare gateway loop without the "
                          "supervision layer (no retries, no respawn; "
                          "bit-identical to the supervised loop on a "
                          "fault-free run)")

    cha = sub.add_parser(
        "chaos", help="streaming service under an injected fault plan"
    )
    cha.add_argument("--env", default="Env1", choices=["Env1", "Env2", "Env3"])
    cha.add_argument("--duration", type=float, default=45.0,
                     help="streamed session length in simulated seconds "
                          "(middleware staleness horizon is 30s, so runs "
                          "longer than that exercise the full ladder)")
    cha.add_argument("--seed", type=int, default=0,
                     help="seed for both the scenario and the fault plan")
    cha.add_argument("--preset", default="moderate",
                     choices=["none", "light", "moderate", "severe",
                              "drift"],
                     help="fault-plan intensity preset")
    cha.add_argument("--calibrate", action="store_true",
                     help="enable the self-healing calibration loop: "
                          "online per-reader drift correction and "
                          "reference-tag quarantine from reference "
                          "residuals (docs/CALIBRATION.md)")
    cha.add_argument("--outage-reader", default=None,
                     help="add a hard outage of this reader id "
                          "(e.g. reader-0) on top of the preset")
    cha.add_argument("--outage-start", type=float, default=8.0,
                     help="outage start (simulated seconds)")
    cha.add_argument("--outage-duration", type=float, default=30.0,
                     help="outage length (simulated seconds)")
    cha.add_argument("--query-interval", type=float, default=1.0,
                     help="per-tag localization query period")
    cha.add_argument("--strict", action="store_true",
                     help="disable partial snapshots (pre-faults behaviour)")
    cha.add_argument("--json", action="store_true",
                     help="print a deterministic JSON summary (CI smoke)")
    cha.add_argument("--zones", type=int, default=None, metavar="N",
                     help="run the plan through the N-zone gateway and "
                          "add a zone-scoped control-plane fault "
                          "(see docs/FAULTS.md)")
    cha.add_argument("--zone-preset", default="crash",
                     choices=["none", "crash", "hang", "partition",
                              "brownout"],
                     help="zone-scoped fault preset (with --zones)")
    cha.add_argument("--zone-id", default="z0",
                     help="target zone for --zone-preset (with --zones)")
    cha.add_argument("--zone-fault-start", type=float, default=8.0,
                     help="zone fault start (simulated seconds)")
    cha.add_argument("--zone-fault-duration", type=float, default=10.0,
                     help="zone fault window length (partition/brownout)")

    trc = sub.add_parser(
        "trace", help="record, summarize and diff deterministic span traces"
    )
    tsub = trc.add_subparsers(dest="trace_command", required=True)
    trec = tsub.add_parser(
        "record", help="record a seeded serve session with tracing enabled"
    )
    trec.add_argument("--env", default="Env1",
                      choices=["Env1", "Env2", "Env3"])
    trec.add_argument("--duration", type=float, default=8.0,
                      help="streamed session length in simulated seconds")
    trec.add_argument("--seed", type=int, default=0)
    trec.add_argument("--query-interval", type=float, default=1.0,
                      help="per-tag localization query period")
    trec.add_argument("--out", required=True, metavar="PATH",
                      help="JSONL trace file to write")
    tsum = tsub.add_parser(
        "summary", help="per-stage latency table and ladder breakdown"
    )
    tsum.add_argument("path", help="trace file (from `trace record`)")
    tsum.add_argument("--top", type=int, default=10,
                      help="stages to list, ranked by self time")
    tcan = tsub.add_parser(
        "canon",
        help="print the canonical logical JSON (wall times stripped; "
             "byte-identical across seeded reruns)",
    )
    tcan.add_argument("path", help="trace file (from `trace record`)")
    tdif = tsub.add_parser(
        "diff", help="compare two traces; exit 1 when they diverge"
    )
    tdif.add_argument("a", help="first trace file")
    tdif.add_argument("b", help="second trace file")
    tdif.add_argument("--wall", action="store_true",
                      help="also compare wall-clock fields "
                           "(only meaningful for identical recordings)")
    tdif.add_argument("--max-diffs", type=int, default=10,
                      help="stop after this many reported divergences")

    hm = sub.add_parser("heatmap", help="spatial error map of an estimator")
    hm.add_argument("--env", default="Env3", choices=["Env1", "Env2", "Env3"])
    hm.add_argument("--estimator", default="vire",
                    choices=["vire", "landmarc", "softvire"])
    hm.add_argument("--resolution", type=int, default=9)
    hm.add_argument("--trials", type=int, default=4)
    hm.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_figure(args) -> str:
    return _FIGURES[args.name](args)


def _cmd_compare(args) -> str:
    scenario = paper_scenario(args.env, n_trials=args.trials, base_seed=args.seed)
    estimators = [
        LandmarcEstimator(),
        VIREEstimator(scenario.grid, VIREConfig(target_total_tags=900)),
    ]
    if args.all_baselines:
        estimators += [NearestReferenceEstimator(), WeightedCentroidEstimator()]
    result = run_scenario(scenario, estimators)
    lines = [f"{args.env}, {args.trials} trials:"]
    for est in result.estimators:
        s = est.summary()
        lines.append(
            f"  {est.estimator_name:18s} mean {s.mean:.3f} m, "
            f"median {s.median:.3f}, p90 {s.p90:.3f}, max {s.maximum:.3f}"
        )
    lines.append("")
    lines.append(format_cdf_comparison(cdf_comparison(result)))
    lines.append("")
    lines.append(str(paired_bootstrap(result, "LANDMARC", "VIRE")))
    return "\n".join(lines)


def _cmd_report(args) -> str:
    import json as _json

    from .analysis.registry import (
        build_capacity_report,
        build_figure,
        figure_names,
        get_figure,
        load_sweep,
    )

    if args.list_figures:
        lines = ["registered capacity figures:"]
        for name in figure_names():
            spec = get_figure(name)
            lines.append(f"  {name:22s} {spec.description}")
        return "\n".join(lines)
    if args.from_dir is None:
        for flag, name in (
            (args.figure, "--figure"),
            (args.json, "--json"),
            (args.out, "--out"),
        ):
            if flag:
                raise ConfigurationError(f"{name} requires --from DIR")
        return reproduction_report(
            n_trials=args.trials,
            base_seed=args.seed,
            include_sweeps=not args.no_sweeps,
        )

    points = load_sweep(args.from_dir)
    if args.figure is not None:
        doc = build_figure(args.figure, points)
    else:
        doc = build_capacity_report(points, meta={"n_points": len(points)})
    if args.out is not None:
        import os

        os.makedirs(args.out, exist_ok=True)
        names = (args.figure,) if args.figure is not None else figure_names()
        written = []
        for name in names:
            spec = get_figure(name)
            path = os.path.join(args.out, spec.artifact)
            with open(path, "w") as fh:
                fh.write(
                    _json.dumps(
                        build_figure(name, points),
                        indent=2,
                        sort_keys=True,
                    )
                    + "\n"
                )
            written.append(spec.artifact)
        if not args.json:
            return (
                f"regenerated {len(written)} figure artifact(s) from "
                f"{len(points)} sweep point(s) -> {args.out}: "
                + ", ".join(written)
            )
    if args.json:
        return _json.dumps(doc, sort_keys=True, indent=2)
    return _format_capacity_report(doc, points)


def _format_capacity_report(doc, points) -> str:
    """Human view of a regenerated capacity report (or one figure)."""
    lines = [f"capacity report over {len(points)} sweep point(s):"]
    figures = doc.get("figures", {doc.get("figure", "figure"): doc})
    for name in sorted(figures):
        fig = figures[name]
        lines.append(f"\n{name}: {fig.get('description', '')}")
        data = fig.get("data", {})
        if "series" in data:
            for row in data["series"]:
                cells = ", ".join(
                    f"{k}={v}" for k, v in row.items() if k != "profile"
                )
                lines.append(f"  {row.get('profile', '?'):14s} {cells}")
        elif "coefficients" in data:
            lines.append(
                f"  intercept {data['intercept']}  r2 {data['r2']}  "
                f"(n={data['n_points']})"
            )
            for feat, coef in data["coefficients"].items():
                lines.append(f"  {feat:20s} {coef:+}")
        if "peak_sustained_per_s" in data:
            lines.append(
                f"  peak sustained {data['peak_sustained_per_s']} "
                f"localizations/s"
            )
    return "\n".join(lines)


def _cmd_loadtest(args) -> str:
    import json as _json

    from .analysis.registry import SWEEP_FILENAME, build_capacity_report
    from .loadtest import preset_profile, run_load_test
    from .service import ServiceConfig

    try:
        multipliers = [
            float(tok) for tok in args.points.split(",") if tok.strip()
        ]
    except ValueError:
        raise ConfigurationError(
            f"--points expects comma-separated numbers, got {args.points!r}"
        ) from None
    if not multipliers:
        raise ConfigurationError("--points names no sweep points")
    if args.zones < 1:
        raise ConfigurationError(f"--zones must be >= 1, got {args.zones}")

    base = preset_profile(args.profile).with_(
        environment=args.env,
        n_zones=args.zones,
        duration_s=args.duration,
        seed=args.seed,
        rate_per_s=args.rate,
        max_batches_per_tick=args.max_batches,
        admission_rate_per_s=args.admission_rate,
    )
    config = None
    if args.subdivisions is not None:
        config = ServiceConfig(vire=VIREConfig(subdivisions=args.subdivisions))

    quiet = args.quiet or args.json
    reports = []
    for mult in multipliers:
        profile = base.with_(
            name=f"{args.profile}-x{mult:g}",
            rate_per_s=args.rate * mult,
        )
        report = run_load_test(profile, config=config)
        reports.append(report)
        if not quiet:
            slo = report.slo
            print(
                f"  {profile.name:14s} offered {report.offered:5d}  "
                f"served {report.served:5d}  "
                f"avail {100 * slo['availability']:5.1f}%  "
                f"p99 {slo['latency']['p99_s']:.3f}s  "
                f"sustained {slo['sustained_per_s']:.1f}/s  "
                f"(wall {report.wall_s:.2f}s)"
            )

    points = [r.witness_document() for r in reports]
    capacity = build_capacity_report(
        points,
        meta={
            "profile": args.profile,
            "env": args.env,
            "zones": args.zones,
            "seed": args.seed,
            "rate_per_s": args.rate,
            "multipliers": multipliers,
            "duration_s": args.duration,
        },
    )
    if args.out is not None:
        import os

        os.makedirs(args.out, exist_ok=True)
        with open(os.path.join(args.out, SWEEP_FILENAME), "w") as fh:
            for point in points:
                fh.write(_json.dumps(point, sort_keys=True) + "\n")
        with open(os.path.join(args.out, "capacity_report.json"), "w") as fh:
            fh.write(_json.dumps(capacity, sort_keys=True, indent=2) + "\n")
        if not quiet:
            print(
                f"  wrote {SWEEP_FILENAME} ({len(points)} point(s)) and "
                f"capacity_report.json -> {args.out}"
            )
    if args.json:
        return _json.dumps(capacity, sort_keys=True, indent=2)
    return _format_capacity_report(capacity, points)


def _cmd_track(args) -> str:
    from .hardware.deployment import build_paper_deployment
    from .hardware.middleware import SmoothingSpec
    from .rf.environments import environment_by_name
    from .tracking import KalmanFilter2D, TagTracker, Trajectory, evaluate_track
    from .utils.ascii import format_table

    route = Trajectory.constant_speed(
        [(0.5, 0.5), (2.5, 0.7), (2.4, 2.5), (0.6, 2.4)],
        speed_mps=0.15,
        start_time_s=10.0,
    )
    deployment = build_paper_deployment(
        environment_by_name(args.env),
        tracking_tags={"asset": route.position_at(0.0)},
        seed=args.seed,
        smoothing=SmoothingSpec(mode="window", window=10),
        tracking_smoothing=SmoothingSpec(mode="window", window=2),
    )
    simulator = deployment.simulator
    vire = VIREEstimator(deployment.grid, VIREConfig(target_total_tags=900))
    tracker = TagTracker(
        vire, KalmanFilter2D(measurement_sigma_m=0.8, process_accel=0.08)
    )
    simulator.warm_up()
    rows = []
    while simulator.now < route.end_time_s:
        deployment.move_tracking_tag("asset", route.position_at(simulator.now))
        simulator.run_for(3.0)
        point = tracker.ingest_from(
            simulator.now, lambda: simulator.reading_for("asset")
        )
        if point.filtered is not None:
            true = route.position_at(simulator.now)
            rows.append(
                [
                    f"{simulator.now:.0f}s",
                    f"({true[0]:.2f}, {true[1]:.2f})",
                    f"({point.filtered[0]:.2f}, {point.filtered[1]:.2f})",
                ]
            )
    stats = evaluate_track(route, tracker.fixes())
    table = format_table(
        ["t", "true", "tracked"], rows, title=f"tracking in {args.env}"
    )
    return (
        table
        + f"\n\nRMSE {stats.rmse_m:.3f} m over {stats.n_fixes} fixes "
        + f"({tracker.dropout_count} dropouts)"
    )


@contextlib.contextmanager
def _graceful_sigterm() -> Iterator[None]:
    """Translate SIGTERM into :class:`KeyboardInterrupt` for the session.

    :meth:`LocalizationService.run` treats ``KeyboardInterrupt`` as a
    graceful shutdown (drain + final checkpoint snapshot + summary), so
    routing SIGTERM through the same path makes ``kill <pid>`` as clean
    as Ctrl-C. Restores the previous handler on exit; degrades to a
    no-op off the main thread (signal handlers cannot be installed
    there).
    """

    def _raise(signum, frame):  # pragma: no cover - exercised via signal
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _raise)
    except ValueError:  # not the main thread: keep default behaviour
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _cmd_serve(args) -> str:
    import json as _json

    from .experiments.scenarios import paper_scenario
    from .faults import CrashPoint, SimulatedCrash
    from .service import LocalizationService, ServiceConfig

    config = ServiceConfig(
        max_batch_size=args.batch_size,
        max_latency_s=args.max_latency,
        query_interval_s=args.query_interval,
        cache_enabled=not args.no_cache,
        cache_quantization_db=args.quantization_db,
    )
    if args.zones is not None:
        return _cmd_serve_zones(args, config)
    for flag, name in (
        (args.parallel, "--parallel"),
        (args.checkpoint_dir, "--checkpoint-dir"),
        (args.kill_zone, "--kill-zone"),
        (args.no_failover, "--no-failover"),
    ):
        if flag:
            raise ConfigurationError(f"{name} requires --zones N")
    scenario = paper_scenario(args.env, n_trials=1, base_seed=args.seed)
    service = LocalizationService(config)
    crash_point = None
    if args.kill_at is not None:
        crash_point = CrashPoint(at_s=args.kill_at)

    def live_row(result) -> None:
        flag = f" DEGRADED({result.reason})" if result.degraded else ""
        print(
            f"  t={result.completed_at_s:7.2f}s  {result.tag_id:8s} "
            f"-> ({result.position[0]:5.2f}, {result.position[1]:5.2f})  "
            f"[{result.estimator}]{flag}"
        )

    if args.resume and args.checkpoint is None:
        raise ConfigurationError("--resume requires --checkpoint PATH")
    if args.resume and args.kill_at is not None:
        raise ConfigurationError(
            "--resume and --kill-at conflict: --resume continues a crashed "
            "session; to crash it again, run a separate serve with --kill-at"
        )
    quiet = args.quiet or args.json
    if not quiet:
        print(f"serving {args.env} for {args.duration:g}s (seed {args.seed}):")
    try:
        with _graceful_sigterm():
            report = service.run(
                scenario,
                args.duration,
                on_result=None if quiet else live_row,
                checkpoint_path=args.checkpoint,
                resume=args.resume,
                crash_point=crash_point,
            )
    except SimulatedCrash as crash:
        print(
            f"simulated crash: {crash}"
            + (f" (checkpoint: {args.checkpoint})" if args.checkpoint else ""),
            file=sys.stderr,
        )
        raise SystemExit(17) from crash

    if args.json:
        # Deterministic witness only: a resumed session must print
        # byte-identical JSON to an uninterrupted one (CI recovery smoke).
        doc = report.witness_document()
        doc["env"] = args.env
        doc["seed"] = args.seed
        doc["duration_s"] = args.duration
        return _json.dumps(doc, sort_keys=True, indent=2)

    s = report.summary
    lines = [
        "",
        f"session summary ({args.env}, {s['session_duration_s']:g}s streamed, "
        f"seed {args.seed}):",
        f"  requests served      {s['results']:.0f}"
        f"  (failed {s['failed']:.0f})",
        f"  degraded requests    {s['degraded']:.0f} "
        f"({100 * s['degraded_fraction']:.1f}%)",
        f"  batches flushed      {s['batches_flushed']:.0f}",
        f"  records streamed     {s['records_streamed']:.0f} "
        f"(dropped {s['records_dropped']:.0f}, "
        f"queue high-water {s['queue_high_watermark']:.0f})",
        f"  cache hit rate       {100 * s['cache_hit_rate']:.1f}% "
        f"({s['cache_hits']:.0f} hits / {s['cache_misses']:.0f} misses)",
        f"  latency p50          {1e3 * s['latency_p50_s']:.3f} ms",
        f"  latency p99          {1e3 * s['latency_p99_s']:.3f} ms",
        f"  throughput           {s['localizations_per_s']:.1f} localizations/s "
        f"(wall {s['wall_time_s']:.2f}s)",
        f"  mean error           {report.mean_error_m:.3f} m "
        f"over {len(report.errors_m)} ground-truth results",
    ]
    if "interrupted" in s:
        lines.append("  shutdown             graceful (interrupted; "
                     "batcher drained, final snapshot flushed)")
    if "resumed" in s:
        lines.append(
            f"  resumed              yes "
            f"({s['resume_results_restored']:.0f} results restored "
            f"from checkpoint)"
        )
    if "checkpoint_snapshots" in s:
        lines.append(
            f"  checkpoint           {s['checkpoint_results_logged']:.0f} "
            f"results logged, {s['checkpoint_snapshots']:.0f} snapshot(s) "
            f"-> {args.checkpoint}"
        )
    if args.prometheus:
        lines += ["", report.render_prometheus()]
    return "\n".join(lines)


def _parse_kill_zone(value: str) -> tuple[str, float]:
    """Parse a ``--kill-zone ZID@T`` operand into ``(zone_id, at_s)``."""
    zone_id, sep, at_text = value.partition("@")
    if not sep or not zone_id:
        raise ConfigurationError(
            f"--kill-zone expects ZID@T (e.g. z1@5.0), got {value!r}"
        )
    try:
        at_s = float(at_text)
    except ValueError:
        raise ConfigurationError(
            f"--kill-zone time must be a number, got {at_text!r}"
        ) from None
    return zone_id, at_s


def _cmd_serve_zones(args, config) -> str:
    """``serve --zones N``: the scaled site through the zone gateway."""
    import json as _json

    from .faults import FaultPlan, ZoneCrashFault
    from .zones import ZoneGateway, scaled_site_plan

    if args.zones < 1:
        raise ConfigurationError(f"--zones must be >= 1, got {args.zones}")
    for flag, name in (
        (args.checkpoint, "--checkpoint"),
        (args.kill_at, "--kill-at"),
    ):
        if flag:
            raise ConfigurationError(
                f"{name} is not supported with --zones: the gateway owns "
                f"one checkpoint file per zone (use --checkpoint-dir)"
            )
    if args.resume and args.checkpoint_dir is None:
        raise ConfigurationError(
            "--resume with --zones requires --checkpoint-dir DIR"
        )
    if args.checkpoint_dir is not None:
        import os

        os.makedirs(args.checkpoint_dir, exist_ok=True)
    plan = scaled_site_plan(args.env, args.zones, seed=args.seed)
    fault_plan = None
    if args.kill_zone is not None:
        zone_id, at_s = _parse_kill_zone(args.kill_zone)
        if zone_id not in {spec.zone_id for spec in plan.zones}:
            raise ConfigurationError(
                f"--kill-zone targets unknown zone {zone_id!r} "
                f"(have z0..z{args.zones - 1})"
            )
        fault_plan = FaultPlan(faults=(ZoneCrashFault(zone_id, at_s=at_s),))
    gateway_kw = {}
    if args.no_failover:
        gateway_kw["failover"] = None
    gateway = ZoneGateway(
        plan, config,
        fault_plan=fault_plan,
        checkpoint_dir=args.checkpoint_dir,
        **gateway_kw,
    )
    quiet = args.quiet or args.json
    if not quiet:
        print(
            f"serving {args.env} x {args.zones} zones for "
            f"{args.duration:g}s (seed {args.seed}"
            f"{', parallel' if args.parallel else ''}):"
        )
    with _graceful_sigterm():
        report = gateway.run(
            args.duration, parallel=args.parallel, resume=args.resume
        )

    if args.json:
        # Deterministic witness only: two seeded runs must print
        # byte-identical JSON (CI zone-smoke job).
        doc = report.witness_document()
        doc["env"] = args.env
        doc["seed"] = args.seed
        doc["duration_s"] = args.duration
        doc["zones_requested"] = args.zones
        # Only a faulted run earns a supervision block: the fault-free
        # JSON stays byte-identical to --parallel and to the
        # pre-failover gateway.
        if fault_plan is not None and "availability" in report.summary:
            fs = report.summary
            doc["failover"] = {
                "availability": round(fs["availability"], 9),
                "zone_crashes": int(fs["zone_crashes"]),
                "zone_respawns": int(fs["zone_respawns"]),
                "zone_timeouts": int(fs["zone_timeouts"]),
                "zone_link_failures": int(fs["zone_link_failures"]),
                "zones_down": int(fs["zones_down"]),
                "requests_shed": int(fs["requests_shed"]),
                "handoffs_rerouted": int(fs["handoffs_rerouted"]),
                "interim_results": int(fs["interim_results"]),
            }
        return _json.dumps(doc, sort_keys=True, indent=2)

    s = report.summary
    lines = [
        "",
        f"site summary ({args.env} x {int(s['zones'])} zones, "
        f"seed {args.seed}):",
        f"  requests served      {s['results']:.0f}"
        f"  (failed {s['failed']:.0f})",
        f"  degraded requests    {s['degraded']:.0f}",
        f"  handoffs             {s['handoffs']:.0f}",
        f"  records streamed     {s['records_streamed']:.0f}",
        f"  throughput           {s['localizations_per_s']:.1f} "
        f"localizations/s (wall {s['wall_time_s']:.2f}s)",
    ]
    if "availability" in s:
        lines.append(
            f"  availability         {100 * s['availability']:.2f}%  "
            f"(crashes {s['zone_crashes']:.0f}, respawns "
            f"{s['zone_respawns']:.0f}, zones down at end "
            f"{s['zones_down']:.0f})"
        )
        if s["interim_results"] or s["requests_shed"] or \
                s["handoffs_rerouted"]:
            lines.append(
                f"  degraded service     interim answers "
                f"{s['interim_results']:.0f}, shed queries "
                f"{s['requests_shed']:.0f}, rerouted handoffs "
                f"{s['handoffs_rerouted']:.0f}"
            )
    if "interrupted" in s:
        lines.append("  shutdown             graceful (interrupted; "
                     "all zones drained)")
    for zid, zreport in report.zones.items():
        zs = zreport.summary
        lines.append(
            f"  zone {zid:8s} results {zs['results']:.0f} "
            f"(degraded {zs['degraded']:.0f}, failed {zs['failed']:.0f}), "
            f"mean error {zreport.mean_error_m:.3f} m"
        )
    if args.prometheus:
        lines += ["", report.render_prometheus()]
    return "\n".join(lines)


def _cmd_chaos_zones(args) -> str:
    """``chaos --zones N``: control-plane faults through the gateway.

    The record-path preset still applies (unprefixed faults reach every
    zone verbatim via :func:`slice_fault_plan`); on top of it one
    zone-scoped fault from ``--zone-preset`` exercises the gateway's
    failover path: crash → respawn + gap replay, hang → deadline
    timeouts then kill, partition → fall behind and catch up,
    brownout → admission saturation.
    """
    import json as _json

    from .faults import (
        FaultPlan,
        ReaderOutageFault,
        chaos_preset,
        zone_chaos_preset,
    )
    from .service import ServiceConfig
    from .zones import ZoneGateway, scaled_site_plan

    if args.zones < 1:
        raise ConfigurationError(f"--zones must be >= 1, got {args.zones}")
    site = scaled_site_plan(args.env, args.zones, seed=args.seed)
    zone_ids = {spec.zone_id for spec in site.zones}
    if args.zone_preset != "none" and args.zone_id not in zone_ids:
        raise ConfigurationError(
            f"--zone-id {args.zone_id!r} is not in the site "
            f"(have z0..z{args.zones - 1})"
        )
    record_plan = chaos_preset(args.preset, seed=args.seed)
    if args.outage_reader is not None:
        record_plan = record_plan.with_fault(
            ReaderOutageFault(
                reader_id=args.outage_reader,
                start_s=args.outage_start,
                duration_s=args.outage_duration,
            )
        )
    zone_faults = zone_chaos_preset(
        args.zone_preset,
        zone_id=args.zone_id,
        seed=args.seed,
        start_s=args.zone_fault_start,
        duration_s=args.zone_fault_duration,
    )
    plan = FaultPlan(
        tuple(record_plan) + tuple(zone_faults), seed=args.seed
    )
    config = ServiceConfig(
        query_interval_s=args.query_interval,
        allow_partial=not args.strict,
    )
    with _graceful_sigterm():
        report = ZoneGateway(site, config, fault_plan=plan).run(
            args.duration
        )
    s = report.summary

    if args.json:
        doc = {
            "env": args.env,
            "seed": args.seed,
            "zones": args.zones,
            "preset": args.preset,
            "zone_preset": args.zone_preset,
            "zone_id": args.zone_id,
            "duration_s": args.duration,
            "faults": len(plan),
            "requests": int(s["requests"]),
            "results": int(s["results"]),
            "failed": int(s["failed"]),
            "degraded": int(s["degraded"]),
            "availability": round(s["availability"], 9),
            "zone_crashes": int(s["zone_crashes"]),
            "zone_respawns": int(s["zone_respawns"]),
            "zone_timeouts": int(s["zone_timeouts"]),
            "zone_link_failures": int(s["zone_link_failures"]),
            "zones_down": int(s["zones_down"]),
            "interim_results": int(s["interim_results"]),
            "requests_shed": int(s["requests_shed"]),
            "handoffs_rerouted": int(s["handoffs_rerouted"]),
            "by_zone": {
                zid: {
                    "results": int(z.summary["results"]),
                    "degraded": int(z.summary["degraded"]),
                    "mean_error_m": round(z.mean_error_m, 9),
                }
                for zid, z in report.zones.items()
            },
        }
        return _json.dumps(doc, sort_keys=True, indent=2)

    lines = [
        f"zone chaos session ({args.env} x {args.zones} zones, "
        f"record preset {args.preset}, zone preset {args.zone_preset} "
        f"on {args.zone_id}, seed {args.seed}, {args.duration:g}s):",
        f"  fault plan           {len(plan)} fault(s): {plan.describe()}",
        f"  requests             {s['requests']:.0f}"
        f"  (answered {s['results']:.0f}, failed {s['failed']:.0f})",
        f"  availability         {100 * s['availability']:.2f}%",
        f"  supervision          crashes {s['zone_crashes']:.0f}, "
        f"respawns {s['zone_respawns']:.0f}, timeouts "
        f"{s['zone_timeouts']:.0f}, link failures "
        f"{s['zone_link_failures']:.0f}",
        f"  degraded service     interim {s['interim_results']:.0f}, "
        f"shed {s['requests_shed']:.0f}, rerouted handoffs "
        f"{s['handoffs_rerouted']:.0f}, zones down at end "
        f"{s['zones_down']:.0f}",
    ]
    for zid, zreport in report.zones.items():
        zs = zreport.summary
        lines.append(
            f"  zone {zid:8s} results {zs['results']:.0f} "
            f"(degraded {zs['degraded']:.0f}), "
            f"mean error {zreport.mean_error_m:.3f} m"
        )
    return "\n".join(lines)


def _calibration_witness(report, plan, summary) -> dict:
    """The chaos command's calibration section: a determinism witness.

    Per-reader *injected* bias (what the fault plan's drift models put
    in, evaluated at session end) against the corrector's *estimated*
    bias (what came out), plus the quarantine/readmit event log. Pure
    functions of the seed — the CI smoke job byte-diffs repeat runs.
    """
    from .faults import CalibrationDriftFault

    end_s = float(summary.get("session_end_s", 0.0))
    injected: dict[str, float] = {}
    for fault in plan:
        if isinstance(fault, CalibrationDriftFault):
            injected[fault.reader_id] = (
                injected.get(fault.reader_id, 0.0) + fault.bias_at(end_s)
            )
    bias_table = {}
    for key in sorted(summary):
        if key.startswith("calibration_bias_") and key.endswith("_db"):
            reader = key[len("calibration_bias_"):-len("_db")]
            bias_table[reader] = {
                "injected_db": round(injected.get(reader, 0.0), 6),
                "estimated_db": round(float(summary[key]), 6),
            }
    return {
        "bias_table": bias_table,
        "events": [dict(e) for e in report.calibration_events],
        "quarantined": int(summary.get("calibration_quarantined", 0)),
        "transitions": int(summary.get("calibration_transitions", 0)),
    }


def _cmd_chaos(args) -> str:
    import json as _json

    from .experiments.scenarios import paper_scenario
    from .faults import FaultPlan, ReaderOutageFault, chaos_preset
    from .service import LocalizationService, ServiceConfig

    if args.zones is not None:
        return _cmd_chaos_zones(args)
    plan = chaos_preset(args.preset, seed=args.seed)
    if args.outage_reader is not None:
        plan = plan.with_fault(
            ReaderOutageFault(
                reader_id=args.outage_reader,
                start_s=args.outage_start,
                duration_s=args.outage_duration,
            )
        )
    calibration = None
    if args.calibrate:
        from .calibration import CalibrationPolicy

        calibration = CalibrationPolicy()
    config = ServiceConfig(
        query_interval_s=args.query_interval,
        allow_partial=not args.strict,
        calibration=calibration,
    )
    scenario = paper_scenario(args.env, n_trials=1, base_seed=args.seed)
    with _graceful_sigterm():
        report = LocalizationService(config).run(
            scenario, args.duration, fault_plan=plan
        )
    s = report.summary
    reasons: dict[str, int] = {}
    for result in report.results:
        if result.reason is not None:
            reasons[result.reason] = reasons.get(result.reason, 0) + 1

    if args.json:
        # Deterministic fields only (no wall-clock): same seed ⇒ the CI
        # smoke job must see byte-identical output across repeat runs.
        doc = {
            "env": args.env,
            "seed": args.seed,
            "preset": args.preset,
            "duration_s": args.duration,
            "faults": len(plan),
            "requests": int(s["requests"]),
            "results": int(s["results"]),
            "failed": int(s["failed"]),
            "degraded": int(s["degraded"]),
            "degraded_reasons": {k: reasons[k] for k in sorted(reasons)},
            "availability": round(s["availability"], 9),
            "mean_error_m": round(report.mean_error_m, 9),
            "records_streamed": int(s["records_streamed"]),
            "fault_records": {
                key.removeprefix("fault_records_"): int(value)
                for key, value in sorted(s.items())
                if key.startswith("fault_records_")
            },
            "frames_received": int(s["frames_received"]),
            "frames_dropped": int(s["frames_dropped"]),
            "breaker_transitions": int(s["breaker_transitions"]),
        }
        if args.calibrate:
            doc["calibration"] = _calibration_witness(report, plan, s)
        return _json.dumps(doc, sort_keys=True, indent=2)

    lines = [
        f"chaos session ({args.env}, preset {args.preset}, seed {args.seed}, "
        f"{args.duration:g}s):",
        f"  fault plan           {len(plan)} fault(s): {plan.describe()}",
        f"  requests             {s['requests']:.0f}"
        f"  (answered {s['results']:.0f}, failed {s['failed']:.0f})",
        f"  availability         {100 * s['availability']:.2f}%",
        f"  degraded             {s['degraded']:.0f} "
        f"({100 * s['degraded_fraction']:.1f}%)"
        + (f"  by reason: {reasons}" if reasons else ""),
        f"  fault records        seen {s.get('fault_records_seen', 0):.0f}, "
        f"dropped {s.get('fault_records_dropped', 0):.0f}, "
        f"modified {s.get('fault_records_modified', 0):.0f}, "
        f"delayed {s.get('fault_records_delayed', 0):.0f}",
        f"  frames               received {s['frames_received']:.0f}, "
        f"dropped {s['frames_dropped']:.0f}",
        f"  breaker transitions  {s['breaker_transitions']:.0f} "
        f"(open readers at end: {s['open_readers']:.0f})",
        f"  mean error           {report.mean_error_m:.3f} m "
        f"over {len(report.errors_m)} ground-truth results",
    ]
    if args.calibrate:
        cal = _calibration_witness(report, plan, s)
        lines.append(
            f"  calibration          {cal['transitions']} trust "
            f"transition(s), {cal['quarantined']} tag(s) quarantined at end"
        )
        for reader, row in cal["bias_table"].items():
            lines.append(
                f"    bias {reader:<12} injected {row['injected_db']:+7.3f} dB"
                f"  estimated {row['estimated_db']:+7.3f} dB"
            )
        for event in cal["events"]:
            lines.append(
                f"    t={event['t']:6.1f}s  {event['event']:<10} {event['tag']}"
            )
    return "\n".join(lines)


def _cmd_trace(args) -> str | tuple[str, int]:
    from .obs import (
        TraceWriter,
        Tracer,
        canonical_logical_json,
        diff_documents,
        format_summary,
        read_trace,
    )

    if args.trace_command == "record":
        from .experiments.scenarios import paper_scenario
        from .service import LocalizationService, ServiceConfig

        config = ServiceConfig(query_interval_s=args.query_interval)
        scenario = paper_scenario(args.env, n_trials=1, base_seed=args.seed)
        with TraceWriter(
            args.out,
            meta={
                "env": args.env,
                "seed": args.seed,
                "duration_s": args.duration,
            },
        ) as writer:
            tracer = Tracer(sink=writer.sink)
            report = LocalizationService(config).run(
                scenario, args.duration, tracer=tracer
            )
        return (
            f"recorded {writer.spans_written} root spans "
            f"({tracer.spans_recorded} spans total) over "
            f"{len(report.results)} served results -> {args.out}"
        )
    if args.trace_command == "summary":
        header, docs = read_trace(args.path)
        return format_summary(header, docs, top=args.top)
    if args.trace_command == "canon":
        _, docs = read_trace(args.path)
        return canonical_logical_json(docs)
    # diff
    _, docs_a = read_trace(args.a)
    _, docs_b = read_trace(args.b)
    diffs = diff_documents(
        docs_a, docs_b, logical=not args.wall, max_diffs=args.max_diffs
    )
    if not diffs:
        view = "full" if args.wall else "logical"
        return f"traces agree ({len(docs_a)} root spans, {view} view)"
    lines = [f"traces diverge ({len(diffs)} difference(s) shown):"]
    lines += [f"  {d}" for d in diffs]
    return "\n".join(lines), 1


def _cmd_heatmap(args) -> str:
    from .analysis import format_heatmap, spatial_error_map
    from .core.soft import SoftVIREEstimator
    from .geometry.placement import paper_testbed_grid
    from .rf.environments import environment_by_name

    grid = paper_testbed_grid()
    estimators = {
        "landmarc": lambda: LandmarcEstimator(),
        "vire": lambda: VIREEstimator(grid, VIREConfig(target_total_tags=900)),
        "softvire": lambda: SoftVIREEstimator(grid),
    }
    emap = spatial_error_map(
        environment_by_name(args.env),
        grid,
        estimators[args.estimator](),
        resolution=args.resolution,
        n_trials=args.trials,
        base_seed=args.seed,
        pad_m=0.5,
    )
    return format_heatmap(emap)


_COMMANDS = {
    "figure": _cmd_figure,
    "compare": _cmd_compare,
    "report": _cmd_report,
    "loadtest": _cmd_loadtest,
    "track": _cmd_track,
    "serve": _cmd_serve,
    "chaos": _cmd_chaos,
    "trace": _cmd_trace,
    "heatmap": _cmd_heatmap,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Handlers return either a string (printed, exit 0) or a
    ``(text, code)`` pair (``trace diff`` exits 1 on divergence).
    :class:`~repro.exceptions.ReproError` becomes one ``error:`` line on
    stderr and exit code 2; :class:`SystemExit` (argparse usage errors,
    ``serve --kill-at``'s code 17) propagates unchanged.
    """
    args = build_parser().parse_args(argv)
    try:
        out = _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    text, code = out if isinstance(out, tuple) else (out, 0)
    print(text)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
