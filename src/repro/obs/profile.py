"""Per-stage profiling over recorded span forests.

Turns a trace (the span documents of :mod:`repro.obs.trace_file`) into
the numbers an operator actually wants:

* **stage table** — for every span name: call count, total wall time,
  p50/p95/p99 latency, and share of the total *self* time (a span's
  self time excludes its children, so the table attributes every
  millisecond exactly once instead of double-counting parents);
* **ladder breakdown** — how the service's degradation ladder decided:
  requests per ladder level (full VIRE / subset VIRE / LANDMARC /
  last-known), degradation reasons, and the interpolation-cache
  hit/miss totals carried on the batch spans.

All of it is computed from the trace file alone — ``repro trace
summary`` needs no live session.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..utils.ascii import format_table

__all__ = [
    "StageStats",
    "stage_statistics",
    "ladder_breakdown",
    "format_stage_table",
    "format_summary",
]

#: Span name of the per-request serving decision (see service.pipeline).
SERVE_SPAN = "service.serve"
#: Span name of the per-batch execution (carries the cache outcome).
BATCH_SPAN = "service.batch"


@dataclass(frozen=True)
class StageStats:
    """Latency statistics of one span name across a trace."""

    name: str
    count: int
    total_s: float
    self_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else math.nan


def _quantile(ordered: list[float], q: float) -> float:
    """Quantile with linear interpolation between order statistics.

    Nearest-rank snapping is visibly wrong on the sparse tails a stage
    table reports (a p99 over 20 spans just returns the max); the
    "type 7" interpolated estimator blends the two straddling samples
    instead — same convention as
    :func:`repro.loadtest.slo.quantile_linear`.
    """
    if not ordered:
        return math.nan
    pos = q * (len(ordered) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return ordered[lo]
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)


def _walk(doc: Mapping[str, Any]):
    yield doc
    for child in doc.get("children", ()):
        yield from _walk(child)


def stage_statistics(
    docs: Iterable[Mapping[str, Any]]
) -> dict[str, StageStats]:
    """Aggregate wall-clock latency per span name over a span forest.

    Traces recorded without wall annotation (or logically canonicalized
    ones) produce zero-latency rows — counts and tree structure still
    summarize.
    """
    samples: dict[str, list[float]] = {}
    self_time: dict[str, float] = {}
    for root in docs:
        for span in _walk(root):
            name = str(span.get("name", "?"))
            wall = float(span.get("wall_s", 0.0) or 0.0)
            child_wall = sum(
                float(c.get("wall_s", 0.0) or 0.0)
                for c in span.get("children", ())
            )
            samples.setdefault(name, []).append(wall)
            self_time[name] = self_time.get(name, 0.0) + max(
                0.0, wall - child_wall
            )
    out: dict[str, StageStats] = {}
    for name, values in samples.items():
        ordered = sorted(values)
        out[name] = StageStats(
            name=name,
            count=len(values),
            total_s=sum(values),
            self_s=self_time.get(name, 0.0),
            p50_s=_quantile(ordered, 0.50),
            p95_s=_quantile(ordered, 0.95),
            p99_s=_quantile(ordered, 0.99),
            max_s=ordered[-1],
        )
    return out


def ladder_breakdown(docs: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Decision accounting: ladder levels, reasons, cache outcome.

    Reads the ``service.serve`` spans' ``level``/``reason``/``estimator``
    attributes and sums the ``cache_hits``/``cache_misses`` deltas the
    batch spans carry. Empty when the trace holds no service spans
    (e.g. a scalar-estimator trace).
    """
    levels: dict[str, int] = {}
    reasons: dict[str, int] = {}
    estimators: dict[str, int] = {}
    cache_hits = 0
    cache_misses = 0
    serves = 0
    for root in docs:
        for span in _walk(root):
            name = span.get("name")
            attrs = span.get("attrs", {})
            if name == SERVE_SPAN:
                serves += 1
                level = str(attrs.get("level", "?"))
                levels[level] = levels.get(level, 0) + 1
                reason = attrs.get("reason")
                if reason is not None:
                    reasons[str(reason)] = reasons.get(str(reason), 0) + 1
                est = attrs.get("estimator")
                if est is not None:
                    estimators[str(est)] = estimators.get(str(est), 0) + 1
            elif name == BATCH_SPAN:
                cache_hits += int(attrs.get("cache_hits", 0) or 0)
                cache_misses += int(attrs.get("cache_misses", 0) or 0)
    return {
        "serves": serves,
        "levels": {k: levels[k] for k in sorted(levels)},
        "reasons": {k: reasons[k] for k in sorted(reasons)},
        "estimators": {k: estimators[k] for k in sorted(estimators)},
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
    }


def format_stage_table(
    stats: Mapping[str, StageStats], *, top: int = 10
) -> str:
    """The top-N stages by *self* time, as a fixed-width table."""
    ranked = sorted(stats.values(), key=lambda s: (-s.self_s, s.name))[:top]
    total_self = sum(s.self_s for s in stats.values()) or math.nan
    rows = [
        [
            s.name,
            s.count,
            f"{1e3 * s.self_s:.2f}",
            f"{100 * s.self_s / total_self:.1f}%" if total_self else "-",
            f"{1e3 * s.p50_s:.3f}",
            f"{1e3 * s.p95_s:.3f}",
            f"{1e3 * s.p99_s:.3f}",
        ]
        for s in ranked
    ]
    return format_table(
        ["stage", "count", "self ms", "share", "p50 ms", "p95 ms", "p99 ms"],
        rows,
        title=f"top {len(ranked)} stages by self time",
    )


def format_summary(
    header: Mapping[str, Any],
    docs: list[Mapping[str, Any]],
    *,
    top: int = 10,
) -> str:
    """The full ``repro trace summary`` rendering."""
    stats = stage_statistics(docs)
    ladder = ladder_breakdown(docs)
    n_spans = sum(1 for root in docs for _ in _walk(root))
    meta = ", ".join(
        f"{k}={header[k]}"
        for k in ("env", "seed", "duration_s")
        if k in header
    )
    lines = [
        f"trace: {len(docs)} root spans, {n_spans} total"
        + (f" ({meta})" if meta else ""),
        "",
        format_stage_table(stats, top=top),
    ]
    if ladder["serves"]:
        lines += [
            "",
            f"ladder breakdown over {ladder['serves']} served requests:",
        ]
        level_names = {
            "1": "full VIRE",
            "2": "subset VIRE",
            "3": "LANDMARC fallback",
            "4": "last-known",
        }
        for level, count in ladder["levels"].items():
            label = level_names.get(level, f"level {level}")
            lines.append(f"  level {level} ({label:17s}) {count}")
        if ladder["reasons"]:
            reasons = ", ".join(
                f"{k}={v}" for k, v in ladder["reasons"].items()
            )
            lines.append(f"  degradation reasons: {reasons}")
        total_cache = ladder["cache_hits"] + ladder["cache_misses"]
        if total_cache:
            rate = ladder["cache_hits"] / total_cache
            lines.append(
                f"  interpolation cache: {ladder['cache_hits']} hits / "
                f"{ladder['cache_misses']} misses ({100 * rate:.1f}% hit rate)"
            )
    return "\n".join(lines)
