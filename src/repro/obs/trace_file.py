"""Canonical JSONL trace files: write, read, canonicalize, diff.

A trace file is a sequence of JSON documents, one per line:

* line 1 — ``{"format": "repro-trace", "version": 1, ...}`` header with
  free-form recording metadata (scenario, seed, duration);
* every further line — one completed **root** span document
  (:meth:`repro.obs.tracer.Span.document`), in completion order,
  flushed as recorded (a crashed recording keeps everything up to the
  last complete root).

Two views of the same file:

* the **full** view keeps the wall-clock annotations (``wall_s``) — the
  input of ``repro trace summary``'s latency tables;
* the **logical** view strips them (:func:`logical_documents`), leaving
  a pure function of the seeded run. :func:`canonical_logical_json`
  renders that view with sorted keys and compact separators — the exact
  bytes the CI trace-smoke job and the trace-golden fixtures compare.

:func:`diff_documents` walks two span forests in parallel and reports
the first divergences by path (``[3].service.batch/children[1].attrs``),
which turns "the traces differ" into "the ladder took LANDMARC here and
full VIRE there".
"""

from __future__ import annotations

import json
import os
from typing import IO, Any, Iterable, Mapping

from ..exceptions import ConfigurationError
from .tracer import Span, WALL_KEYS

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TraceWriter",
    "read_trace",
    "logical_documents",
    "canonical_logical_json",
    "diff_documents",
]

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


def _dump(doc: Mapping[str, Any]) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


class TraceWriter:
    """Streams completed root spans to a JSONL trace file.

    Wire it as a tracer sink::

        writer = TraceWriter(path, meta={"seed": 0})
        tracer = Tracer(sink=writer.sink)

    Use as a context manager; every line is flushed as written.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        meta: Mapping[str, Any] | None = None,
    ):
        self.path = os.fspath(path)
        try:
            self._fh: IO[str] | None = open(self.path, "w", encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot open trace file {self.path!r} for writing: {exc}"
            ) from exc
        header = {"format": TRACE_FORMAT, "version": TRACE_VERSION}
        if meta:
            header.update({str(k): meta[k] for k in meta})
        self._write_line(header)
        self.spans_written = 0

    def _write_line(self, doc: Mapping[str, Any]) -> None:
        if self._fh is None:
            raise ConfigurationError(
                f"trace file {self.path!r} is already closed"
            )
        self._fh.write(_dump(doc) + "\n")
        self._fh.flush()

    def sink(self, span: Span) -> None:
        """Tracer sink: serialize one completed root span."""
        self._write_line(span.document())
        self.spans_written += 1

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.flush()
            fh.close()


def read_trace(path: str | os.PathLike) -> tuple[dict, list[dict]]:
    """Load a trace file; returns ``(header, span_documents)``.

    Tolerates a truncated final line (a recording killed mid-write)
    exactly like the checkpoint loader: parsing stops at the first
    unparsable line. A missing or header-less file raises
    :class:`~repro.exceptions.ConfigurationError`.
    """
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read trace file {path!r}: {exc}"
        ) from exc
    if not lines:
        raise ConfigurationError(f"trace file {path!r} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"trace file {path!r} has no parsable header line"
        ) from exc
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise ConfigurationError(
            f"{path!r} is not a {TRACE_FORMAT} file "
            f"(header: {str(header)[:80]})"
        )
    docs: list[dict] = []
    for line in lines[1:]:
        if not line.strip():
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError:
            break  # torn tail: keep every complete root before it
    return header, docs


def _strip(doc: Mapping[str, Any]) -> dict[str, Any]:
    out = {k: v for k, v in doc.items() if k not in WALL_KEYS}
    if "children" in out:
        out["children"] = [_strip(c) for c in out["children"]]
    return out


def logical_documents(docs: Iterable[Mapping[str, Any]]) -> list[dict]:
    """Strip the wall-clock annotation from every span document."""
    return [_strip(doc) for doc in docs]


def canonical_logical_json(docs: Iterable[Mapping[str, Any]]) -> str:
    """The byte-comparable rendering of a trace's logical content.

    Two seeded runs of the same session must produce identical strings
    here — the determinism contract the CI trace-smoke job enforces.
    """
    return json.dumps(
        logical_documents(docs), sort_keys=True, separators=(",", ":")
    )


def diff_documents(
    a: list[Mapping[str, Any]],
    b: list[Mapping[str, Any]],
    *,
    logical: bool = True,
    max_diffs: int = 10,
) -> list[str]:
    """Human-readable divergences between two span forests.

    Returns an empty list when the traces agree (under the chosen view).
    ``logical=True`` (default) compares the deterministic portion only;
    ``logical=False`` also compares wall-clock fields, which is only
    useful for comparing a file with itself.
    """
    if logical:
        a, b = logical_documents(a), logical_documents(b)
    diffs: list[str] = []

    def walk(x: Any, y: Any, path: str) -> None:
        if len(diffs) >= max_diffs:
            return
        if isinstance(x, Mapping) and isinstance(y, Mapping):
            for key in sorted(set(x) | set(y)):
                if key not in x:
                    diffs.append(f"{path}.{key}: only in B ({y[key]!r})")
                elif key not in y:
                    diffs.append(f"{path}.{key}: only in A ({x[key]!r})")
                else:
                    walk(x[key], y[key], f"{path}.{key}")
                if len(diffs) >= max_diffs:
                    return
            return
        if isinstance(x, list) and isinstance(y, list):
            if len(x) != len(y):
                diffs.append(
                    f"{path}: length {len(x)} in A vs {len(y)} in B"
                )
            for i, (xi, yi) in enumerate(zip(x, y)):
                walk(xi, yi, f"{path}[{i}]")
                if len(diffs) >= max_diffs:
                    return
            return
        if x != y:
            name = ""
            if isinstance(x, Mapping):  # pragma: no cover - defensive
                name = str(x.get("name", ""))
            diffs.append(f"{path}{name}: A={x!r} B={y!r}")

    if len(a) != len(b):
        diffs.append(f"root span count: {len(a)} in A vs {len(b)} in B")
    for i, (da, db) in enumerate(zip(a, b)):
        walk(da, db, f"[{i}]")
        if len(diffs) >= max_diffs:
            break
    return diffs
