"""``repro.obs`` — deterministic tracing and per-stage profiling.

The observability layer of the reproduction-turned-serving-system:

* :mod:`repro.obs.tracer` — hierarchical span tracer (context-manager /
  decorator API) with a **deterministic logical core** (span tree,
  attributes, sim-clock timestamps) and wall-clock annotation kept
  strictly aside. The ambient default is a no-op tracer, so every
  instrumentation point is effectively free until a trace is requested.
* :mod:`repro.obs.trace_file` — canonical JSONL trace files, logical
  canonicalization (the byte-identity artifact of the CI trace-smoke
  job) and structural diffing.
* :mod:`repro.obs.profile` — per-stage latency tables and the
  degradation-ladder breakdown behind ``repro trace summary``.

See ``docs/OBSERVABILITY.md`` for the tracer API, the determinism
contract and CLI walkthroughs.
"""

from .profile import (
    StageStats,
    format_stage_table,
    format_summary,
    ladder_breakdown,
    stage_statistics,
)
from .trace_file import (
    TRACE_FORMAT,
    TRACE_VERSION,
    TraceWriter,
    canonical_logical_json,
    diff_documents,
    logical_documents,
    read_trace,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    traced,
    use_tracer,
)

__all__ = [
    # tracer
    "Span", "Tracer", "NullTracer", "NULL_TRACER",
    "current_tracer", "use_tracer", "traced",
    # trace files
    "TRACE_FORMAT", "TRACE_VERSION", "TraceWriter",
    "read_trace", "logical_documents", "canonical_logical_json",
    "diff_documents",
    # profiling
    "StageStats", "stage_statistics", "ladder_breakdown",
    "format_stage_table", "format_summary",
]
