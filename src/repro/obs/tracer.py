"""Hierarchical span tracing with a deterministic logical core.

The repo's north star is a serving system, and serving systems answer
two questions metrics alone cannot: *where did the millisecond go* and
*which path produced this answer*. This module provides the span tracer
threaded through the hot paths (``core.estimator``, ``engine``, the
service pipeline, the runtime supervisor):

* a :class:`Span` is one timed stage with structured attributes (tag id,
  ladder level, threshold, shard index, cache outcome, ...) and child
  spans;
* a :class:`Tracer` maintains the span stack behind a context-manager /
  decorator API and hands completed *root* spans to an optional sink
  (:class:`~repro.obs.trace_file.TraceWriter` serializes them to JSONL);
* a :class:`NullTracer` is the ambient default: every instrumentation
  point costs one context-variable read and one no-op context manager —
  the disabled path is answer-bitwise-identical and benchmarked at
  well under the 5 % overhead budget
  (``benchmarks/bench_obs_overhead.py``).

Determinism contract
--------------------
Spans separate **logical** content from **wall-clock** annotation:

* the logical portion — span name, tree structure, attributes, and the
  *simulation-clock* timestamp ``t`` — is a pure function of the seeded
  run. Two seeded serve sessions with identical configuration produce
  byte-identical logical traces
  (:func:`repro.obs.trace_file.canonical_logical_json`); the CI
  trace-smoke job and ``tests/golden/trace_*.json`` pin exactly that.
* wall-clock fields (``wall_s``) are measured with an injectable
  monotonic clock and *stripped* from the logical view; they feed the
  per-stage latency histograms and the ``repro trace summary`` output.

Instrumented code must therefore only put deterministic values into
attributes — simulation state, configuration, counts — never wall times
or memory addresses.

Layering: ``obs`` sits *below* ``core`` (it imports only ``utils`` and
``exceptions``), so every layer of the stack may trace through it.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator

from ..exceptions import ConfigurationError

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
    "traced",
]

#: Keys of the wall-clock annotation, stripped from the logical view.
WALL_KEYS = frozenset({"wall_s"})


def to_jsonable(value: Any) -> Any:
    """Coerce an attribute value into deterministic plain-JSON types.

    Handles Python scalars, numpy scalars (duck-typed via ``.item()``),
    mappings and sequences; anything else is stringified. Kept local so
    ``obs`` stays import-light (no numpy dependency at module load).
    """
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return float(value)
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", None) == ():
        return to_jsonable(item())
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return [to_jsonable(v) for v in sorted(value, key=str)]
    return str(value)


class Span:
    """One traced stage: name, attributes, children, and two clocks.

    ``t`` is the deterministic simulation-clock timestamp at span start
    (``None`` when the tracer has no sim clock); ``wall_s`` is the
    wall-clock duration, excluded from the logical view by design.

    Acts as its own context manager; created through
    :meth:`Tracer.span`, never directly.
    """

    __slots__ = (
        "name", "attrs", "children", "t", "_tracer", "_wall_start", "wall_s",
    )

    def __init__(
        self, tracer: "Tracer", name: str, t: float | None, attrs: dict
    ):
        self.name = str(name)
        self.attrs = attrs
        self.children: list[Span] = []
        self.t = t
        self.wall_s: float | None = None
        self._tracer = tracer
        self._wall_start: float | None = None

    # -- attribute API -------------------------------------------------------

    def set(self, key: str, value: Any) -> None:
        """Attach one structured attribute (must be deterministic)."""
        self.attrs[str(key)] = to_jsonable(value)

    def update(self, **attrs: Any) -> None:
        for key, value in attrs.items():
            self.attrs[key] = to_jsonable(value)

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            # Deterministic failures (quorum refusal, validation) are
            # part of the logical trace: record the class, re-raise.
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)
        return False

    # -- serialization -------------------------------------------------------

    def document(self) -> dict[str, Any]:
        """Full JSON document: logical content + wall annotation."""
        doc: dict[str, Any] = {"name": self.name}
        if self.t is not None:
            doc["t"] = float(self.t)
        if self.attrs:
            doc["attrs"] = {k: self.attrs[k] for k in sorted(self.attrs)}
        if self.wall_s is not None:
            doc["wall_s"] = float(self.wall_s)
        if self.children:
            doc["children"] = [c.document() for c in self.children]
        return doc

    def logical(self) -> dict[str, Any]:
        """The deterministic portion only (wall clock stripped)."""
        doc = self.document()
        return _strip_wall(doc)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, t={self.t}, attrs={self.attrs}, "
            f"children={len(self.children)})"
        )


def _strip_wall(doc: dict[str, Any]) -> dict[str, Any]:
    out = {k: v for k, v in doc.items() if k not in WALL_KEYS}
    if "children" in out:
        out["children"] = [_strip_wall(c) for c in out["children"]]
    return out


class _NullSpan:
    """The shared no-op span handed out by :class:`NullTracer`.

    Every method is a no-op; one module-level instance serves every
    instrumentation point, so the disabled path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def update(self, **attrs: Any) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullSpan()"


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The ambient default tracer: records nothing, costs almost nothing.

    ``span``/``event`` return a shared no-op span without touching the
    keyword arguments; the only cost at a disabled instrumentation point
    is building the (usually tiny) kwargs dict. The overhead benchmark
    holds this under 5 % of the estimation work it decorates.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()


class Tracer:
    """Records a forest of spans; deterministic core, wall-clock aside.

    Parameters
    ----------
    clock:
        Deterministic (simulation) clock; stamped as ``t`` on every
        span. ``None`` (default) omits the timestamp — scalar pipelines
        traced outside a simulation have no meaningful sim time. The
        service session wires the simulator clock in
        (:meth:`repro.service.session.LocalizationService.run`).
    wall_clock:
        Monotonic clock for the wall-duration annotation (injectable so
        tests can fake latency).
    metrics:
        Optional duck-typed registry (anything with
        ``histogram(name, help)``): every finished span observes its
        wall duration into ``obs_stage_<stage>_latency_seconds``, which
        renders alongside the service metrics in the same Prometheus
        exposition.
    sink:
        Called with each completed **root** span (e.g.
        :meth:`repro.obs.trace_file.TraceWriter.sink` for JSONL
        streaming). Completed roots are also retained on ``roots``.
    """

    enabled = True

    def __init__(
        self,
        *,
        clock: Callable[[], float] | None = None,
        wall_clock: Callable[[], float] = time.perf_counter,
        metrics: Any | None = None,
        sink: Callable[[Span], None] | None = None,
    ):
        self.clock = clock
        self.wall_clock = wall_clock
        self.sink = sink
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._metrics = metrics
        self._histograms: dict[str, Any] = {}
        self.spans_recorded = 0

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Open one span as a context manager; nests under the current one."""
        t = self.clock() if self.clock is not None else None
        span = Span(
            self, name, t, {k: to_jsonable(v) for k, v in attrs.items()}
        )
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)
        span._wall_start = self.wall_clock()
        return span

    def event(self, name: str, **attrs: Any) -> None:
        """A zero-duration span (supervisor retries, breaker flips, ...)."""
        with self.span(name, **attrs):
            pass

    def _finish(self, span: Span) -> None:
        span.wall_s = self.wall_clock() - span._wall_start
        if not self._stack or self._stack[-1] is not span:
            raise ConfigurationError(
                f"span {span.name!r} closed out of order; "
                f"open stack: {[s.name for s in self._stack]}"
            )
        self._stack.pop()
        self.spans_recorded += 1
        if self._metrics is not None:
            self._observe(span)
        if not self._stack:
            self.roots.append(span)
            if self.sink is not None:
                self.sink(span)

    def _observe(self, span: Span) -> None:
        hist = self._histograms.get(span.name)
        if hist is None:
            safe = "".join(
                c if (c.isalnum() or c == "_") else "_" for c in span.name
            )
            hist = self._metrics.histogram(
                f"obs_stage_{safe}_latency_seconds",
                f"Wall-clock latency of traced stage {span.name}",
            )
            self._histograms[span.name] = hist
        hist.observe(span.wall_s)

    # -- views ---------------------------------------------------------------

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    def documents(self) -> list[dict[str, Any]]:
        """Every completed root span as a full JSON document."""
        return [root.document() for root in self.roots]

    def logical_documents(self) -> list[dict[str, Any]]:
        """Every completed root span, wall clock stripped (deterministic)."""
        return [root.logical() for root in self.roots]

    def __repr__(self) -> str:
        return (
            f"Tracer(roots={len(self.roots)}, open={len(self._stack)}, "
            f"spans={self.spans_recorded})"
        )


# -- ambient tracer ----------------------------------------------------------

_CURRENT: ContextVar[NullTracer | Tracer] = ContextVar(
    "repro_obs_tracer", default=NULL_TRACER
)


def current_tracer() -> NullTracer | Tracer:
    """The tracer in effect for this context (default: the no-op)."""
    return _CURRENT.get()


@contextmanager
def use_tracer(tracer: NullTracer | Tracer) -> Iterator[NullTracer | Tracer]:
    """Install ``tracer`` as the ambient tracer for the enclosed block.

    Context-variable scoped: concurrent asyncio tasks and threads each
    see their own ambient tracer, and nesting restores the previous one
    on exit.
    """
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)


def traced(name: str, **attrs: Any) -> Callable:
    """Decorator form: run the wrapped callable inside a span.

    ``@traced("runtime.snapshot")`` is sugar for wrapping the body in
    ``current_tracer().span("runtime.snapshot")`` — the ambient tracer
    is resolved at *call* time, so decorated functions stay no-op cheap
    until a tracer is installed.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            with current_tracer().span(name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
