"""Statistical analysis of localization results.

Beyond the per-tag means the paper plots, a reproduction should state
*confidence*: :mod:`~repro.analysis.significance` provides a paired
bootstrap test over the runner's paired trials, and
:mod:`~repro.analysis.cdf` the error-CDF comparisons standard in the
localization literature. :mod:`~repro.analysis.report` assembles a full
reproduction report. :mod:`~repro.analysis.registry` maps capacity
figure names to pure regenerator functions over load-sweep JSONL
(``repro report --from <dir>``; docs/LOADTEST.md).
"""

from .cdf import cdf_comparison, format_cdf_comparison
from .heatmap import ErrorMap, spatial_error_map, format_heatmap
from .crlb import crlb_point, crlb_map, average_crlb
from .registry import (
    FigureSpec,
    build_capacity_report,
    build_figure,
    figure_names,
    get_figure,
    load_sweep,
)
from .significance import PairedComparison, paired_bootstrap
from .report import reproduction_report

__all__ = [
    "cdf_comparison",
    "ErrorMap",
    "spatial_error_map",
    "format_heatmap",
    "crlb_point",
    "crlb_map",
    "average_crlb",
    "format_cdf_comparison",
    "PairedComparison",
    "paired_bootstrap",
    "reproduction_report",
    "FigureSpec",
    "build_capacity_report",
    "build_figure",
    "figure_names",
    "get_figure",
    "load_sweep",
]
