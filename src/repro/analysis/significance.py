"""Paired bootstrap significance test for estimator comparisons.

The runner evaluates every estimator on byte-identical readings, so the
per-(tag, trial) error *differences* are paired samples. The paired
bootstrap resamples those differences to give a confidence interval on
the mean improvement and a one-sided p-value for "estimator B is better
than estimator A" — turning Fig. 6's bar chart into a statistical claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..experiments.runner import ScenarioResult
from ..utils.rng import derive_rng

__all__ = ["PairedComparison", "paired_bootstrap"]


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired bootstrap comparison (B vs A, positive = B wins)."""

    baseline_name: str
    improved_name: str
    mean_improvement_m: float
    ci_low_m: float
    ci_high_m: float
    p_value: float
    n_pairs: int

    @property
    def significant(self) -> bool:
        """Improvement significant at the 5% level."""
        return self.p_value < 0.05 and self.ci_low_m > 0.0

    def __str__(self) -> str:
        return (
            f"{self.improved_name} improves on {self.baseline_name} by "
            f"{self.mean_improvement_m:.3f} m "
            f"[{self.ci_low_m:.3f}, {self.ci_high_m:.3f}] (95% CI), "
            f"p={self.p_value:.4f}, n={self.n_pairs}"
        )


def paired_bootstrap(
    result: ScenarioResult,
    baseline: str,
    improved: str,
    *,
    n_resamples: int = 10_000,
    seed: int = 0,
) -> PairedComparison:
    """Bootstrap the mean paired error difference ``baseline - improved``.

    Parameters
    ----------
    result:
        A :func:`~repro.experiments.runner.run_scenario` output containing
        both estimators.
    baseline, improved:
        Estimator names (e.g. "LANDMARC", "VIRE").
    n_resamples:
        Bootstrap resamples for the CI / p-value.
    """
    if n_resamples < 100:
        raise ConfigurationError(f"n_resamples too small: {n_resamples}")
    base = result.by_name(baseline)
    imp = result.by_name(improved)
    if set(base.per_tag) != set(imp.per_tag):
        raise ConfigurationError("estimators cover different tag sets")

    diffs = np.concatenate(
        [
            np.asarray(base.per_tag[tag]) - np.asarray(imp.per_tag[tag])
            for tag in sorted(base.per_tag)
        ]
    )
    n = diffs.size
    rng = derive_rng(seed, "paired-bootstrap")
    idx = rng.integers(0, n, size=(n_resamples, n))
    means = diffs[idx].mean(axis=1)
    ci_low, ci_high = np.percentile(means, [2.5, 97.5])
    # One-sided p: probability the improvement is <= 0 under the bootstrap.
    p = float(np.mean(means <= 0.0))
    p = max(p, 1.0 / n_resamples)  # never report an exact zero
    return PairedComparison(
        baseline_name=baseline,
        improved_name=improved,
        mean_improvement_m=float(diffs.mean()),
        ci_low_m=float(ci_low),
        ci_high_m=float(ci_high),
        p_value=p,
        n_pairs=int(n),
    )
