"""Cramér–Rao lower bound for RSSI localization in this channel.

How much of VIRE's residual error is algorithmic slack, and how much is
information-theoretic? For the log-distance measurement model

``S_k = S0 − 10·γ·log10(d_k) + noise,  noise ~ N(0, σ²)``

the Fisher information about the position x is

``F(x) = (1/σ²) Σ_k g_k(x) g_k(x)ᵀ``,
``g_k(x) = −(10·γ / ln 10) · (x − r_k) / d_k²``

(the gradient of the k-th reader's mean RSSI w.r.t. position), and the
RMS error of any unbiased estimator is bounded by

``e(x) ≥ sqrt( trace(F⁻¹(x)) )``.

The bound uses only the deterministic part of the channel; frozen-world
distortions (shadowing, offsets) act as extra noise, so the practical
gap between VIRE and this bound brackets the cost of the un-modelled
field. :func:`crlb_map` evaluates the bound over the sensing area,
mirroring :func:`~repro.analysis.heatmap.spatial_error_map`.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..geometry.grid import ReferenceGrid
from ..utils.validation import ensure_positive

__all__ = ["crlb_point", "crlb_map", "average_crlb"]

_LN10 = float(np.log(10.0))


def crlb_point(
    position: np.ndarray | tuple[float, float],
    reader_positions: np.ndarray,
    *,
    gamma: float,
    sigma_db: float,
) -> float:
    """RMS-error lower bound (m) at one position.

    Parameters
    ----------
    position:
        Query coordinate.
    reader_positions:
        ``(K, 2)`` reader coordinates; K >= 2 required (one reader's
        range constrains only a circle — F is singular).
    gamma:
        Path-loss exponent of the channel.
    sigma_db:
        Effective per-reader RSSI uncertainty (reading noise after
        averaging + residual field mismatch).
    """
    ensure_positive(gamma, "gamma")
    ensure_positive(sigma_db, "sigma_db")
    readers = np.asarray(reader_positions, dtype=np.float64)
    if readers.ndim != 2 or readers.shape[1] != 2 or readers.shape[0] < 2:
        raise ConfigurationError(
            f"need >= 2 readers with shape (K, 2), got {readers.shape}"
        )
    x = np.asarray(position, dtype=np.float64)
    diff = x[np.newaxis, :] - readers          # (K, 2)
    d2 = np.maximum(np.einsum("ij,ij->i", diff, diff), 1e-6)
    scale = 10.0 * gamma / _LN10
    grads = -scale * diff / d2[:, np.newaxis]  # (K, 2) dB per metre
    fisher = (grads.T @ grads) / sigma_db**2
    try:
        cov = np.linalg.inv(fisher)
    except np.linalg.LinAlgError as exc:
        raise ConfigurationError(
            "Fisher information singular (readers colinear with the query?)"
        ) from exc
    trace = float(np.trace(cov))
    if trace < 0:
        raise ConfigurationError("numerically invalid Fisher inverse")
    return float(np.sqrt(trace))


def crlb_map(
    grid: ReferenceGrid,
    reader_positions: np.ndarray,
    *,
    gamma: float,
    sigma_db: float,
    resolution: int = 9,
    pad_m: float = 0.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bound over a lattice covering the sensing area.

    Returns ``(xs, ys, bound)`` with ``bound`` shaped ``(len(ys), len(xs))``
    — directly comparable to
    :class:`~repro.analysis.heatmap.ErrorMap.mean_error`.
    """
    if resolution < 2:
        raise ConfigurationError(f"resolution must be >= 2, got {resolution}")
    xmin, ymin, xmax, ymax = grid.bounds
    xs = np.linspace(xmin - pad_m, xmax + pad_m, resolution)
    ys = np.linspace(ymin - pad_m, ymax + pad_m, resolution)
    bound = np.empty((resolution, resolution))
    for r, y in enumerate(ys):
        for c, x in enumerate(xs):
            bound[r, c] = crlb_point(
                (float(x), float(y)), reader_positions,
                gamma=gamma, sigma_db=sigma_db,
            )
    return xs, ys, bound


def average_crlb(
    grid: ReferenceGrid,
    reader_positions: np.ndarray,
    *,
    gamma: float,
    sigma_db: float,
    resolution: int = 9,
) -> float:
    """Mean bound over the sensing area — one number per deployment."""
    _, _, bound = crlb_map(
        grid, reader_positions, gamma=gamma, sigma_db=sigma_db,
        resolution=resolution,
    )
    return float(bound.mean())
