"""Error-CDF comparison between estimators."""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..experiments.runner import ScenarioResult
from ..utils.ascii import format_table

__all__ = ["cdf_comparison", "format_cdf_comparison"]


def cdf_comparison(
    result: ScenarioResult,
    *,
    levels_m: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0),
) -> dict[str, dict[float, float]]:
    """Fraction of estimates within each error level, per estimator.

    Returns ``{estimator: {level: fraction}}`` — the "percentile within
    X metres" numbers localization papers usually quote.
    """
    if not levels_m or any(l <= 0 for l in levels_m):
        raise ConfigurationError("levels must be positive")
    out: dict[str, dict[float, float]] = {}
    for est in result.estimators:
        sample = est.all_errors()
        out[est.estimator_name] = {
            float(level): float(np.mean(sample <= level)) for level in levels_m
        }
    return out


def format_cdf_comparison(comparison: dict[str, dict[float, float]]) -> str:
    """Render the CDF comparison as a table (rows = levels)."""
    names = list(comparison)
    if not names:
        return "(no estimators)"
    levels = sorted(next(iter(comparison.values())))
    rows = [
        [f"<= {level:.2f} m", *[f"{comparison[n][level]:.0%}" for n in names]]
        for level in levels
    ]
    return format_table(["error level", *names], rows,
                        title="fraction of estimates within error level")
