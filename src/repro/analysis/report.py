"""Full reproduction report: run everything, print everything.

:func:`reproduction_report` regenerates every figure of the paper plus
the significance analysis and returns one big text block — the
programmatic equivalent of EXPERIMENTS.md, used by the CLI's ``report``
command.
"""

from __future__ import annotations

from ..baselines.landmarc import LandmarcEstimator
from ..core.config import VIREConfig
from ..core.estimator import VIREEstimator
from ..experiments import figures
from ..experiments.runner import run_scenario
from ..experiments.scenarios import paper_scenario
from .cdf import cdf_comparison, format_cdf_comparison
from .significance import paired_bootstrap

__all__ = ["reproduction_report"]


def reproduction_report(
    *,
    n_trials: int = 15,
    base_seed: int = 0,
    include_sweeps: bool = True,
) -> str:
    """Regenerate the paper's evaluation and return it as text.

    ``n_trials`` trades runtime for statistical tightness; 15 keeps the
    full report under a couple of minutes on a laptop.
    """
    blocks: list[str] = []

    def add(title: str, body: str) -> None:
        bar = "=" * 72
        blocks.append(f"{bar}\n{title}\n{bar}\n{body}")

    add(
        "Fig. 2(b) — LANDMARC across environments",
        figures.format_fig2b(figures.fig2b(n_trials=n_trials, base_seed=base_seed)),
    )
    add("Fig. 3 — RSSI vs distance", figures.format_fig3(figures.fig3()))
    add("Fig. 4 — tag interference", figures.format_fig4(figures.fig4()))
    add(
        "Fig. 6 — VIRE vs LANDMARC",
        figures.format_fig6(figures.fig6(n_trials=n_trials, base_seed=base_seed)),
    )
    if include_sweeps:
        add(
            "Fig. 7 — virtual tag density",
            figures.format_fig7(
                figures.fig7(n_trials=max(n_trials // 2, 3), base_seed=base_seed)
            ),
        )
        add(
            "Fig. 8 — threshold sweep",
            figures.format_fig8(
                figures.fig8(n_trials=max(n_trials // 2, 3), base_seed=base_seed)
            ),
        )

    # Statistical wrap-up on Env3 (the paper's motivating case).
    scenario = paper_scenario("Env3", n_trials=n_trials, base_seed=base_seed)
    result = run_scenario(
        scenario,
        [
            LandmarcEstimator(),
            VIREEstimator(scenario.grid, VIREConfig(target_total_tags=900)),
        ],
    )
    comparison = paired_bootstrap(result, "LANDMARC", "VIRE")
    add(
        "Statistical summary (Env3)",
        format_cdf_comparison(cdf_comparison(result)) + "\n\n" + str(comparison),
    )
    return "\n\n".join(blocks)
