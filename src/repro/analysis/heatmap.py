"""Spatial error maps: where in the sensing area does an estimator fail?

:func:`spatial_error_map` sweeps a probe tag over a lattice of positions
and records the mean estimation error at each — the spatial counterpart
of the per-tag bars in Fig. 6, revealing the boundary ring and any
multipath hot spots. :func:`format_heatmap` renders the result with a
character ramp.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..experiments.measurement import MeasurementSpec, TrialSampler
from ..geometry.grid import ReferenceGrid
from ..rf.environments import EnvironmentSpec
from ..types import Estimator

__all__ = ["ErrorMap", "spatial_error_map", "format_heatmap"]

#: Character ramp from good (low error) to bad (high error).
_RAMP = " .:-=+*#%@"


@dataclass(frozen=True)
class ErrorMap:
    """Mean error per probe position over the sensing area."""

    xs: np.ndarray          # (n_cols,) probe x coordinates
    ys: np.ndarray          # (n_rows,) probe y coordinates
    mean_error: np.ndarray  # (n_rows, n_cols)
    estimator_name: str
    environment_name: str

    @property
    def worst(self) -> tuple[float, tuple[float, float]]:
        """(error, position) of the worst probe point."""
        idx = np.unravel_index(np.argmax(self.mean_error), self.mean_error.shape)
        return (
            float(self.mean_error[idx]),
            (float(self.xs[idx[1]]), float(self.ys[idx[0]])),
        )


def spatial_error_map(
    environment: EnvironmentSpec,
    grid: ReferenceGrid,
    estimator: Estimator,
    *,
    resolution: int = 9,
    n_trials: int = 5,
    n_reads: int = 8,
    base_seed: int = 0,
    pad_m: float = 0.0,
) -> ErrorMap:
    """Probe the estimator over a ``resolution x resolution`` lattice.

    ``pad_m`` extends the probed area beyond the grid bounds (to expose
    boundary behaviour like Tag 9's).
    """
    if resolution < 2:
        raise ConfigurationError(f"resolution must be >= 2, got {resolution}")
    xmin, ymin, xmax, ymax = grid.bounds
    xs = np.linspace(xmin - pad_m, xmax + pad_m, resolution)
    ys = np.linspace(ymin - pad_m, ymax + pad_m, resolution)
    errors = np.zeros((resolution, resolution))
    for trial in range(n_trials):
        sampler = TrialSampler(
            environment,
            grid,
            seed=base_seed + trial,
            measurement=MeasurementSpec(n_reads=n_reads),
        )
        for r, y in enumerate(ys):
            for c, x in enumerate(xs):
                reading = sampler.reading_for((float(x), float(y)))
                errors[r, c] += estimator.estimate(reading).error_to((x, y))
    errors /= n_trials
    return ErrorMap(
        xs=xs,
        ys=ys,
        mean_error=errors,
        estimator_name=estimator.name,
        environment_name=environment.name,
    )


def format_heatmap(
    error_map: ErrorMap, *, vmax: float | None = None
) -> str:
    """Render the error map with a character ramp (dark = high error).

    Row order follows the geometry: the top text row is the largest y.
    """
    data = error_map.mean_error
    top = vmax if vmax is not None else float(data.max())
    if top <= 0:
        top = 1.0
    lines = [
        f"{error_map.estimator_name} mean error over "
        f"{error_map.environment_name} (max {data.max():.2f} m, "
        f"'{_RAMP[0]}'=0 .. '{_RAMP[-1]}'={top:.2f})"
    ]
    for r in range(data.shape[0] - 1, -1, -1):
        cells = []
        for c in range(data.shape[1]):
            level = min(int(data[r, c] / top * (len(_RAMP) - 1)), len(_RAMP) - 1)
            cells.append(_RAMP[level] * 2)
        lines.append("|" + "".join(cells) + "|")
    worst_err, worst_pos = error_map.worst
    lines.append(
        f"worst: {worst_err:.2f} m at ({worst_pos[0]:.1f}, {worst_pos[1]:.1f})"
    )
    return "\n".join(lines)
