"""Figure registry: name → generator function → artifact.

Every capacity/accuracy figure of the load-test report is a **pure
function of sweep-point documents** (the JSONL that ``repro loadtest``
writes), registered here under a stable name with a stable artifact
filename. ``repro report --from <dir>`` regenerates all of them — or
any single one with ``--figure <name>`` — from the JSONL alone, so a
figure is always reproducible in isolation, long after the run that
produced its inputs.

Input documents are :meth:`LoadTestReport.witness_document` dicts (one
sweep point per JSONL line). Builders only read the documents — never
the machines that made them — which is what makes the registry safe to
run against archived artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from ..exceptions import ConfigurationError
from ..loadtest.capacity import fit_capacity_model

__all__ = [
    "FigureSpec",
    "register_figure",
    "figure_names",
    "get_figure",
    "build_figure",
    "build_capacity_report",
    "load_sweep",
    "SWEEP_FILENAME",
]

#: Filename of the sweep JSONL inside a loadtest output directory.
SWEEP_FILENAME = "load_sweep.jsonl"

Builder = Callable[[Sequence[Mapping[str, Any]]], dict]


@dataclass(frozen=True)
class FigureSpec:
    """One registered figure: identity, artifact name and builder."""

    name: str
    description: str
    artifact: str
    builder: Builder


_REGISTRY: dict[str, FigureSpec] = {}


def register_figure(
    name: str, description: str
) -> Callable[[Builder], Builder]:
    """Decorator registering ``fn`` as the builder of figure ``name``.

    The artifact filename is derived (``report_<name>.json``) so the
    name alone identifies both the figure and its on-disk form.
    """

    def deco(fn: Builder) -> Builder:
        if name in _REGISTRY:
            raise ConfigurationError(
                f"figure {name!r} is already registered"
            )
        _REGISTRY[name] = FigureSpec(
            name=name,
            description=description,
            artifact=f"report_{name}.json",
            builder=fn,
        )
        return fn

    return deco


def figure_names() -> tuple[str, ...]:
    """Registered figure names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_figure(name: str) -> FigureSpec:
    """Look up one figure spec by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown figure {name!r}; registered: {list(figure_names())}"
        ) from None


def build_figure(
    name: str, points: Sequence[Mapping[str, Any]]
) -> dict:
    """Regenerate one figure document from sweep points."""
    spec = get_figure(name)
    return {
        "figure": spec.name,
        "description": spec.description,
        "data": spec.builder(points),
    }


def build_capacity_report(
    points: Sequence[Mapping[str, Any]],
    *,
    meta: Mapping[str, Any] | None = None,
) -> dict:
    """The full canonical capacity report: every figure, one document."""
    if not points:
        raise ConfigurationError(
            "capacity report needs at least one sweep point"
        )
    return {
        "meta": dict(meta or {}),
        "n_points": len(points),
        "figures": {
            name: build_figure(name, points) for name in figure_names()
        },
    }


def load_sweep(directory: str | Path) -> list[dict]:
    """Read the sweep JSONL a ``repro loadtest`` run wrote."""
    path = Path(directory) / SWEEP_FILENAME
    if not path.exists():
        raise ConfigurationError(
            f"no {SWEEP_FILENAME} in {directory!r} — run "
            "`python -m repro loadtest --out <dir>` first"
        )
    points = []
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                points.append(json.loads(line))
    if not points:
        raise ConfigurationError(f"{path} holds no sweep points")
    return points


# -- the figures -------------------------------------------------------------


def _point_label(point: Mapping[str, Any]) -> str:
    return str(point.get("profile", {}).get("name", "?"))


def _capacity(point: Mapping[str, Any]) -> Mapping[str, Any]:
    return point.get("capacity_point", {})


@register_figure(
    "capacity_throughput",
    "Sustained localizations/s vs offered rate (saturation curve)",
)
def _fig_capacity_throughput(points) -> dict:
    series = [
        {
            "profile": _point_label(p),
            "offered_rate_per_s": _capacity(p).get("offered_rate_per_s"),
            "sustained_per_s": _capacity(p).get("sustained_per_s"),
            "availability": _capacity(p).get("availability"),
        }
        for p in points
    ]
    series.sort(key=lambda s: (s["offered_rate_per_s"] or 0.0, s["profile"]))
    sustained = [
        s["sustained_per_s"] for s in series
        if s["sustained_per_s"] is not None
    ]
    return {
        "series": series,
        "peak_sustained_per_s": max(sustained) if sustained else None,
    }


@register_figure(
    "latency_percentiles",
    "Sim-clock queue-wait p50/p95/p99 per sweep point",
)
def _fig_latency_percentiles(points) -> dict:
    series = []
    for p in points:
        latency = p.get("slo", {}).get("latency", {})
        series.append(
            {
                "profile": _point_label(p),
                "offered_rate_per_s": _capacity(p).get(
                    "offered_rate_per_s"
                ),
                "p50_s": latency.get("p50_s"),
                "p95_s": latency.get("p95_s"),
                "p99_s": latency.get("p99_s"),
                "max_s": latency.get("max_s"),
            }
        )
    series.sort(key=lambda s: (s["offered_rate_per_s"] or 0.0, s["profile"]))
    return {"series": series}


@register_figure(
    "shed_breakdown",
    "Overload accounting: admission sheds, queue drops, ladder levels",
)
def _fig_shed_breakdown(points) -> dict:
    series = []
    for p in points:
        slo = p.get("slo", {})
        zones = p.get("zones", {})
        series.append(
            {
                "profile": _point_label(p),
                "offered": p.get("offered"),
                "served": p.get("served"),
                "admission": dict(p.get("admission", {})),
                "records_dropped": sum(
                    z.get("records_dropped", 0) for z in zones.values()
                ),
                "records_shed": sum(
                    z.get("records_shed", 0) for z in zones.values()
                ),
                "levels": dict(slo.get("levels", {})),
                "reasons": dict(slo.get("reasons", {})),
            }
        )
    series.sort(key=lambda s: (s["offered"] or 0, s["profile"]))
    return {"series": series}


@register_figure(
    "accuracy_vs_density",
    "Mean localization error vs offered query density "
    "(the VIRE-under-load axis)",
)
def _fig_accuracy_vs_density(points) -> dict:
    series = [
        {
            "profile": _point_label(p),
            "offered_rate_per_s": _capacity(p).get("offered_rate_per_s"),
            "mean_error_m": _capacity(p).get("mean_error_m"),
            "degraded_fraction": _capacity(p).get("degraded_fraction"),
            "n_zones": _capacity(p).get("n_zones"),
        }
        for p in points
    ]
    series.sort(key=lambda s: (s["offered_rate_per_s"] or 0.0, s["profile"]))
    return {"series": series}


@register_figure(
    "capacity_model",
    "Least-squares capacity model over the sweep "
    "(localizations/s vs batch size, cache, ladder, zones)",
)
def _fig_capacity_model(points) -> dict:
    model = fit_capacity_model([_capacity(p) for p in points])
    return model.canonical_document()
