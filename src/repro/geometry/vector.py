"""Low-level 2-D vector primitives.

Everything here is pure geometry with no RF semantics: segment-segment
intersection (used to count wall crossings on a propagation path) and
point reflection across a line (used by the image-method multipath model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import GeometryError
from ..utils.arrays import as_point

__all__ = [
    "Segment",
    "segments_intersect",
    "segment_intersection",
    "reflect_point",
    "point_segment_distance",
]

_EPS = 1e-12

#: Below this length a segment is treated as a point for intersection
#: purposes. The :class:`Segment` constructor rejects lengths under
#: ``_EPS``, but lengths in ``[_EPS, _POINT_LIKE]`` are still so short
#: that direction-based (cross-product) classification is numerically
#: meaningless — containment tests are the robust answer there.
_POINT_LIKE = 1e-9


@dataclass(frozen=True)
class Segment:
    """A finite 2-D line segment from ``a`` to ``b`` (metres)."""

    a: tuple[float, float]
    b: tuple[float, float]

    def __post_init__(self) -> None:
        pa = as_point(self.a, "segment endpoint a")
        pb = as_point(self.b, "segment endpoint b")
        object.__setattr__(self, "a", (float(pa[0]), float(pa[1])))
        object.__setattr__(self, "b", (float(pb[0]), float(pb[1])))
        if self.length < _EPS:
            raise GeometryError(f"degenerate zero-length segment at {self.a}")

    @property
    def length(self) -> float:
        return float(np.hypot(self.b[0] - self.a[0], self.b[1] - self.a[1]))

    @property
    def midpoint(self) -> tuple[float, float]:
        return ((self.a[0] + self.b[0]) / 2.0, (self.a[1] + self.b[1]) / 2.0)

    @property
    def direction(self) -> np.ndarray:
        """Unit direction vector from ``a`` to ``b``."""
        d = np.array([self.b[0] - self.a[0], self.b[1] - self.a[1]])
        return d / np.linalg.norm(d)

    @property
    def normal(self) -> np.ndarray:
        """Unit normal (left of the direction vector)."""
        d = self.direction
        return np.array([-d[1], d[0]])

    def as_array(self) -> np.ndarray:
        return np.array([self.a, self.b], dtype=np.float64)


def _cross(o: np.ndarray, p: np.ndarray, q: np.ndarray) -> float:
    return float((p[0] - o[0]) * (q[1] - o[1]) - (p[1] - o[1]) * (q[0] - o[0]))


def segments_intersect(s1: Segment, s2: Segment) -> bool:
    """Return True if the two closed segments share at least one point."""
    return segment_intersection(s1, s2) is not None


def segment_intersection(s1: Segment, s2: Segment) -> tuple[float, float] | None:
    """Return the intersection point of two segments, or None.

    For collinear overlapping segments the midpoint of the overlap is
    returned. Endpoint touching counts as intersection.

    The classification thresholds are *scale-aware* and evaluated
    symmetrically in the two segments, so
    ``segments_intersect(a, b) == segments_intersect(b, a)`` holds even
    for near-degenerate (barely-above-``_EPS``-length) segments — a
    hypothesis-found counterexample used to flip the answer when one
    segment was ~1e-11 long, because the parallel/collinear tests were
    measured against the *first* segment's direction only.
    """
    p = np.asarray(s1.a)
    r = np.asarray(s1.b) - p
    q = np.asarray(s2.a)
    s = np.asarray(s2.b) - q
    len_r = float(np.hypot(r[0], r[1]))
    len_s = float(np.hypot(s[0], s[1]))

    # Near-degenerate segments (constructible above the _EPS floor but
    # geometrically point-like): closed-set point-containment tests,
    # symmetric by construction.
    if len_r <= _POINT_LIKE or len_s <= _POINT_LIKE:
        if len_r <= _POINT_LIKE and len_s <= _POINT_LIKE:
            pm = p + 0.5 * r
            qm = q + 0.5 * s
            if float(np.hypot(pm[0] - qm[0], pm[1] - qm[1])) <= _POINT_LIKE:
                return (float(pm[0]), float(pm[1]))
            return None
        if len_r <= _POINT_LIKE:
            pm = p + 0.5 * r
            if point_segment_distance((pm[0], pm[1]), s2) <= _POINT_LIKE:
                return (float(pm[0]), float(pm[1]))
            return None
        qm = q + 0.5 * s
        if point_segment_distance((qm[0], qm[1]), s1) <= _POINT_LIKE:
            return (float(qm[0]), float(qm[1]))
        return None

    rxs = float(r[0] * s[1] - r[1] * s[0])
    qp = q - p
    qpxr = float(qp[0] * r[1] - qp[1] * r[0])

    if abs(rxs) <= _EPS * len_r * len_s:  # parallel (scale-invariant test)
        # Perpendicular offset between the two parallel support lines,
        # measured from both sides so the test is order-symmetric.
        pq = -qp
        qpxs = float(pq[0] * s[1] - pq[1] * s[0])
        offset = max(abs(qpxr) / len_r, abs(qpxs) / len_s)
        if offset > _EPS:
            return None  # parallel, non-collinear
        # Collinear: project onto r and look for parameter overlap.
        rr = float(r @ r)
        t0 = float(qp @ r) / rr
        t1 = t0 + float(s @ r) / rr
        lo, hi = min(t0, t1), max(t0, t1)
        lo = max(lo, 0.0)
        hi = min(hi, 1.0)
        if lo > hi + _EPS:
            return None
        tm = (lo + hi) / 2.0
        pt = p + tm * r
        return (float(pt[0]), float(pt[1]))

    t = float(qp[0] * s[1] - qp[1] * s[0]) / rxs
    u = qpxr / rxs
    if -_EPS <= t <= 1.0 + _EPS and -_EPS <= u <= 1.0 + _EPS:
        pt = p + t * r
        return (float(pt[0]), float(pt[1]))
    return None


def reflect_point(point: Sequence[float], line: Segment) -> tuple[float, float]:
    """Mirror a point across the infinite line through ``line``.

    This is the core operation of the image method: the first-order
    reflected propagation path from T to R off a wall W has the same
    length as the straight path from the *image* of T (mirrored across W)
    to R.
    """
    p = as_point(point, "point")
    a = np.asarray(line.a)
    d = line.direction
    ap = p - a
    proj = a + d * float(ap @ d)
    mirrored = 2.0 * proj - p
    return (float(mirrored[0]), float(mirrored[1]))


def point_segment_distance(point: Sequence[float], seg: Segment) -> float:
    """Distance from a point to the nearest point of a finite segment."""
    p = as_point(point, "point")
    a = np.asarray(seg.a)
    b = np.asarray(seg.b)
    ab = b - a
    t = float((p - a) @ ab) / float(ab @ ab)
    t = min(1.0, max(0.0, t))
    closest = a + t * ab
    return float(np.hypot(*(p - closest)))
