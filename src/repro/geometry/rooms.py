"""Rooms, walls and obstacles.

A :class:`Room` is a collection of :class:`Wall` segments plus a bounding
box. Walls carry two RF-relevant coefficients:

* ``attenuation_db`` — power lost when a straight propagation path
  *crosses* the wall (through-wall penetration loss);
* ``reflectivity`` — amplitude reflection coefficient in [0, 1] used by
  the image-method multipath model; 0 means the wall never contributes a
  reflected path (an open side).

The three experimental environments of the paper differ in exactly these
terms: Env1 (semi-open) has few reflective surfaces, Env2 (spacious) has
distant walls, Env3 (small office) has close, highly-reflective walls and
metallic clutter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..exceptions import GeometryError
from ..utils.validation import ensure_in_range, ensure_non_negative
from .vector import Segment, segments_intersect

__all__ = ["Wall", "Room", "rectangular_room"]


@dataclass(frozen=True)
class Wall:
    """A wall segment with RF penetration loss and reflectivity."""

    segment: Segment
    attenuation_db: float = 6.0
    reflectivity: float = 0.6
    name: str = ""

    def __post_init__(self) -> None:
        ensure_non_negative(self.attenuation_db, "attenuation_db")
        ensure_in_range(self.reflectivity, "reflectivity", 0.0, 1.0)


@dataclass(frozen=True)
class Room:
    """A 2-D room: bounding box plus a set of walls/obstacles.

    ``bounds`` is ``(xmin, ymin, xmax, ymax)`` in metres; it must contain
    every wall endpoint. The sensing area (reference grid) is typically a
    sub-rectangle of the room.
    """

    bounds: tuple[float, float, float, float]
    walls: tuple[Wall, ...] = field(default_factory=tuple)
    name: str = ""

    def __post_init__(self) -> None:
        xmin, ymin, xmax, ymax = map(float, self.bounds)
        if not (xmax > xmin and ymax > ymin):
            raise GeometryError(f"empty room bounds {self.bounds}")
        object.__setattr__(self, "bounds", (xmin, ymin, xmax, ymax))
        object.__setattr__(self, "walls", tuple(self.walls))
        pad = 1e-9
        for wall in self.walls:
            for pt in (wall.segment.a, wall.segment.b):
                if not (
                    xmin - pad <= pt[0] <= xmax + pad
                    and ymin - pad <= pt[1] <= ymax + pad
                ):
                    raise GeometryError(
                        f"wall endpoint {pt} outside room bounds {self.bounds}"
                    )

    @property
    def width(self) -> float:
        return self.bounds[2] - self.bounds[0]

    @property
    def height(self) -> float:
        return self.bounds[3] - self.bounds[1]

    @property
    def reflective_walls(self) -> tuple[Wall, ...]:
        """Walls that contribute reflected (multipath) rays."""
        return tuple(w for w in self.walls if w.reflectivity > 0.0)

    def contains(self, point: Sequence[float], *, pad: float = 0.0) -> bool:
        """True if the point lies within the (optionally padded) bounds."""
        x, y = float(point[0]), float(point[1])
        xmin, ymin, xmax, ymax = self.bounds
        return (
            xmin - pad <= x <= xmax + pad and ymin - pad <= y <= ymax + pad
        )

    def crossing_attenuation_db(
        self, a: Sequence[float], b: Sequence[float]
    ) -> float:
        """Total penetration loss (dB) of the straight path from a to b.

        Each wall crossed by the path contributes its ``attenuation_db``.
        """
        path = Segment((float(a[0]), float(a[1])), (float(b[0]), float(b[1])))
        total = 0.0
        for wall in self.walls:
            if wall.attenuation_db > 0.0 and segments_intersect(path, wall.segment):
                total += wall.attenuation_db
        return total

    def with_walls(self, extra: Iterable[Wall]) -> "Room":
        """Return a copy of this room with additional walls/obstacles."""
        return Room(
            bounds=self.bounds, walls=self.walls + tuple(extra), name=self.name
        )


def rectangular_room(
    width: float,
    height: float,
    *,
    origin: tuple[float, float] = (0.0, 0.0),
    attenuation_db: float = 10.0,
    reflectivity: float = 0.6,
    open_sides: Sequence[str] = (),
    name: str = "",
) -> Room:
    """Build a rectangular room whose four sides are walls.

    Parameters
    ----------
    open_sides:
        Subset of ``{"left", "right", "bottom", "top"}``; those sides get
        zero reflectivity and zero attenuation (a semi-open area such as
        the paper's Env1).
    """
    ox, oy = float(origin[0]), float(origin[1])
    w = float(width)
    h = float(height)
    if w <= 0 or h <= 0:
        raise GeometryError(f"room dimensions must be positive, got {width}x{height}")
    sides = {
        "bottom": Segment((ox, oy), (ox + w, oy)),
        "right": Segment((ox + w, oy), (ox + w, oy + h)),
        "top": Segment((ox + w, oy + h), (ox, oy + h)),
        "left": Segment((ox, oy + h), (ox, oy)),
    }
    unknown = set(open_sides) - sides.keys()
    if unknown:
        raise GeometryError(f"unknown open_sides {sorted(unknown)}")
    walls = []
    for side, seg in sides.items():
        is_open = side in open_sides
        walls.append(
            Wall(
                segment=seg,
                attenuation_db=0.0 if is_open else attenuation_db,
                reflectivity=0.0 if is_open else reflectivity,
                name=side,
            )
        )
    return Room(
        bounds=(ox, oy, ox + w, oy + h),
        walls=tuple(walls),
        name=name or f"rect-{w:g}x{h:g}",
    )
