"""2-D geometry substrate: segments, rooms with walls, reference grids,
and the canonical testbed placements from the paper."""

from .vector import Segment, segments_intersect, reflect_point, segment_intersection
from .rooms import Wall, Room, rectangular_room
from .grid import ReferenceGrid
from .placement import (
    corner_reader_positions,
    paper_testbed_grid,
    figure2a_tracking_tags,
    NON_BOUNDARY_TAGS,
    BOUNDARY_TAGS,
)

__all__ = [
    "Segment",
    "segments_intersect",
    "segment_intersection",
    "reflect_point",
    "Wall",
    "Room",
    "rectangular_room",
    "ReferenceGrid",
    "corner_reader_positions",
    "paper_testbed_grid",
    "figure2a_tracking_tags",
    "NON_BOUNDARY_TAGS",
    "BOUNDARY_TAGS",
]
