"""Canonical testbed placements from the paper.

The paper's testbed (§5): 16 reference tags in a 4x4 grid with 1 m
spacing; 4 readers at the corners, 1 m outside the nearest edge tag; and
9 tracking-tag placements (Fig. 2(a)) of which tags 1-5 are interior
("non-boundary") and tags 6-9 sit on or slightly beyond the grid edge —
Tag 9 is placed *outside* the boundary reference tags and shows the worst
accuracy.

The exact Fig. 2(a) coordinates are not printed in the paper; the values
below are read off the figure to ~0.1 m and preserve the properties the
evaluation relies on (interior vs boundary vs outside). This substitution
is recorded in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import GeometryError
from .grid import ReferenceGrid

__all__ = [
    "paper_testbed_grid",
    "corner_reader_positions",
    "figure2a_tracking_tags",
    "NON_BOUNDARY_TAGS",
    "BOUNDARY_TAGS",
]

#: Tracking-tag numbers (1-based, as in the paper) that are interior.
NON_BOUNDARY_TAGS: tuple[int, ...] = (1, 2, 3, 4, 5)

#: Tracking-tag numbers on/near/outside the grid boundary.
BOUNDARY_TAGS: tuple[int, ...] = (6, 7, 8, 9)


def paper_testbed_grid() -> ReferenceGrid:
    """The paper's 4x4, 1 m-spacing reference grid (16 real tags)."""
    return ReferenceGrid(rows=4, cols=4, spacing_x=1.0, spacing_y=1.0, origin=(0.0, 0.0))


def corner_reader_positions(
    grid: ReferenceGrid, margin: float = 1.0
) -> np.ndarray:
    """Reader coordinates at the four corners of the sensing area.

    Per the paper, each reader sits diagonally outside the corner
    reference tag with ``margin`` metres of clearance along both axes.
    Order: SW, SE, NW, NE.
    """
    if margin < 0:
        raise GeometryError(f"margin must be non-negative, got {margin}")
    xmin, ymin, xmax, ymax = grid.bounds
    return np.array(
        [
            [xmin - margin, ymin - margin],
            [xmax + margin, ymin - margin],
            [xmin - margin, ymax + margin],
            [xmax + margin, ymax + margin],
        ],
        dtype=np.float64,
    )


def figure2a_tracking_tags(grid: ReferenceGrid | None = None) -> dict[int, tuple[float, float]]:
    """The 9 tracking-tag placements of Fig. 2(a), keyed by tag number.

    Coordinates assume the paper's 4x4 1 m grid spanning [0, 3]^2; when a
    different ``grid`` is supplied the placements are scaled to its
    bounds so that the interior/boundary structure is preserved.
    """
    # Fractions of the grid extent, read off Fig. 2(a). Tags 1-5 interior,
    # 6-8 hug the boundary, 9 lies slightly outside the NE corner.
    fractional = {
        1: (0.45, 0.53),   # near the centre, well covered by 4 reference tags
        2: (0.27, 0.57),   # interior left
        3: (0.70, 0.53),   # interior right
        4: (0.57, 0.77),   # interior upper
        5: (0.80, 0.40),   # interior, towards the right
        6: (0.07, 0.10),   # near SW corner (boundary)
        7: (0.92, 0.07),   # near SE corner (boundary)
        8: (0.05, 0.93),   # near NW corner (boundary)
        9: (1.07, 1.05),   # slightly OUTSIDE the NE boundary (worst case)
    }
    if grid is None:
        grid = paper_testbed_grid()
    xmin, ymin, xmax, ymax = grid.bounds
    w = xmax - xmin
    h = ymax - ymin
    return {
        tag: (xmin + fx * w, ymin + fy * h)
        for tag, (fx, fy) in fractional.items()
    }
