"""The real reference-tag grid.

The paper's testbed places 16 real reference tags as a 4x4 grid with 1 m
spacing. :class:`ReferenceGrid` generalizes to any ``rows x cols`` grid
with independent x/y spacing (the paper's §6 notes a square grid is not
required), and provides the index bookkeeping shared by LANDMARC (which
uses the tags directly) and VIRE (which subdivides cells into virtual
tags).

Index conventions
-----------------
Tags are indexed ``(row, col)`` with row 0 at ``origin`` and y increasing
with the row index. The *flat* ordering is row-major:
``flat = row * cols + col``. All RSSI matrices over reference tags use the
flat ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import GeometryError
from ..utils.validation import ensure_positive, ensure_positive_int

__all__ = ["ReferenceGrid"]


@dataclass(frozen=True)
class ReferenceGrid:
    """A regular ``rows x cols`` lattice of real reference tags.

    Parameters
    ----------
    rows, cols:
        Number of tags per column / per row (>= 2 each, so that at least
        one physical cell exists).
    spacing_x, spacing_y:
        Distance between adjacent tags along x and y (metres).
    origin:
        Coordinate of tag ``(0, 0)``.
    """

    rows: int = 4
    cols: int = 4
    spacing_x: float = 1.0
    spacing_y: float = 1.0
    origin: tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        ensure_positive_int(self.rows, "rows", minimum=2)
        ensure_positive_int(self.cols, "cols", minimum=2)
        ensure_positive(self.spacing_x, "spacing_x")
        ensure_positive(self.spacing_y, "spacing_y")
        ox, oy = float(self.origin[0]), float(self.origin[1])
        if not (np.isfinite(ox) and np.isfinite(oy)):
            raise GeometryError(f"non-finite grid origin {self.origin}")
        object.__setattr__(self, "origin", (ox, oy))

    # -- basic properties ------------------------------------------------

    @property
    def n_tags(self) -> int:
        """Total number of real reference tags."""
        return self.rows * self.cols

    @property
    def n_cells(self) -> int:
        """Number of physical grid cells (each bounded by 4 real tags)."""
        return (self.rows - 1) * (self.cols - 1)

    @property
    def width(self) -> float:
        """Extent of the grid along x (metres)."""
        return (self.cols - 1) * self.spacing_x

    @property
    def height(self) -> float:
        """Extent of the grid along y (metres)."""
        return (self.rows - 1) * self.spacing_y

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        """``(xmin, ymin, xmax, ymax)`` of the tag lattice."""
        ox, oy = self.origin
        return (ox, oy, ox + self.width, oy + self.height)

    # -- coordinates -----------------------------------------------------

    def tag_position(self, row: int, col: int) -> tuple[float, float]:
        """Coordinate of the real tag at lattice index ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise GeometryError(
                f"tag index ({row}, {col}) outside grid {self.rows}x{self.cols}"
            )
        ox, oy = self.origin
        return (ox + col * self.spacing_x, oy + row * self.spacing_y)

    def tag_positions(self) -> np.ndarray:
        """All tag coordinates, shape ``(rows*cols, 2)``, row-major order."""
        ox, oy = self.origin
        xs = ox + np.arange(self.cols) * self.spacing_x
        ys = oy + np.arange(self.rows) * self.spacing_y
        xx, yy = np.meshgrid(xs, ys)  # yy varies along rows
        return np.column_stack([xx.ravel(), yy.ravel()])

    def flat_index(self, row: int, col: int) -> int:
        """Row-major flat index of the tag at ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise GeometryError(
                f"tag index ({row}, {col}) outside grid {self.rows}x{self.cols}"
            )
        return row * self.cols + col

    def lattice_from_flat(self, values: Sequence[float]) -> np.ndarray:
        """Reshape a flat per-tag vector into the ``(rows, cols)`` lattice."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.shape != (self.n_tags,):
            raise GeometryError(
                f"expected {self.n_tags} per-tag values, got shape {arr.shape}"
            )
        return arr.reshape(self.rows, self.cols)

    def contains(self, point: Sequence[float], *, pad: float = 0.0) -> bool:
        """True if the point lies within the grid's bounding box (+pad)."""
        x, y = float(point[0]), float(point[1])
        xmin, ymin, xmax, ymax = self.bounds
        return xmin - pad <= x <= xmax + pad and ymin - pad <= y <= ymax + pad

    def cell_of(self, point: Sequence[float]) -> tuple[int, int]:
        """Return ``(cell_row, cell_col)`` of the physical cell containing
        the point; points on the far edges map to the last cell.

        Raises :class:`GeometryError` if the point is outside the grid.
        """
        if not self.contains(point):
            raise GeometryError(f"point {tuple(point)} outside grid bounds {self.bounds}")
        ox, oy = self.origin
        col = int((float(point[0]) - ox) / self.spacing_x)
        row = int((float(point[1]) - oy) / self.spacing_y)
        return (min(row, self.rows - 2), min(col, self.cols - 2))

    def scaled(self, factor: float) -> "ReferenceGrid":
        """Return a grid with spacings multiplied by ``factor`` (same counts).

        Used by the grid-spacing ablation (paper §6 future work).
        """
        f = ensure_positive(factor, "factor")
        return ReferenceGrid(
            rows=self.rows,
            cols=self.cols,
            spacing_x=self.spacing_x * f,
            spacing_y=self.spacing_y * f,
            origin=self.origin,
        )
