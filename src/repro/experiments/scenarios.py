"""Experiment scenarios: which testbed, which tracking tags, how many trials."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from ..exceptions import ConfigurationError
from ..geometry.grid import ReferenceGrid
from ..geometry.placement import figure2a_tracking_tags, paper_testbed_grid
from ..rf.environments import EnvironmentSpec, environment_by_name
from .measurement import MeasurementSpec

__all__ = ["TestbedScenario", "paper_scenario"]


@dataclass(frozen=True)
class TestbedScenario:
    """A complete experiment description.

    Parameters
    ----------
    environment:
        Channel recipe.
    grid:
        Real reference grid.
    tracking_tags:
        Mapping of tag label -> true position.
    n_trials:
        Monte-Carlo repetitions (each with its own frozen world).
    base_seed:
        Trial ``i`` uses seed ``base_seed + i``.
    measurement:
        Reading depth and optional quantization.
    """

    environment: EnvironmentSpec
    grid: ReferenceGrid = field(default_factory=paper_testbed_grid)
    tracking_tags: Mapping[int, tuple[float, float]] = field(default_factory=dict)
    n_trials: int = 20
    base_seed: int = 0
    measurement: MeasurementSpec = field(default_factory=MeasurementSpec)

    def __post_init__(self) -> None:
        if self.n_trials < 1:
            raise ConfigurationError(f"n_trials must be >= 1, got {self.n_trials}")
        if not self.tracking_tags:
            raise ConfigurationError("scenario needs at least one tracking tag")
        object.__setattr__(self, "tracking_tags", dict(self.tracking_tags))

    def with_(self, **changes) -> "TestbedScenario":
        """Modified copy (thin wrapper over dataclasses.replace)."""
        return replace(self, **changes)

    def trial_seed(self, trial_index: int) -> int:
        """Deterministic per-trial seed."""
        if not (0 <= trial_index < self.n_trials):
            raise ConfigurationError(
                f"trial index {trial_index} out of range 0..{self.n_trials - 1}"
            )
        return self.base_seed + trial_index


def paper_scenario(
    environment: str | EnvironmentSpec = "Env3",
    *,
    n_trials: int = 20,
    base_seed: int = 0,
    n_reads: int = 10,
) -> TestbedScenario:
    """The paper's §5 testbed: 4x4 grid, 9 Fig. 2(a) tracking tags.

    ``environment`` may be a preset name ("Env1".."Env3") or a full spec.
    """
    env = (
        environment_by_name(environment)
        if isinstance(environment, str)
        else environment
    )
    grid = paper_testbed_grid()
    return TestbedScenario(
        environment=env,
        grid=grid,
        tracking_tags=figure2a_tracking_tags(grid),
        n_trials=n_trials,
        base_seed=base_seed,
        measurement=MeasurementSpec(n_reads=n_reads),
    )
