"""Regenerators for every figure in the paper's evaluation.

Each ``figN`` function reproduces the data behind the corresponding
figure and returns a structured result; each ``format_figN`` renders it
as terminal text (table + ASCII chart). The benchmark harness calls
these; EXPERIMENTS.md records paper-vs-measured values.

| Function | Paper figure | Content |
|----------|--------------|---------|
| fig2b    | Fig. 2(b)    | LANDMARC error, 9 tags x 3 environments |
| fig3     | Fig. 3       | RSSI vs distance, measured vs theoretical |
| fig4     | Fig. 4       | tag-density RF interference |
| fig6     | Fig. 6(a-c)  | VIRE vs LANDMARC per tag per environment |
| fig7     | Fig. 7       | error vs number of virtual tags (Env3) |
| fig8     | Fig. 8       | error vs threshold (Env3, N²=900) |
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..baselines.landmarc import LandmarcEstimator
from ..core.config import VIREConfig
from ..core.estimator import VIREEstimator
from ..exceptions import ConfigurationError
from ..geometry.placement import NON_BOUNDARY_TAGS, paper_testbed_grid
from ..rf.environments import env1, env2, env3
from ..rf.interference import TagInterferenceModel
from ..utils.ascii import bar_chart, format_table, line_chart
from ..utils.rng import derive_rng
from .measurement import TrialSampler
from .metrics import reduction_percent
from .runner import run_scenario
from .scenarios import paper_scenario

__all__ = [
    "fig2b", "format_fig2b",
    "fig3", "format_fig3",
    "fig4", "format_fig4",
    "fig6", "format_fig6",
    "fig7", "format_fig7",
    "fig8", "format_fig8",
    "default_vire_config",
]

_ENV_FACTORIES = (env1, env2, env3)


def default_vire_config() -> VIREConfig:
    """The paper's operating point: N² ≈ 900, adaptive threshold."""
    return VIREConfig(target_total_tags=900)


# ---------------------------------------------------------------- Fig. 2(b)


@dataclass(frozen=True)
class Fig2bResult:
    """LANDMARC per-tag mean error in each environment."""

    #: environment name -> {tag label -> mean error (m)}
    per_env: Mapping[str, Mapping[int, float]]


def fig2b(*, n_trials: int = 20, base_seed: int = 0, n_jobs: int | None = None) -> Fig2bResult:
    """LANDMARC alone across Env1/Env2/Env3 (the paper's motivation)."""
    per_env = {}
    for factory in _ENV_FACTORIES:
        env = factory()
        scenario = paper_scenario(env, n_trials=n_trials, base_seed=base_seed)
        result = run_scenario(scenario, [LandmarcEstimator()], n_jobs=n_jobs)
        per_env[env.name] = result.estimators[0].tag_means()
    return Fig2bResult(per_env=per_env)


def format_fig2b(result: Fig2bResult) -> str:
    envs = list(result.per_env)
    tags = sorted(next(iter(result.per_env.values())))
    rows = [
        [tag, *[result.per_env[e][tag] for e in envs]] for tag in tags
    ]
    table = format_table(
        ["Tag", *envs],
        rows,
        title="Fig. 2(b): LANDMARC estimation error (m) per tracking tag",
    )
    chart = bar_chart(
        tags,
        [result.per_env[envs[-1]][t] for t in tags],
        title=f"\n{envs[-1]} per-tag error",
    )
    return table + "\n" + chart


# ------------------------------------------------------------------- Fig. 3


@dataclass(frozen=True)
class Fig3Result:
    """RSSI-vs-distance curve with repeated-measurement spread."""

    distances_m: np.ndarray
    measured_mean: np.ndarray
    measured_min: np.ndarray
    measured_max: np.ndarray
    theoretical: np.ndarray


def fig3(
    *,
    environment=None,
    distances_m: Sequence[float] | None = None,
    n_reads: int = 20,
    seed: int = 0,
) -> Fig3Result:
    """RSSI vs distance: 20 readings per point vs the theoretical model.

    The paper measures a tag at increasing distance from one reader and
    plots min/mean/max of 20 readings against the smooth theoretical
    curve; the zigzag of the measured line is the point of the figure.
    """
    env = environment or env3()
    d = np.asarray(
        distances_m if distances_m is not None else np.arange(1.0, 20.5, 1.0),
        dtype=np.float64,
    )
    sampler = TrialSampler(env, paper_testbed_grid(), seed=seed)
    reads = sampler.rssi_vs_distance(d, n_reads=n_reads)
    return Fig3Result(
        distances_m=d,
        measured_mean=reads.mean(axis=1),
        measured_min=reads.min(axis=1),
        measured_max=reads.max(axis=1),
        theoretical=np.asarray(env.path_loss.rssi(d)),
    )


def format_fig3(result: Fig3Result) -> str:
    rows = [
        [f"{d:.1f}", mn, mean, mx, theo]
        for d, mn, mean, mx, theo in zip(
            result.distances_m,
            result.measured_min,
            result.measured_mean,
            result.measured_max,
            result.theoretical,
        )
    ]
    table = format_table(
        ["d (m)", "min", "mean", "max", "theoretical"],
        rows,
        float_fmt="{:.1f}",
        title="Fig. 3: RSSI (dBm) vs distance — measured (20 reads) vs theoretical",
    )
    chart = line_chart(
        result.distances_m.tolist(),
        result.measured_mean.tolist(),
        title="\nmeasured mean RSSI vs distance",
    )
    return table + "\n" + chart


# ------------------------------------------------------------------- Fig. 4


@dataclass(frozen=True)
class Fig4Result:
    """Per-tag RSSI: tags measured one at a time vs packed together."""

    independent_dbm: np.ndarray
    interference_dbm: np.ndarray


def fig4(
    *,
    n_tags: int = 20,
    distance_m: float = 2.0,
    environment=None,
    seed: int = 0,
) -> Fig4Result:
    """20 co-located tags: independent vs interfering readings.

    Independent: each tag placed at the test position alone (no
    neighbours, so the interference model contributes nothing).
    Interference: all tags packed within a few centimetres, activating
    the density-dependent corruption (paper §4.1).
    """
    if n_tags < 2:
        raise ConfigurationError(f"need at least 2 tags, got {n_tags}")
    env = environment or env2()
    sampler = TrialSampler(env, paper_testbed_grid(), seed=seed)
    reader_index = 0
    origin = sampler.reader_positions[reader_index]
    test_point = origin + np.array([distance_m, 0.0])
    rng = derive_rng(seed, "fig4")
    model = TagInterferenceModel()

    # One clean reading per tag at the same spot (sequential placement).
    clean = sampler.channel.sample_rssi(
        reader_index,
        np.tile(test_point, (n_tags, 1)),
        rng,
        n_reads=1,
    )[:, 0]

    # Packed placement: tags jittered within a 10 cm blob -> all neighbours.
    packed_positions = test_point[np.newaxis, :] + rng.uniform(
        -0.05, 0.05, size=(n_tags, 2)
    )
    packed_clean = sampler.channel.sample_rssi(
        reader_index, packed_positions, rng, n_reads=1
    )[:, 0]
    corrupted = model.corrupt(packed_clean, packed_positions, rng)
    return Fig4Result(independent_dbm=clean, interference_dbm=corrupted)


def format_fig4(result: Fig4Result) -> str:
    rows = [
        [i + 1, ind, inter]
        for i, (ind, inter) in enumerate(
            zip(result.independent_dbm, result.interference_dbm)
        )
    ]
    table = format_table(
        ["Tag", "independent (dBm)", "interference (dBm)"],
        rows,
        float_fmt="{:.1f}",
        title="Fig. 4: RF interference of co-located tags",
    )
    spread_ind = float(np.ptp(result.independent_dbm))
    spread_int = float(np.ptp(result.interference_dbm))
    return (
        table
        + f"\nspread: independent {spread_ind:.1f} dB, "
        + f"interference {spread_int:.1f} dB"
    )


# --------------------------------------------------------------- Fig. 6(a-c)


@dataclass(frozen=True)
class Fig6Result:
    """VIRE vs LANDMARC per tag per environment."""

    #: env name -> {tag -> mean error} for each estimator
    landmarc: Mapping[str, Mapping[int, float]]
    vire: Mapping[str, Mapping[int, float]]

    def reductions(self, env_name: str) -> dict[int, float]:
        """Per-tag error reduction (%) of VIRE over LANDMARC."""
        return {
            tag: reduction_percent(self.landmarc[env_name][tag], v)
            for tag, v in self.vire[env_name].items()
        }

    def non_boundary_average(self, env_name: str, estimator: str) -> float:
        """Mean error over the interior tags 1-5 (paper's headline stat)."""
        source = self.landmarc if estimator == "LANDMARC" else self.vire
        vals = [source[env_name][t] for t in NON_BOUNDARY_TAGS]
        return float(np.mean(vals))


def fig6(
    *,
    n_trials: int = 20,
    base_seed: int = 0,
    vire_config: VIREConfig | None = None,
    n_jobs: int | None = None,
) -> Fig6Result:
    """The headline comparison across all three environments."""
    grid = paper_testbed_grid()
    landmarc_out, vire_out = {}, {}
    for factory in _ENV_FACTORIES:
        env = factory()
        scenario = paper_scenario(env, n_trials=n_trials, base_seed=base_seed)
        result = run_scenario(
            scenario,
            [
                LandmarcEstimator(),
                VIREEstimator(grid, vire_config or default_vire_config()),
            ],
            n_jobs=n_jobs,
        )
        landmarc_out[env.name] = result.by_name("LANDMARC").tag_means()
        vire_out[env.name] = result.by_name("VIRE").tag_means()
    return Fig6Result(landmarc=landmarc_out, vire=vire_out)


def format_fig6(result: Fig6Result) -> str:
    blocks = []
    for env_name in result.landmarc:
        tags = sorted(result.landmarc[env_name])
        reds = result.reductions(env_name)
        rows = [
            [
                tag,
                result.landmarc[env_name][tag],
                result.vire[env_name][tag],
                f"{reds[tag]:+.0f}%",
            ]
            for tag in tags
        ]
        rows.append(
            [
                "avg(1-5)",
                result.non_boundary_average(env_name, "LANDMARC"),
                result.non_boundary_average(env_name, "VIRE"),
                "",
            ]
        )
        blocks.append(
            format_table(
                ["Tag", "LANDMARC (m)", "VIRE (m)", "reduction"],
                rows,
                title=f"Fig. 6 {env_name}: VIRE vs LANDMARC",
            )
        )
    return "\n\n".join(blocks)


# ------------------------------------------------------------------- Fig. 7


@dataclass(frozen=True)
class Fig7Result:
    """Error vs the total number of (real + virtual) reference tags."""

    total_tags: np.ndarray
    mean_error: np.ndarray
    environment_name: str


def fig7(
    *,
    total_tag_targets: Sequence[int] = (16, 100, 300, 600, 900, 1200, 1500),
    environment=None,
    n_trials: int = 15,
    base_seed: int = 0,
    n_jobs: int | None = None,
) -> Fig7Result:
    """Density sweep (paper Fig. 7, Env3): more virtual tags -> better,
    saturating around N² = 900."""
    env = environment or env3()
    grid = paper_testbed_grid()
    totals, errors = [], []
    for target in total_tag_targets:
        config = VIREConfig(target_total_tags=max(int(target), grid.n_tags))
        estimator = VIREEstimator(grid, config)
        scenario = paper_scenario(env, n_trials=n_trials, base_seed=base_seed)
        result = run_scenario(scenario, [estimator], n_jobs=n_jobs)
        summary = result.estimators[0].summary(tags=NON_BOUNDARY_TAGS)
        totals.append(estimator.virtual_grid.total_tags)
        errors.append(summary.mean)
    return Fig7Result(
        total_tags=np.asarray(totals),
        mean_error=np.asarray(errors),
        environment_name=env.name,
    )


def format_fig7(result: Fig7Result) -> str:
    rows = list(zip(result.total_tags.tolist(), result.mean_error.tolist()))
    table = format_table(
        ["N² (total tags)", "mean error (m)"],
        rows,
        title=(
            f"Fig. 7 ({result.environment_name}): virtual tag density vs "
            "non-boundary error"
        ),
    )
    chart = line_chart(
        result.total_tags.tolist(),
        result.mean_error.tolist(),
        title="\nerror vs N²",
    )
    return table + "\n" + chart


# ------------------------------------------------------------------- Fig. 8


@dataclass(frozen=True)
class Fig8Result:
    """Error vs the (fixed) elimination threshold."""

    thresholds_db: np.ndarray
    mean_error: np.ndarray
    environment_name: str


def fig8(
    *,
    thresholds_db: Sequence[float] = (
        0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0,
    ),
    environment=None,
    n_trials: int = 15,
    base_seed: int = 0,
    n_jobs: int | None = None,
) -> Fig8Result:
    """Threshold sweep (paper Fig. 8, Env3 at N²=900): a U-shaped curve.

    Too small a threshold frequently empties the intersection ("the real
    positions may be swept") — the system then has to fall back to plain
    LANDMARC, raising the average error; too large a threshold admits
    noisy regions and the weighted centroid drifts toward the grid
    centre. The sweet spot sits where the threshold matches the
    channel's effective per-reading uncertainty (1-1.5 dB on the paper's
    testbed; a bit higher in our synthetic channel — see EXPERIMENTS.md).
    """
    env = environment or env3()
    grid = paper_testbed_grid()
    errors = []
    for threshold in thresholds_db:
        config = VIREConfig(
            target_total_tags=900,
            threshold_mode="fixed",
            fixed_threshold_db=float(threshold),
            empty_fallback="landmarc",
        )
        scenario = paper_scenario(env, n_trials=n_trials, base_seed=base_seed)
        result = run_scenario(
            scenario, [VIREEstimator(grid, config)], n_jobs=n_jobs
        )
        errors.append(result.estimators[0].summary(tags=NON_BOUNDARY_TAGS).mean)
    return Fig8Result(
        thresholds_db=np.asarray(list(thresholds_db), dtype=np.float64),
        mean_error=np.asarray(errors),
        environment_name=env.name,
    )


def format_fig8(result: Fig8Result) -> str:
    rows = list(zip(result.thresholds_db.tolist(), result.mean_error.tolist()))
    table = format_table(
        ["threshold (dB)", "mean error (m)"],
        rows,
        title=(
            f"Fig. 8 ({result.environment_name}): threshold vs non-boundary "
            "error (N²=900)"
        ),
    )
    chart = line_chart(
        result.thresholds_db.tolist(),
        result.mean_error.tolist(),
        title="\nerror vs threshold",
    )
    return table + "\n" + chart
