"""Parameter sweeps and ablations beyond the paper's figures.

These cover the design choices DESIGN.md calls out and the paper's §6
future-work directions:

* interpolation scheme (linear vs polynomial vs spline),
* reader count and placement,
* grid spacing (the paper's "effects of different grid spacing"),
* boundary compensation on/off,
* equipment generation (direct RSSI vs 8-level quantization, the §3.1
  pitfall),
* w1/w2 weighting ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..baselines.landmarc import LandmarcEstimator
from ..core.boundary import BoundaryAwareEstimator
from ..core.config import VIREConfig
from ..core.estimator import VIREEstimator
from ..engine import EngineConfig, estimate_all
from ..exceptions import ConfigurationError
from ..geometry.grid import ReferenceGrid
from ..geometry.placement import (
    BOUNDARY_TAGS,
    NON_BOUNDARY_TAGS,
    figure2a_tracking_tags,
)
from ..rf.environments import EnvironmentSpec, env3
from ..rf.quantization import PowerLevelQuantizer
from ..types import Estimator
from ..utils.ascii import format_table
from .measurement import MeasurementSpec
from .runner import run_scenario
from .scenarios import TestbedScenario, paper_scenario

__all__ = [
    "SweepResult",
    "sweep_interpolation",
    "sweep_reader_count",
    "sweep_grid_spacing",
    "sweep_weighting",
    "sweep_equipment",
    "boundary_compensation_study",
    "format_sweep",
]


@dataclass(frozen=True)
class SweepResult:
    """Mean errors per swept variant."""

    parameter: str
    #: variant label -> mean non-boundary error (m)
    values: Mapping[str, float]
    environment_name: str


def format_sweep(result: SweepResult) -> str:
    rows = [[label, value] for label, value in result.values.items()]
    return format_table(
        [result.parameter, "mean error (m)"],
        rows,
        title=f"Ablation ({result.environment_name}): {result.parameter}",
    )


def _mean_error(
    scenario: TestbedScenario,
    estimator: Estimator,
    tags: Sequence[int] = NON_BOUNDARY_TAGS,
    n_jobs: int | None = None,
    engine: EngineConfig | None = None,
) -> float:
    result = run_scenario(scenario, [estimator], n_jobs=n_jobs, engine=engine)
    return result.estimators[0].summary(tags=tags).mean


def sweep_interpolation(
    *,
    environment: EnvironmentSpec | None = None,
    n_trials: int = 15,
    base_seed: int = 0,
    n_jobs: int | None = None,
    engine: EngineConfig | None = None,
) -> SweepResult:
    """Linear (the paper) vs polynomial vs spline interpolation (§6)."""
    env = environment or env3()
    scenario = paper_scenario(env, n_trials=n_trials, base_seed=base_seed)
    grid = scenario.grid
    values = {}
    for kind in ("linear", "polynomial", "spline"):
        config = VIREConfig(target_total_tags=900, interpolation=kind)
        values[kind] = _mean_error(
            scenario, VIREEstimator(grid, config), n_jobs=n_jobs, engine=engine
        )
    return SweepResult(
        parameter="interpolation", values=values, environment_name=env.name
    )


def sweep_reader_count(
    *,
    environment: EnvironmentSpec | None = None,
    reader_counts: Sequence[int] = (2, 3, 4),
    n_trials: int = 15,
    base_seed: int = 0,
) -> SweepResult:
    """Effect of the number of readers (paper §6 future work).

    Readers are dropped from the canonical 4-corner deployment (SW, SE,
    NW, NE order), exercising ``TrackingReading.subset_readers``. Each
    trial's readings are localized as one batch through the vectorized
    engine (readings are sampled in the historical tag order first, so
    the RNG draw sequence — and hence every number — is unchanged).
    """
    env = environment or env3()
    scenario = paper_scenario(env, n_trials=n_trials, base_seed=base_seed)
    grid = scenario.grid
    values: dict[str, float] = {}
    for count in reader_counts:
        if not (1 <= count <= 4):
            raise ConfigurationError(f"reader count must be 1..4, got {count}")
        keep = list(range(count))
        vire = VIREEstimator(grid, VIREConfig(target_total_tags=900))
        errors = []
        from .measurement import TrialSampler  # local import to avoid cycle

        for trial in range(scenario.n_trials):
            sampler = TrialSampler(
                env, grid, seed=scenario.trial_seed(trial),
                measurement=scenario.measurement,
            )
            positions = [scenario.tracking_tags[t] for t in NON_BOUNDARY_TAGS]
            readings = [
                sampler.reading_for(pos).subset_readers(keep)
                for pos in positions
            ]
            for result, true_pos in zip(
                estimate_all(vire, readings), positions
            ):
                errors.append(result.error_to(true_pos))
        values[f"{count} readers"] = float(np.mean(errors))
    return SweepResult(
        parameter="reader count", values=values, environment_name=env.name
    )


def sweep_grid_spacing(
    *,
    environment: EnvironmentSpec | None = None,
    spacing_factors: Sequence[float] = (0.75, 1.0, 1.25),
    n_trials: int = 15,
    base_seed: int = 0,
    n_jobs: int | None = None,
    engine: EngineConfig | None = None,
) -> SweepResult:
    """Effect of reference-grid spacing (paper §6 future work).

    The grid keeps 4x4 tags; the spacing scales, and the tracking tags
    scale with the grid bounds (the Fig. 2(a) placements are fractional).
    """
    env = environment or env3()
    values = {}
    for factor in spacing_factors:
        grid = ReferenceGrid().scaled(factor)
        scenario = TestbedScenario(
            environment=env,
            grid=grid,
            tracking_tags=figure2a_tracking_tags(grid),
            n_trials=n_trials,
            base_seed=base_seed,
        )
        vire = VIREEstimator(grid, VIREConfig(target_total_tags=900))
        values[f"{grid.spacing_x:.2f} m"] = _mean_error(
            scenario, vire, n_jobs=n_jobs, engine=engine
        )
    return SweepResult(
        parameter="grid spacing", values=values, environment_name=env.name
    )


def sweep_weighting(
    *,
    environment: EnvironmentSpec | None = None,
    n_trials: int = 15,
    base_seed: int = 0,
    n_jobs: int | None = None,
    engine: EngineConfig | None = None,
) -> SweepResult:
    """Ablate the w1/w2 weighting factors of §4.3."""
    env = environment or env3()
    scenario = paper_scenario(env, n_trials=n_trials, base_seed=base_seed)
    grid = scenario.grid
    variants = {
        "w1 inverse + w2": VIREConfig(target_total_tags=900),
        "w1 paper-literal + w2": VIREConfig(
            target_total_tags=900, w1_mode="paper-literal"
        ),
        "w1 only": VIREConfig(target_total_tags=900, use_w2=False),
        "w2 only": VIREConfig(target_total_tags=900, w1_mode="uniform"),
        "unweighted": VIREConfig(
            target_total_tags=900, w1_mode="uniform", use_w2=False
        ),
    }
    values = {
        label: _mean_error(
            scenario, VIREEstimator(grid, config), n_jobs=n_jobs, engine=engine
        )
        for label, config in variants.items()
    }
    return SweepResult(
        parameter="weighting", values=values, environment_name=env.name
    )


def sweep_equipment(
    *,
    environment: EnvironmentSpec | None = None,
    n_trials: int = 15,
    base_seed: int = 0,
    n_jobs: int | None = None,
    engine: EngineConfig | None = None,
) -> SweepResult:
    """Direct RSSI vs the original 8-level power quantization (§3.1).

    Quantifies how much of LANDMARC's original inaccuracy was the
    equipment rather than the algorithm.
    """
    env = environment or env3()
    values = {}
    for label, quantizer in (
        ("direct RSSI", None),
        ("8 power levels", PowerLevelQuantizer()),
    ):
        scenario = paper_scenario(
            env, n_trials=n_trials, base_seed=base_seed
        ).with_(measurement=MeasurementSpec(n_reads=10, quantizer=quantizer))
        values[label] = _mean_error(
            scenario, LandmarcEstimator(), n_jobs=n_jobs, engine=engine
        )
    return SweepResult(
        parameter="equipment (LANDMARC)", values=values, environment_name=env.name
    )


@dataclass(frozen=True)
class BoundaryStudyResult:
    """Boundary compensation: errors on interior vs boundary tags."""

    plain_interior: float
    plain_boundary: float
    compensated_interior: float
    compensated_boundary: float
    environment_name: str


def boundary_compensation_study(
    *,
    environment: EnvironmentSpec | None = None,
    n_trials: int = 15,
    base_seed: int = 0,
    extension_cells: int = 1,
    n_jobs: int | None = None,
    engine: EngineConfig | None = None,
) -> BoundaryStudyResult:
    """Plain VIRE vs the §6 boundary-aware variant."""
    env = environment or env3()
    scenario = paper_scenario(env, n_trials=n_trials, base_seed=base_seed)
    grid = scenario.grid
    plain = VIREEstimator(grid, VIREConfig(target_total_tags=900))
    aware = BoundaryAwareEstimator(
        grid,
        VIREConfig(target_total_tags=900),
        extension_cells=extension_cells,
    )
    result = run_scenario(scenario, [plain, aware], n_jobs=n_jobs, engine=engine)
    plain_err = result.by_name("VIRE")
    aware_err = result.by_name("VIRE+boundary")
    return BoundaryStudyResult(
        plain_interior=plain_err.summary(tags=NON_BOUNDARY_TAGS).mean,
        plain_boundary=plain_err.summary(tags=BOUNDARY_TAGS).mean,
        compensated_interior=aware_err.summary(tags=NON_BOUNDARY_TAGS).mean,
        compensated_boundary=aware_err.summary(tags=BOUNDARY_TAGS).mean,
        environment_name=env.name,
    )
