"""Scenario runner: estimators x tracking tags x Monte-Carlo trials.

The runner is the single code path behind Figs. 2(b), 6, 7 and 8 — each
figure regenerator builds a scenario (or a family of them) and hands it
here together with the estimators to compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Mapping, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..types import Estimator, estimation_error
from ..utils.parallel import map_trials
from .measurement import TrialSampler
from .metrics import ErrorSummary, summarize_errors
from .scenarios import TestbedScenario

__all__ = ["EstimatorErrors", "ScenarioResult", "run_scenario"]


@dataclass(frozen=True)
class EstimatorErrors:
    """Per-tag error samples of one estimator over all trials."""

    estimator_name: str
    #: tag label -> array of per-trial errors (metres)
    per_tag: Mapping[int, np.ndarray]

    def tag_means(self) -> dict[int, float]:
        """Mean error per tracking tag — the bars of Figs. 2(b)/6."""
        return {t: float(v.mean()) for t, v in self.per_tag.items()}

    def all_errors(self) -> np.ndarray:
        """Flat sample across tags and trials."""
        return np.concatenate([np.asarray(v) for v in self.per_tag.values()])

    def summary(self, tags: Sequence[int] | None = None) -> ErrorSummary:
        """Summary over all (or selected) tags."""
        if tags is None:
            sample = self.all_errors()
        else:
            missing = [t for t in tags if t not in self.per_tag]
            if missing:
                raise ConfigurationError(f"unknown tag labels {missing}")
            sample = np.concatenate([np.asarray(self.per_tag[t]) for t in tags])
        return summarize_errors(sample)


@dataclass(frozen=True)
class ScenarioResult:
    """All estimators' errors for one scenario."""

    scenario: TestbedScenario
    estimators: tuple[EstimatorErrors, ...]

    def by_name(self, name: str) -> EstimatorErrors:
        for e in self.estimators:
            if e.estimator_name == name:
                return e
        raise ConfigurationError(
            f"no estimator named {name!r}; have "
            f"{[e.estimator_name for e in self.estimators]}"
        )


def _run_one_trial(
    trial_index: int,
    *,
    scenario: TestbedScenario,
    estimators: Sequence[Estimator],
) -> dict[str, dict[int, float]]:
    """Errors of every estimator at every tag for one frozen world."""
    sampler = TrialSampler(
        scenario.environment,
        scenario.grid,
        seed=scenario.trial_seed(trial_index),
        measurement=scenario.measurement,
    )
    out: dict[str, dict[int, float]] = {est.name: {} for est in estimators}
    for tag_label, true_pos in scenario.tracking_tags.items():
        reading = sampler.reading_for(true_pos)
        for est in estimators:
            result = est.estimate(reading)
            out[est.name][tag_label] = estimation_error(result.position, true_pos)
    return out


def run_scenario(
    scenario: TestbedScenario,
    estimators: Sequence[Estimator],
    *,
    n_jobs: int | None = None,
) -> ScenarioResult:
    """Run every estimator over every trial of the scenario.

    All estimators see the *same* readings within a trial, so comparisons
    are paired (the variance of the LANDMARC-vs-VIRE difference is much
    smaller than of either error alone).
    """
    if not estimators:
        raise ConfigurationError("need at least one estimator")
    names = [e.name for e in estimators]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"estimator names must be unique, got {names}")

    trial_fn = partial(_run_one_trial, scenario=scenario, estimators=estimators)
    trial_outputs = map_trials(trial_fn, range(scenario.n_trials), n_jobs=n_jobs)

    collected: list[EstimatorErrors] = []
    for est in estimators:
        per_tag = {
            tag: np.array(
                [trial_out[est.name][tag] for trial_out in trial_outputs]
            )
            for tag in scenario.tracking_tags
        }
        collected.append(
            EstimatorErrors(estimator_name=est.name, per_tag=per_tag)
        )
    return ScenarioResult(scenario=scenario, estimators=tuple(collected))
