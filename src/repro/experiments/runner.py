"""Scenario runner: estimators x tracking tags x Monte-Carlo trials.

The runner is the single code path behind Figs. 2(b), 6, 7 and 8 — each
figure regenerator builds a scenario (or a family of them) and hands it
here together with the estimators to compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..engine import EngineConfig, estimate_all, map_shards
from ..exceptions import ConfigurationError

if TYPE_CHECKING:  # type-only: runner stays importable without runtime
    from ..runtime.policy import RuntimePolicy
from ..types import Estimator, estimation_error
from .measurement import TrialSampler
from .metrics import ErrorSummary, summarize_errors
from .scenarios import TestbedScenario

__all__ = ["EstimatorErrors", "ScenarioResult", "run_scenario"]


@dataclass(frozen=True)
class EstimatorErrors:
    """Per-tag error samples of one estimator over all trials."""

    estimator_name: str
    #: tag label -> array of per-trial errors (metres)
    per_tag: Mapping[int, np.ndarray]

    def tag_means(self) -> dict[int, float]:
        """Mean error per tracking tag — the bars of Figs. 2(b)/6."""
        return {t: float(v.mean()) for t, v in self.per_tag.items()}

    def all_errors(self) -> np.ndarray:
        """Flat sample across tags and trials."""
        return np.concatenate([np.asarray(v) for v in self.per_tag.values()])

    def summary(self, tags: Sequence[int] | None = None) -> ErrorSummary:
        """Summary over all (or selected) tags."""
        if tags is None:
            sample = self.all_errors()
        else:
            missing = [t for t in tags if t not in self.per_tag]
            if missing:
                raise ConfigurationError(f"unknown tag labels {missing}")
            sample = np.concatenate([np.asarray(self.per_tag[t]) for t in tags])
        return summarize_errors(sample)


@dataclass(frozen=True)
class ScenarioResult:
    """All estimators' errors for one scenario."""

    scenario: TestbedScenario
    estimators: tuple[EstimatorErrors, ...]

    def by_name(self, name: str) -> EstimatorErrors:
        for e in self.estimators:
            if e.estimator_name == name:
                return e
        raise ConfigurationError(
            f"no estimator named {name!r}; have "
            f"{[e.estimator_name for e in self.estimators]}"
        )


def _run_one_trial(
    trial_index: int,
    *,
    scenario: TestbedScenario,
    estimators: Sequence[Estimator],
) -> dict[str, dict[int, float]]:
    """Errors of every estimator at every tag for one frozen world.

    Readings are sampled for all tags first — in the scenario's tag
    order, so the sampler's RNG draw sequence matches the historical
    tag-by-tag loop — and then each estimator localizes them as one
    batch through :func:`repro.engine.estimate_all` (the vectorized
    engine when the estimator provides ``estimate_batch``, a scalar loop
    otherwise; both bitwise identical to per-tag calls).
    """
    sampler = TrialSampler(
        scenario.environment,
        scenario.grid,
        seed=scenario.trial_seed(trial_index),
        measurement=scenario.measurement,
    )
    labels = list(scenario.tracking_tags)
    readings = [
        sampler.reading_for(scenario.tracking_tags[label]) for label in labels
    ]
    out: dict[str, dict[int, float]] = {}
    for est in estimators:
        results = estimate_all(est, readings)
        out[est.name] = {
            label: estimation_error(
                result.position, scenario.tracking_tags[label]
            )
            for label, result in zip(labels, results)
        }
    return out


def _run_trial_shard(
    shard: Sequence[int],
    *,
    scenario: TestbedScenario,
    estimators: Sequence[Estimator],
) -> list[dict[str, dict[int, float]]]:
    """One worker's unit: a contiguous shard of trial indices."""
    return [
        _run_one_trial(i, scenario=scenario, estimators=estimators)
        for i in shard
    ]


def run_scenario(
    scenario: TestbedScenario,
    estimators: Sequence[Estimator],
    *,
    n_jobs: int | None = None,
    engine: EngineConfig | None = None,
    runtime: "RuntimePolicy | None" = None,
) -> ScenarioResult:
    """Run every estimator over every trial of the scenario.

    All estimators see the *same* readings within a trial, so comparisons
    are paired (the variance of the LANDMARC-vs-VIRE difference is much
    smaller than of either error alone).

    Parameters
    ----------
    n_jobs:
        Back-compat worker count; overrides ``engine.n_jobs`` when both
        are given.
    engine:
        :class:`~repro.engine.EngineConfig` scheduling the trial shards
        (worker processes, snapshots per shard). Results are bit-identical
        whatever the knobs — sharding only changes how trial indices are
        shipped to workers.
    runtime:
        Optional :class:`~repro.runtime.policy.RuntimePolicy`; overrides
        ``engine.runtime`` when given. A supervised policy lets a sweep
        survive worker death/hangs with bit-identical results (a crashed
        shard is retried and, at worst, re-executed serially).
    """
    if not estimators:
        raise ConfigurationError("need at least one estimator")
    names = [e.name for e in estimators]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"estimator names must be unique, got {names}")

    config = engine or EngineConfig()
    if n_jobs is not None:
        config = config.with_(n_jobs=n_jobs)
    if runtime is not None:
        config = config.with_(runtime=runtime)
    shard_fn = partial(
        _run_trial_shard, scenario=scenario, estimators=estimators
    )
    trial_outputs = map_shards(shard_fn, scenario.n_trials, config=config)

    collected: list[EstimatorErrors] = []
    for est in estimators:
        per_tag = {
            tag: np.array(
                [trial_out[est.name][tag] for trial_out in trial_outputs]
            )
            for tag in scenario.tracking_tags
        }
        collected.append(
            EstimatorErrors(estimator_name=est.name, per_tag=per_tag)
        )
    return ScenarioResult(scenario=scenario, estimators=tuple(collected))
