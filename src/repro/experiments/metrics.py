"""Error metrics and summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["ErrorSummary", "summarize_errors", "reduction_percent", "error_cdf"]


@dataclass(frozen=True)
class ErrorSummary:
    """Distribution summary of estimation errors (metres)."""

    mean: float
    median: float
    p90: float
    maximum: float
    n: int

    def as_row(self) -> tuple[float, float, float, float, int]:
        return (self.mean, self.median, self.p90, self.maximum, self.n)


def summarize_errors(errors: Sequence[float]) -> ErrorSummary:
    """Summarize a sample of estimation errors."""
    arr = np.asarray(list(errors), dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("cannot summarize an empty error sample")
    if np.any(arr < 0) or not np.all(np.isfinite(arr)):
        raise ConfigurationError("errors must be finite and non-negative")
    return ErrorSummary(
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        p90=float(np.percentile(arr, 90)),
        maximum=float(arr.max()),
        n=int(arr.size),
    )


def reduction_percent(baseline: float, improved: float) -> float:
    """Error reduction of ``improved`` over ``baseline`` in percent.

    The paper's headline metric: "reduces the estimation error from 17%
    to 73% over LANDMARC". Positive means ``improved`` is better.
    """
    if baseline <= 0:
        raise ConfigurationError(
            f"baseline error must be positive, got {baseline}"
        )
    if improved < 0:
        raise ConfigurationError(f"improved error must be >= 0, got {improved}")
    return 100.0 * (1.0 - improved / baseline)


def error_cdf(
    errors: Sequence[float], levels: Sequence[float] | None = None
) -> list[tuple[float, float]]:
    """Empirical CDF of errors at the given levels (metres).

    Returns ``[(level, fraction_below_or_equal), ...]``. Default levels
    span 0.1 m to the sample maximum in ten steps.
    """
    arr = np.asarray(list(errors), dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("cannot compute a CDF of an empty sample")
    if levels is None:
        top = max(float(arr.max()), 0.1)
        levels = np.linspace(0.1, top, 10)
    return [
        (float(level), float(np.mean(arr <= level))) for level in levels
    ]
