"""Experiment harness: scenarios, runners and the paper's figures.

Each figure of the paper's evaluation has a regenerator in
:mod:`~repro.experiments.figures`; DESIGN.md carries the experiment
index. The harness has two measurement paths:

* the *direct* path (:class:`~repro.experiments.measurement.TrialSampler`)
  samples readings straight from the channel — fast, used by the figure
  benches;
* the *testbed* path drives the full event simulation
  (:mod:`repro.hardware`) — slower, used by integration tests and the
  examples to prove the stack end-to-end.
"""

from .measurement import TrialSampler, MeasurementSpec
from .scenarios import TestbedScenario, paper_scenario
from .runner import run_scenario, ScenarioResult, EstimatorErrors
from .metrics import ErrorSummary, summarize_errors, reduction_percent
from . import figures
from . import sweeps
from . import placement
from . import scale

__all__ = [
    "TrialSampler",
    "MeasurementSpec",
    "TestbedScenario",
    "paper_scenario",
    "run_scenario",
    "ScenarioResult",
    "EstimatorErrors",
    "ErrorSummary",
    "summarize_errors",
    "reduction_percent",
    "figures",
    "sweeps",
    "placement",
    "scale",
]
