"""The direct measurement path: frozen world -> TrackingReading.

One *trial* corresponds to one instantiation of the physical testbed:
a frozen RF world (channel seed), one draw of per-tag offsets for the 16
reference tags, and a stream of noisy readings. Within a trial, multiple
tracking positions can be measured (each tracking tag is a distinct
physical tag and draws its own offset).

This path bypasses the event-driven simulator for speed — readings are
sampled directly from the channel and averaged over ``n_reads`` beacons,
which is exactly what the middleware's window smoothing converges to.
The equivalence of the two paths is covered by an integration test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..geometry.grid import ReferenceGrid
from ..geometry.placement import corner_reader_positions
from ..rf.environments import EnvironmentSpec
from ..rf.quantization import PowerLevelQuantizer
from ..types import TrackingReading
from ..utils.rng import derive_rng

__all__ = ["MeasurementSpec", "TrialSampler"]


@dataclass(frozen=True)
class MeasurementSpec:
    """How readings are taken in a trial.

    Parameters
    ----------
    n_reads:
        Beacons averaged per reported RSSI (middleware smoothing depth).
    quantizer:
        Optional 8-level power quantization emulating the original
        LANDMARC equipment (None = direct dBm readout, the paper's
        improved gear).
    """

    n_reads: int = 10
    quantizer: PowerLevelQuantizer | None = None

    def __post_init__(self) -> None:
        if self.n_reads < 1:
            raise ConfigurationError(f"n_reads must be >= 1, got {self.n_reads}")


class TrialSampler:
    """One frozen testbed world that can measure tracking positions.

    Parameters
    ----------
    environment:
        Channel recipe (Env1/Env2/Env3 or custom).
    grid:
        The real reference grid.
    seed:
        Trial seed: controls the frozen world, the tag-offset draws and
        the reading noise. Distinct trials must use distinct seeds.
    measurement:
        Reading depth / quantization.
    reader_margin_m:
        Corner-reader clearance (paper: 1 m).
    """

    def __init__(
        self,
        environment: EnvironmentSpec,
        grid: ReferenceGrid,
        *,
        seed: int = 0,
        measurement: MeasurementSpec | None = None,
        reader_margin_m: float = 1.0,
    ):
        self.environment = environment
        self.grid = grid
        self.measurement = measurement or MeasurementSpec()
        self.seed = int(seed)
        self.reader_positions = corner_reader_positions(grid, margin=reader_margin_m)
        self.channel = environment.build_channel(self.reader_positions, seed=seed)
        self._reference_positions = grid.tag_positions()

        offset_rng = derive_rng(seed, "tag-offsets")
        sigma_ref = environment.reference_tag_offset_sigma_db
        self.reference_offsets_db = (
            offset_rng.normal(0.0, sigma_ref, grid.n_tags)
            if sigma_ref > 0
            else np.zeros(grid.n_tags)
        )
        self._offset_rng = offset_rng
        self._reading_rng = derive_rng(seed, "readings")

    @property
    def reference_positions(self) -> np.ndarray:
        """``(n_refs, 2)`` known coordinates of the reference tags."""
        return self._reference_positions

    def _postprocess(self, rssi: np.ndarray) -> np.ndarray:
        if self.measurement.quantizer is not None:
            return self.measurement.quantizer.roundtrip(rssi)
        return rssi

    def reading_for(
        self, tracking_position: tuple[float, float]
    ) -> TrackingReading:
        """Measure one tracking tag at ``tracking_position``.

        Draws a fresh tracking-tag offset (each call represents a
        distinct physical tag), samples ``n_reads`` beacons of every tag
        at every reader through the frozen channel, averages, applies
        the optional quantizer, and assembles the snapshot.
        """
        pos = np.asarray(tracking_position, dtype=np.float64)
        if pos.shape != (2,):
            raise ConfigurationError(
                f"tracking_position must be 2-D, got shape {pos.shape}"
            )
        all_positions = np.vstack([self._reference_positions, pos[np.newaxis, :]])
        matrix = self.channel.sample_rssi_matrix(
            all_positions, self._reading_rng, n_reads=self.measurement.n_reads
        )
        matrix[:, :-1] += self.reference_offsets_db[np.newaxis, :]
        sigma_trk = self.environment.tracking_tag_offset_sigma_db
        if sigma_trk > 0:
            matrix[:, -1] += self._offset_rng.normal(0.0, sigma_trk)
        matrix = self._postprocess(matrix)
        return TrackingReading(
            reference_rssi=matrix[:, :-1],
            tracking_rssi=matrix[:, -1],
            reference_positions=self._reference_positions,
        )

    def rssi_vs_distance(
        self, distances_m: np.ndarray, *, reader_index: int = 0, n_reads: int = 20
    ) -> np.ndarray:
        """Repeated RSSI readings along a ray from one reader (Fig. 3).

        Places a probe tag at each distance along the +x direction from
        the chosen reader and samples ``n_reads`` readings; returns shape
        ``(n_distances, n_reads)``.
        """
        d = np.asarray(distances_m, dtype=np.float64)
        if np.any(d <= 0):
            raise ConfigurationError("distances must be positive")
        origin = self.reader_positions[reader_index]
        positions = origin[np.newaxis, :] + np.column_stack(
            [d, np.zeros_like(d)]
        )
        return self.channel.sample_rssi(
            reader_index, positions, self._reading_rng, n_reads=n_reads
        )
