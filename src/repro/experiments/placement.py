"""Reader placement evaluation and optimization (paper §6 future work).

"If we have more readers, we would like to study the effects with more
reader[s] and the placement of these readers to the performance of
VIRE." This module supplies that study:

* :func:`candidate_reader_positions` — a ring of candidate positions
  around the sensing area (corners, edge midpoints, optional inset),
* :func:`evaluate_placement` — mean VIRE error of a concrete reader set
  over a grid of validation points,
* :func:`greedy_reader_placement` — forward greedy selection: starting
  from the best single reader, repeatedly add the candidate that lowers
  the validation error most. Greedy is the standard baseline for sensor
  placement (submodular-style objectives); it recovers the paper's
  4-corner layout or beats it, depending on the environment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import VIREConfig
from ..core.estimator import VIREEstimator
from ..exceptions import ConfigurationError
from ..geometry.grid import ReferenceGrid
from ..rf.environments import EnvironmentSpec
from ..types import TrackingReading
from ..utils.rng import derive_rng

__all__ = [
    "candidate_reader_positions",
    "evaluate_placement",
    "greedy_reader_placement",
    "PlacementResult",
]


def candidate_reader_positions(
    grid: ReferenceGrid,
    *,
    margin_m: float = 1.0,
    include_edge_midpoints: bool = True,
    include_inset_corners: bool = False,
) -> np.ndarray:
    """Candidate reader sites on a ring ``margin_m`` outside the grid.

    Always includes the four corners (the paper's deployment); edge
    midpoints and inset corners (halfway between centre and corner)
    extend the search space.
    """
    if margin_m < 0:
        raise ConfigurationError(f"margin must be >= 0, got {margin_m}")
    xmin, ymin, xmax, ymax = grid.bounds
    lo_x, hi_x = xmin - margin_m, xmax + margin_m
    lo_y, hi_y = ymin - margin_m, ymax + margin_m
    mid_x, mid_y = (xmin + xmax) / 2.0, (ymin + ymax) / 2.0
    candidates = [
        (lo_x, lo_y), (hi_x, lo_y), (lo_x, hi_y), (hi_x, hi_y),  # corners
    ]
    if include_edge_midpoints:
        candidates += [
            (mid_x, lo_y), (mid_x, hi_y), (lo_x, mid_y), (hi_x, mid_y),
        ]
    if include_inset_corners:
        candidates += [
            ((lo_x + mid_x) / 2, (lo_y + mid_y) / 2),
            ((hi_x + mid_x) / 2, (lo_y + mid_y) / 2),
            ((lo_x + mid_x) / 2, (hi_y + mid_y) / 2),
            ((hi_x + mid_x) / 2, (hi_y + mid_y) / 2),
        ]
    return np.asarray(candidates, dtype=np.float64)


def _validation_points(grid: ReferenceGrid, per_axis: int) -> np.ndarray:
    """Interior validation lattice, offset from the reference tags."""
    xmin, ymin, xmax, ymax = grid.bounds
    xs = np.linspace(xmin + 0.2, xmax - 0.2, per_axis)
    ys = np.linspace(ymin + 0.2, ymax - 0.2, per_axis)
    xx, yy = np.meshgrid(xs, ys)
    return np.column_stack([xx.ravel(), yy.ravel()])


def evaluate_placement(
    environment: EnvironmentSpec,
    grid: ReferenceGrid,
    reader_positions: np.ndarray,
    *,
    config: VIREConfig | None = None,
    validation_per_axis: int = 4,
    n_trials: int = 5,
    n_reads: int = 8,
    base_seed: int = 0,
) -> float:
    """Mean VIRE error (m) of one reader layout over validation points.

    Builds a fresh channel per trial (so the score is not tied to one
    frozen world) and averages over a small validation lattice.
    """
    readers = np.asarray(reader_positions, dtype=np.float64)
    if readers.ndim != 2 or readers.shape[1] != 2 or readers.shape[0] < 2:
        raise ConfigurationError(
            f"need at least 2 readers with shape (K, 2), got {readers.shape}"
        )
    for pos in readers:
        if not environment.room.contains(pos, pad=1e-9):
            raise ConfigurationError(
                f"candidate reader {tuple(pos)} outside the room"
            )
    estimator = VIREEstimator(grid, config or VIREConfig(target_total_tags=900))
    points = _validation_points(grid, validation_per_axis)
    ref_positions = grid.tag_positions()
    sigma_ref = environment.reference_tag_offset_sigma_db
    sigma_trk = environment.tracking_tag_offset_sigma_db

    errors = []
    for trial in range(n_trials):
        seed = base_seed + trial
        channel = environment.build_channel(readers, seed=seed)
        offset_rng = derive_rng(seed, "tag-offsets")
        ref_offsets = (
            offset_rng.normal(0.0, sigma_ref, grid.n_tags)
            if sigma_ref > 0 else np.zeros(grid.n_tags)
        )
        reading_rng = derive_rng(seed, "readings")
        for point in points:
            all_pos = np.vstack([ref_positions, point[np.newaxis, :]])
            matrix = channel.sample_rssi_matrix(
                all_pos, reading_rng, n_reads=n_reads
            )
            matrix[:, :-1] += ref_offsets[np.newaxis, :]
            if sigma_trk > 0:
                matrix[:, -1] += offset_rng.normal(0.0, sigma_trk)
            reading = TrackingReading(
                reference_rssi=matrix[:, :-1],
                tracking_rssi=matrix[:, -1],
                reference_positions=ref_positions,
            )
            estimate = estimator.estimate(reading)
            errors.append(
                float(np.hypot(estimate.x - point[0], estimate.y - point[1]))
            )
    return float(np.mean(errors))


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of the greedy placement search."""

    selected_positions: np.ndarray     # (K, 2) in selection order
    selected_indices: tuple[int, ...]  # into the candidate array
    error_trace: tuple[float, ...]     # validation error after each addition


def greedy_reader_placement(
    environment: EnvironmentSpec,
    grid: ReferenceGrid,
    candidates: np.ndarray,
    *,
    n_readers: int = 4,
    config: VIREConfig | None = None,
    n_trials: int = 3,
    base_seed: int = 0,
) -> PlacementResult:
    """Forward greedy selection of ``n_readers`` sites from ``candidates``.

    The first step evaluates candidate *pairs* containing each candidate
    (a single reader cannot localize), then grows the set one reader at a
    time, always adding the candidate with the lowest resulting
    validation error.
    """
    cand = np.asarray(candidates, dtype=np.float64)
    if cand.ndim != 2 or cand.shape[1] != 2:
        raise ConfigurationError(f"candidates must be (n, 2), got {cand.shape}")
    if not (2 <= n_readers <= cand.shape[0]):
        raise ConfigurationError(
            f"n_readers must be in 2..{cand.shape[0]}, got {n_readers}"
        )

    def score(indices: list[int]) -> float:
        return evaluate_placement(
            environment, grid, cand[indices],
            config=config, n_trials=n_trials, base_seed=base_seed,
        )

    # Seed with the best pair.
    best_pair, best_err = None, np.inf
    n = cand.shape[0]
    for i in range(n):
        for j in range(i + 1, n):
            err = score([i, j])
            if err < best_err:
                best_pair, best_err = [i, j], err
    assert best_pair is not None
    selected = best_pair
    trace = [best_err]

    while len(selected) < n_readers:
        best_idx, best_err = None, np.inf
        for idx in range(n):
            if idx in selected:
                continue
            err = score(selected + [idx])
            if err < best_err:
                best_idx, best_err = idx, err
        assert best_idx is not None
        selected.append(best_idx)
        trace.append(best_err)

    return PlacementResult(
        selected_positions=cand[selected],
        selected_indices=tuple(selected),
        error_trace=tuple(trace),
    )
