"""Large-scale testbeds (paper §6 future work).

"Due to the limitation on the number of tags and readers we have, we are
unable to provide a larger scale system performance study. As the future
work, we would like to build a much larger reference tag array in a much
larger sensing area."

This module builds that study synthetically: reference grids of any
size inside proportionally scaled rooms, tracking tags scattered over
the whole sensing area, and optional extra readers (a perimeter ring
instead of 4 corners).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..exceptions import ConfigurationError
from ..geometry.grid import ReferenceGrid
from ..geometry.rooms import rectangular_room
from ..rf.environments import EnvironmentSpec, env3
from ..utils.rng import derive_rng
from .scenarios import TestbedScenario

__all__ = ["scaled_environment", "large_scale_scenario", "perimeter_reader_positions"]


def scaled_environment(
    base: EnvironmentSpec,
    grid: ReferenceGrid,
    *,
    wall_clearance_m: float = 2.5,
) -> EnvironmentSpec:
    """Re-house a channel recipe in a room sized for a larger grid.

    Keeps every propagation parameter of ``base``; replaces the room with
    a rectangle leaving ``wall_clearance_m`` beyond the reader ring
    (readers sit 1 m outside the grid).
    """
    if wall_clearance_m <= 1.0:
        raise ConfigurationError(
            f"wall_clearance_m must exceed the 1 m reader margin, got "
            f"{wall_clearance_m}"
        )
    xmin, ymin, xmax, ymax = grid.bounds
    pad = wall_clearance_m
    room = rectangular_room(
        (xmax - xmin) + 2 * pad,
        (ymax - ymin) + 2 * pad,
        origin=(xmin - pad, ymin - pad),
        attenuation_db=base.room.walls[0].attenuation_db if base.room.walls else 12.0,
        reflectivity=max((w.reflectivity for w in base.room.walls), default=0.5),
        name=f"{base.room.name}-scaled",
    )
    return replace(base, room=room, name=f"{base.name}-L")


def perimeter_reader_positions(
    grid: ReferenceGrid, *, per_side: int = 2, margin_m: float = 1.0
) -> np.ndarray:
    """Readers evenly spaced around the grid's perimeter.

    ``per_side=1`` gives edge midpoints; ``per_side=2`` corners plus
    midpoints style coverage (2 per side, 8 total), etc. Corner positions
    are always included.
    """
    if per_side < 1:
        raise ConfigurationError(f"per_side must be >= 1, got {per_side}")
    xmin, ymin, xmax, ymax = grid.bounds
    lo_x, hi_x = xmin - margin_m, xmax + margin_m
    lo_y, hi_y = ymin - margin_m, ymax + margin_m
    xs = np.linspace(lo_x, hi_x, per_side + 2)
    ys = np.linspace(lo_y, hi_y, per_side + 2)
    ring: list[tuple[float, float]] = []
    for x in xs:
        ring.append((float(x), lo_y))
        ring.append((float(x), hi_y))
    for y in ys[1:-1]:
        ring.append((lo_x, float(y)))
        ring.append((hi_x, float(y)))
    # Deduplicate (corners appear twice) while preserving order.
    seen: set[tuple[float, float]] = set()
    out = []
    for p in ring:
        if p not in seen:
            seen.add(p)
            out.append(p)
    return np.asarray(out, dtype=np.float64)


def large_scale_scenario(
    *,
    rows: int = 8,
    cols: int = 8,
    spacing_m: float = 1.0,
    base_environment: EnvironmentSpec | None = None,
    n_tracking_tags: int = 12,
    n_trials: int = 10,
    base_seed: int = 0,
    tag_seed: int = 123,
) -> TestbedScenario:
    """A §6-style large testbed: ``rows x cols`` grid, scattered tags.

    Tracking tags are placed uniformly at random strictly inside the
    grid (0.2 m margin), labelled 1..n. The environment is the chosen
    base recipe re-housed in a proportionally larger room.
    """
    if n_tracking_tags < 1:
        raise ConfigurationError("need at least one tracking tag")
    grid = ReferenceGrid(rows=rows, cols=cols, spacing_x=spacing_m,
                         spacing_y=spacing_m)
    environment = scaled_environment(base_environment or env3(), grid)
    rng = derive_rng(tag_seed, "large-scale-tags")
    xmin, ymin, xmax, ymax = grid.bounds
    tags = {
        i + 1: (
            float(rng.uniform(xmin + 0.2, xmax - 0.2)),
            float(rng.uniform(ymin + 0.2, ymax - 0.2)),
        )
        for i in range(n_tracking_tags)
    }
    return TestbedScenario(
        environment=environment,
        grid=grid,
        tracking_tags=tags,
        n_trials=n_trials,
        base_seed=base_seed,
    )
