"""Offline RSSI fingerprinting (RADAR-style, the paper's reference [4]).

RADAR (Bahl & Padmanabhan, INFOCOM 2000) localizes by matching the
online RSSI vector against a *radio map* collected in an offline
calibration phase. It is the classical alternative to LANDMARC/VIRE's
reference-tag approach, with an instructive trade-off:

* Fingerprinting captures the *true* field at every calibration point —
  no interpolation error — but the map goes stale the moment the
  environment changes, and the survey is expensive.
* LANDMARC/VIRE calibrate *continuously* through the live reference
  tags, at the price of sparse spatial sampling.

:class:`FingerprintEstimator` implements the offline approach against
our synthetic channel: :meth:`calibrate` surveys a lattice of positions
through a (separate) calibration sampler, and :meth:`estimate` does
weighted-kNN matching in fingerprint space. Comparing it against VIRE
under environment drift (a different frozen world at test time) is the
ablation that shows *why* the live-reference approach wins in dynamic
rooms — exactly the argument of the LANDMARC paper.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EstimationError, ReadingError
from ..geometry.grid import ReferenceGrid
from ..rf.channel import RFChannel
from ..types import EstimateResult, TrackingReading
from ..utils.validation import ensure_positive_int

__all__ = ["FingerprintEstimator"]


class FingerprintEstimator:
    """Weighted-kNN matching against an offline-calibrated radio map.

    Parameters
    ----------
    k:
        Neighbour count of the fingerprint match.
    resolution:
        Calibration lattice density per axis (``resolution²`` survey
        points over the grid bounds).
    """

    name = "Fingerprint"

    def __init__(self, k: int = 4, *, resolution: int = 12):
        self.k = ensure_positive_int(k, "k")
        self.resolution = ensure_positive_int(resolution, "resolution", minimum=2)
        self._map_positions: np.ndarray | None = None
        self._map_rssi: np.ndarray | None = None  # (K, n_points)

    @property
    def calibrated(self) -> bool:
        return self._map_rssi is not None

    def calibrate(
        self,
        channel: RFChannel,
        grid: ReferenceGrid,
        rng: np.random.Generator,
        *,
        n_reads: int = 20,
    ) -> int:
        """Survey the sensing area through ``channel`` (the offline phase).

        Returns the number of surveyed points. The channel passed here is
        the *calibration-time* world; pass a channel with a different
        seed to :meth:`estimate`'s readings to model environment drift.
        """
        xmin, ymin, xmax, ymax = grid.bounds
        xs = np.linspace(xmin, xmax, self.resolution)
        ys = np.linspace(ymin, ymax, self.resolution)
        xx, yy = np.meshgrid(xs, ys)
        points = np.column_stack([xx.ravel(), yy.ravel()])
        self._map_positions = points
        self._map_rssi = channel.sample_rssi_matrix(points, rng, n_reads=n_reads)
        return points.shape[0]

    def estimate(self, reading: TrackingReading) -> EstimateResult:
        if self._map_rssi is None or self._map_positions is None:
            raise EstimationError(
                "FingerprintEstimator.estimate called before calibrate()"
            )
        if reading.n_readers != self._map_rssi.shape[0]:
            raise ReadingError(
                f"reading has {reading.n_readers} readers; the radio map was "
                f"calibrated with {self._map_rssi.shape[0]}"
            )
        diff = self._map_rssi - reading.tracking_rssi[:, np.newaxis]
        e = np.linalg.norm(diff, axis=0)
        k = min(self.k, e.size)
        nearest = np.argpartition(e, k - 1)[:k]
        nearest = nearest[np.argsort(e[nearest], kind="stable")]
        inv = 1.0 / (e[nearest] ** 2 + 1e-9)
        weights = inv / inv.sum()
        xy = weights @ self._map_positions[nearest]
        return EstimateResult(
            position=(float(xy[0]), float(xy[1])),
            estimator=self.name,
            diagnostics={
                "neighbours": nearest.tolist(),
                "match_distances": e[nearest].tolist(),
                "map_points": int(self._map_positions.shape[0]),
            },
        )

    def __repr__(self) -> str:
        state = "calibrated" if self.calibrated else "uncalibrated"
        return (
            f"FingerprintEstimator(k={self.k}, resolution={self.resolution}, "
            f"{state})"
        )
