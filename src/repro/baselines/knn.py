"""Generalized weighted k-nearest-neighbour estimator.

LANDMARC is the special case ``metric="euclidean", weight_exponent=2``.
The generalization serves the ablation benches: how sensitive is the
baseline to the RSSI-space metric and to the weighting exponent? (The
original LANDMARC paper reports k and the weighting as empirical
choices.)
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..types import EstimateResult, TrackingReading
from ..utils.validation import ensure_positive_int

__all__ = ["WeightedKnnEstimator"]

_METRIC_ORDS = {"euclidean": 2.0, "manhattan": 1.0, "chebyshev": np.inf}


class WeightedKnnEstimator:
    """kNN in RSSI space with configurable metric and weighting.

    Parameters
    ----------
    k:
        Neighbour count.
    metric:
        ``"euclidean"``, ``"manhattan"`` or ``"chebyshev"`` — the norm
        across readers used for the RSSI-space distance E.
    weight_exponent:
        Weights are ``1 / E^p``; ``p=0`` yields the unweighted mean of
        the k neighbour positions.
    """

    def __init__(
        self,
        k: int = 4,
        *,
        metric: str = "euclidean",
        weight_exponent: float = 2.0,
        epsilon: float = 1e-9,
    ):
        self.k = ensure_positive_int(k, "k")
        if metric not in _METRIC_ORDS:
            raise ConfigurationError(
                f"unknown metric {metric!r}; expected one of {sorted(_METRIC_ORDS)}"
            )
        if weight_exponent < 0:
            raise ConfigurationError(
                f"weight_exponent must be >= 0, got {weight_exponent}"
            )
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self.metric = metric
        self.weight_exponent = float(weight_exponent)
        self.epsilon = float(epsilon)
        self.name = f"kNN(k={k},{metric},p={weight_exponent:g})"

    def estimate(self, reading: TrackingReading) -> EstimateResult:
        diff = reading.reference_rssi - reading.tracking_rssi[:, np.newaxis]
        e = np.linalg.norm(diff, ord=_METRIC_ORDS[self.metric], axis=0)
        n_refs = reading.n_references
        k = min(self.k, n_refs)
        if k < n_refs:
            nearest = np.argpartition(e, k)[:k]
        else:
            nearest = np.arange(n_refs)
        nearest = nearest[np.argsort(e[nearest], kind="stable")]
        e_sel = e[nearest]

        if self.weight_exponent == 0.0:
            weights = np.full(k, 1.0 / k)
        else:
            inv = 1.0 / (e_sel**self.weight_exponent + self.epsilon)
            weights = inv / inv.sum()
        coords = reading.reference_positions[nearest]
        xy = weights @ coords
        return EstimateResult(
            position=(float(xy[0]), float(xy[1])),
            estimator=self.name,
            diagnostics={"neighbours": nearest.tolist(), "weights": weights.tolist()},
        )

    def __repr__(self) -> str:
        return (
            f"WeightedKnnEstimator(k={self.k}, metric={self.metric!r}, "
            f"weight_exponent={self.weight_exponent})"
        )
