"""Triangulation-refined LANDMARC (in the spirit of the paper's ref [12]).

Jin, Lu & Park (2006) improved LANDMARC by computing an additional
coordinate from range estimates and blending it with the kNN output,
reducing both latency and error. We reproduce the idea:

1. Run classic LANDMARC to get the kNN coordinate and the neighbour set.
2. Per reader, calibrate a local log-distance model from the *reference
   tags'* known (distance, RSSI) pairs via least squares — this uses the
   reference grid as an online calibration array, requiring no prior
   channel knowledge.
3. Invert the model to estimate the tag's range from each reader, then
   solve the nonlinear multilateration problem with
   :func:`scipy.optimize.least_squares`, seeded at the kNN coordinate.
4. Blend the two coordinates with weight ``blend`` on the triangulated
   one.

With heavy multipath the per-reader range inversions degrade, so the
blend keeps the robust kNN answer in the loop.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import least_squares

from ..exceptions import ConfigurationError
from ..types import EstimateResult, TrackingReading
from ..utils.validation import ensure_in_range
from .landmarc import LandmarcEstimator

__all__ = ["TriangulationLandmarcEstimator"]


def _fit_log_distance(
    distances: np.ndarray, rssi: np.ndarray
) -> tuple[float, float]:
    """Least-squares fit of ``rssi = a - 10*g*log10(d)``; returns (a, g)."""
    d = np.maximum(distances, 1e-3)
    x = -10.0 * np.log10(d)
    design = np.column_stack([np.ones_like(x), x])
    coef, *_ = np.linalg.lstsq(design, rssi, rcond=None)
    a, g = float(coef[0]), float(coef[1])
    return a, max(g, 0.5)  # clamp degenerate fits to a sane exponent


class TriangulationLandmarcEstimator:
    """LANDMARC + calibrated range multilateration.

    Parameters
    ----------
    k:
        kNN size of the underlying LANDMARC step.
    blend:
        Weight in [0, 1] given to the triangulated coordinate
        (0 = pure LANDMARC, 1 = pure multilateration).
    """

    name = "LANDMARC+tri"

    def __init__(self, k: int = 4, *, blend: float = 0.5):
        self.landmarc = LandmarcEstimator(k=k)
        self.blend = ensure_in_range(blend, "blend", 0.0, 1.0)
        self._reader_positions: np.ndarray | None = None

    def set_reader_positions(self, positions: np.ndarray) -> None:
        """Provide reader coordinates (required for multilateration)."""
        pos = np.asarray(positions, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ConfigurationError(
                f"reader positions must have shape (K, 2), got {pos.shape}"
            )
        self._reader_positions = pos

    def estimate(self, reading: TrackingReading) -> EstimateResult:
        knn = self.landmarc.estimate(reading)
        if self._reader_positions is None or self.blend == 0.0:
            # Degrades gracefully to plain LANDMARC without reader geometry.
            return EstimateResult(
                position=knn.position,
                estimator=self.name,
                diagnostics={**dict(knn.diagnostics), "triangulated": False},
            )
        readers = self._reader_positions
        if readers.shape[0] != reading.n_readers:
            raise ConfigurationError(
                f"{readers.shape[0]} reader positions for {reading.n_readers} readers"
            )

        # Per-reader calibration from the reference array, then inversion.
        ranges = np.empty(reading.n_readers)
        for kk in range(reading.n_readers):
            dists = np.linalg.norm(
                reading.reference_positions - readers[kk][np.newaxis, :], axis=1
            )
            a, g = _fit_log_distance(dists, reading.reference_rssi[kk])
            ranges[kk] = 10.0 ** ((a - reading.tracking_rssi[kk]) / (10.0 * g))
        # Keep ranges physically sane (within a few testbed diagonals).
        span = float(np.ptp(reading.reference_positions, axis=0).max()) + 2.0
        ranges = np.clip(ranges, 0.05, 4.0 * span)

        def residuals(p: np.ndarray) -> np.ndarray:
            d = np.linalg.norm(readers - p[np.newaxis, :], axis=1)
            return d - ranges

        sol = least_squares(residuals, x0=np.asarray(knn.position), method="lm")
        tri = sol.x
        xy = (1.0 - self.blend) * np.asarray(knn.position) + self.blend * tri
        return EstimateResult(
            position=(float(xy[0]), float(xy[1])),
            estimator=self.name,
            diagnostics={
                "knn_position": knn.position,
                "triangulated_position": (float(tri[0]), float(tri[1])),
                "ranges_m": ranges.tolist(),
                "triangulated": True,
                "cost": float(sol.cost),
            },
        )

    def __repr__(self) -> str:
        return (
            f"TriangulationLandmarcEstimator(k={self.landmarc.k}, blend={self.blend})"
        )
