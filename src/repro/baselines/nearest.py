"""Nearest-reference estimator: snap to the best-matching reference tag.

The k=1 degenerate case of LANDMARC. Its error floor is half the grid
diagonal spacing, which makes it a useful sanity baseline: any smarter
estimator that loses to it is broken.
"""

from __future__ import annotations

import numpy as np

from ..types import EstimateResult, TrackingReading
from .landmarc import rssi_space_distances

__all__ = ["NearestReferenceEstimator"]


class NearestReferenceEstimator:
    """Output the position of the single nearest reference tag in RSSI space."""

    name = "Nearest"

    def estimate(self, reading: TrackingReading) -> EstimateResult:
        e = rssi_space_distances(reading)
        best = int(np.argmin(e))
        pos = reading.reference_positions[best]
        return EstimateResult(
            position=(float(pos[0]), float(pos[1])),
            estimator=self.name,
            diagnostics={"neighbour": best, "rssi_distance": float(e[best])},
        )

    def __repr__(self) -> str:
        return "NearestReferenceEstimator()"
