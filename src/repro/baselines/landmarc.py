"""The LANDMARC estimator (Ni, Liu, Lau, Patil — PerCom 2003).

LANDMARC locates a tracking tag by comparing its per-reader RSSI vector
with those of reference tags at known positions:

1. For each reference tag ``j`` compute the Euclidean RSSI-space distance
   ``E_j = sqrt(sum_k (S_k(track) - S_k(ref_j))^2)`` over the K readers.
2. Select the ``k`` reference tags with smallest ``E`` (k=4 in both
   papers).
3. Weight them ``w_j = (1/E_j^2) / sum_i (1/E_i^2)`` and output the
   weighted centroid of their known coordinates.

The epsilon guard handles the measure-zero case of an exact RSSI match
(E=0), which would otherwise divide by zero — in that case the matching
reference position is returned directly.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..types import EstimateResult, TrackingReading
from ..utils.validation import ensure_positive_int

__all__ = ["LandmarcEstimator", "rssi_space_distances"]


def rssi_space_distances(reading: TrackingReading, *, ord: float = 2.0) -> np.ndarray:
    """Per-reference-tag distance in RSSI space, shape ``(n_refs,)``.

    ``ord`` selects the vector norm across readers (2 = the papers'
    Euclidean E).
    """
    diff = reading.reference_rssi - reading.tracking_rssi[:, np.newaxis]
    return np.linalg.norm(diff, ord=ord, axis=0)


class LandmarcEstimator:
    """Classic LANDMARC with ``k`` nearest reference tags.

    Parameters
    ----------
    k:
        Number of nearest neighbours (the papers use 4).
    epsilon:
        Tie-break guard added to ``E^2`` in the weight denominator; also
        the threshold below which an exact match short-circuits.
    """

    name = "LANDMARC"

    def __init__(self, k: int = 4, *, epsilon: float = 1e-9):
        self.k = ensure_positive_int(k, "k")
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)

    def estimate(self, reading: TrackingReading) -> EstimateResult:
        n_refs = reading.n_references
        k = min(self.k, n_refs)
        e = rssi_space_distances(reading)

        # k smallest E values (argpartition avoids a full sort).
        if k < n_refs:
            nearest = np.argpartition(e, k)[:k]
        else:
            nearest = np.arange(n_refs)
        nearest = nearest[np.argsort(e[nearest], kind="stable")]

        e_sel = e[nearest]
        if e_sel[0] < self.epsilon:
            # Exact RSSI match: the tag is at the reference position.
            pos = reading.reference_positions[nearest[0]]
            return EstimateResult(
                position=(float(pos[0]), float(pos[1])),
                estimator=self.name,
                diagnostics={
                    "neighbours": nearest.tolist(),
                    "weights": [1.0] + [0.0] * (k - 1),
                    "exact_match": True,
                },
            )

        inv_sq = 1.0 / (e_sel**2 + self.epsilon)
        weights = inv_sq / inv_sq.sum()
        coords = reading.reference_positions[nearest]
        xy = weights @ coords
        return EstimateResult(
            position=(float(xy[0]), float(xy[1])),
            estimator=self.name,
            diagnostics={
                "neighbours": nearest.tolist(),
                "weights": weights.tolist(),
                "rssi_distances": e_sel.tolist(),
                "exact_match": False,
            },
        )

    def __repr__(self) -> str:
        return f"LandmarcEstimator(k={self.k})"
