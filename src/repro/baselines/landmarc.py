"""The LANDMARC estimator (Ni, Liu, Lau, Patil — PerCom 2003).

LANDMARC locates a tracking tag by comparing its per-reader RSSI vector
with those of reference tags at known positions:

1. For each reference tag ``j`` compute the Euclidean RSSI-space distance
   ``E_j = sqrt(sum_k (S_k(track) - S_k(ref_j))^2)`` over the K readers.
2. Select the ``k`` reference tags with smallest ``E`` (k=4 in both
   papers).
3. Weight them ``w_j = (1/E_j^2) / sum_i (1/E_i^2)`` and output the
   weighted centroid of their known coordinates.

The epsilon guard handles the measure-zero case of an exact RSSI match
(E=0), which would otherwise divide by zero — in that case the matching
reference position is returned directly.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, EstimationError
from ..types import EstimateResult, TrackingReading
from ..utils.validation import ensure_positive_int

__all__ = ["LandmarcEstimator", "rssi_space_distances"]


def rssi_space_distances(reading: TrackingReading, *, ord: float = 2.0) -> np.ndarray:
    """Per-reference-tag distance in RSSI space, shape ``(n_refs,)``.

    ``ord`` selects the vector norm across readers (2 = the papers'
    Euclidean E).

    Masked readings (NaN reference entries from degraded deployments)
    use a coverage-rescaled distance: for reference tag ``j`` with only
    ``m_j`` of the ``K`` reader readings present,

    ``E_j = (K / m_j * sum_present |diff|^ord)^(1/ord)``

    — the mean per-reader contribution extrapolated to all K readers, so
    tags compared over fewer readers are not artificially "closer". A
    reference tag with *no* present readings gets ``inf`` (never a
    neighbour).

    Per-reader contributions are summed in a *canonical* (sorted) order,
    making the result bitwise invariant under reader permutation.
    Floating-point addition is not associative: summing in storage order
    lets near-tied distances differ in the last ULP between reader
    orderings, which can flip the k-NN tie-break and move the estimate
    by whole cells (caught by the reader-permutation property test).
    Non-finite ``ord`` (max/min norms) is order-invariant by nature and
    delegates to :func:`numpy.linalg.norm`.
    """
    diff = reading.reference_rssi - reading.tracking_rssi[:, np.newaxis]
    present = np.isfinite(diff)
    if present.all():
        if not np.isfinite(ord):
            return np.linalg.norm(diff, ord=ord, axis=0)
        if ord <= 0:
            raise ConfigurationError(
                f"ord must be positive or +/-inf, got {ord}"
            )
        contrib = np.sort(np.abs(diff) ** ord, axis=0)
        return contrib.sum(axis=0) ** (1.0 / ord)
    if not np.isfinite(ord) or ord <= 0:
        raise ConfigurationError(
            f"masked readings require a finite positive ord, got {ord}"
        )
    k = diff.shape[0]
    counts = present.sum(axis=0)  # (n_refs,)
    contrib = np.sort(np.abs(np.where(present, diff, 0.0)) ** ord, axis=0)
    sums = contrib.sum(axis=0)
    out = np.full(diff.shape[1], np.inf)
    has_any = counts > 0
    out[has_any] = (k / counts[has_any] * sums[has_any]) ** (1.0 / ord)
    return out


class LandmarcEstimator:
    """Classic LANDMARC with ``k`` nearest reference tags.

    Parameters
    ----------
    k:
        Number of nearest neighbours (the papers use 4).
    epsilon:
        Tie-break guard added to ``E^2`` in the weight denominator; also
        the threshold below which an exact match short-circuits.
    """

    name = "LANDMARC"

    def __init__(self, k: int = 4, *, epsilon: float = 1e-9):
        self.k = ensure_positive_int(k, "k")
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)

    def estimate(self, reading: TrackingReading) -> EstimateResult:
        return self._estimate_from_distances(reading, rssi_space_distances(reading))

    def estimate_batch(self, readings) -> list[EstimateResult]:
        """Batched estimation — bitwise identical to a scalar loop.

        Delegates to :class:`repro.engine.batch.BatchLandmarc`, which
        computes the RSSI-space distances for every reading in one
        ``(T, K, n_refs)`` tensor pass and reuses the scalar k-NN
        selection per tag. Raises the first per-reading error in input
        order, exactly as a sequential loop would.
        """
        from ..engine.batch import BatchLandmarc  # lazy: engine sits above

        return BatchLandmarc(self).estimate_batch(readings)

    def _estimate_from_distances(
        self, reading: TrackingReading, e: np.ndarray
    ) -> EstimateResult:
        """k-NN selection and weighting from precomputed distances.

        Split out so the batch engine can feed distances from its
        vectorized tensor pass through the exact scalar selection code.
        """
        n_refs = reading.n_references
        k = min(self.k, n_refs)
        if not np.any(np.isfinite(e)):
            raise EstimationError(
                "no reference tag shares a present RSSI reading with the "
                "tracking tag; LANDMARC cannot rank neighbours"
            )

        # k smallest E values (argpartition avoids a full sort).
        if k < n_refs:
            nearest = np.argpartition(e, k)[:k]
        else:
            nearest = np.arange(n_refs)
        nearest = nearest[np.argsort(e[nearest], kind="stable")]

        e_sel = e[nearest]
        if e_sel[0] < self.epsilon:
            # Exact RSSI match: the tag is at the reference position.
            pos = reading.reference_positions[nearest[0]]
            return EstimateResult(
                position=(float(pos[0]), float(pos[1])),
                estimator=self.name,
                diagnostics={
                    "neighbours": nearest.tolist(),
                    "weights": [1.0] + [0.0] * (k - 1),
                    "exact_match": True,
                },
            )

        inv_sq = 1.0 / (e_sel**2 + self.epsilon)
        weights = inv_sq / inv_sq.sum()
        coords = reading.reference_positions[nearest]
        xy = weights @ coords
        return EstimateResult(
            position=(float(xy[0]), float(xy[1])),
            estimator=self.name,
            diagnostics={
                "neighbours": nearest.tolist(),
                "weights": weights.tolist(),
                "rssi_distances": e_sel.tolist(),
                "exact_match": False,
            },
        )

    def __repr__(self) -> str:
        return f"LandmarcEstimator(k={self.k})"
