"""Baseline estimators: LANDMARC and related comparison points.

* :class:`LandmarcEstimator` — the paper's baseline (Ni et al. 2003):
  k-nearest reference tags in RSSI space, weighted by 1/E².
* :class:`WeightedKnnEstimator` — generalized kNN with configurable
  metric and weighting exponent.
* :class:`NearestReferenceEstimator` — snap to the single closest
  reference tag (k=1 degenerate case).
* :class:`WeightedCentroidEstimator` — softmax-weighted centroid over all
  reference tags (no hard k cut-off).
* :class:`TriangulationLandmarcEstimator` — LANDMARC refined with a
  range-based least-squares coordinate, in the spirit of the paper's
  reference [12] (Jin et al. 2006).
"""

from .landmarc import LandmarcEstimator
from .knn import WeightedKnnEstimator
from .nearest import NearestReferenceEstimator
from .centroid import WeightedCentroidEstimator
from .triangulation import TriangulationLandmarcEstimator
from .fingerprint import FingerprintEstimator

__all__ = [
    "LandmarcEstimator",
    "WeightedKnnEstimator",
    "NearestReferenceEstimator",
    "WeightedCentroidEstimator",
    "TriangulationLandmarcEstimator",
    "FingerprintEstimator",
]
