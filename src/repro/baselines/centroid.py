"""Softmax-weighted centroid over all reference tags.

Instead of a hard top-k cut, every reference tag contributes with weight
``exp(-E_j / tau)``. The temperature ``tau`` (in dB) controls how
aggressively distant references are suppressed; ``tau -> 0`` approaches
the nearest-reference estimator, large ``tau`` approaches the plain grid
centroid. A useful comparison point for VIRE's soft elimination.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..types import EstimateResult, TrackingReading
from .landmarc import rssi_space_distances

__all__ = ["WeightedCentroidEstimator"]


class WeightedCentroidEstimator:
    """Centroid of all reference tags, softmax-weighted by RSSI distance."""

    def __init__(self, tau_db: float = 2.0):
        if tau_db <= 0:
            raise ConfigurationError(f"tau_db must be positive, got {tau_db}")
        self.tau_db = float(tau_db)
        self.name = f"SoftCentroid(tau={tau_db:g}dB)"

    def estimate(self, reading: TrackingReading) -> EstimateResult:
        e = rssi_space_distances(reading)
        # Shift by the minimum before exponentiating for numerical safety.
        logits = -(e - e.min()) / self.tau_db
        weights = np.exp(logits)
        weights = weights / weights.sum()
        xy = weights @ reading.reference_positions
        return EstimateResult(
            position=(float(xy[0]), float(xy[1])),
            estimator=self.name,
            diagnostics={
                "effective_support": float(1.0 / np.sum(weights**2)),
                "max_weight": float(weights.max()),
            },
        )

    def __repr__(self) -> str:
        return f"WeightedCentroidEstimator(tau_db={self.tau_db})"
