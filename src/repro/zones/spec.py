"""Zone partitioning: :class:`ZoneSpec`, :class:`ZonePlan` and site builders.

A *zone* is one self-contained deployment — its own reference lattice,
corner readers, tracking tags and seed — expressed in **local**
coordinates (the paper's testbed frame, grid origin at (0, 0)) and
placed in the **site** frame by a translation ``origin``. Everything a
zone worker owns (estimator, interpolation cache, circuit breakers,
fault slice, checkpoint file) derives from its :class:`ZoneSpec`, so
zones share nothing at runtime; the site frame exists only for the
gateway's routing and handoff geometry.

A :class:`ZonePlan` is an ordered set of zones plus the site-level seed
and the roaming tags that may cross zone boundaries. Plans validate the
shared-nothing premise up front: unique zone ids and non-overlapping
zone extents.

Builders:

* :func:`single_zone_plan` — wrap an existing
  :class:`~repro.experiments.scenarios.TestbedScenario` as a one-zone
  plan. This is the refactor's safety rail: running it through the
  gateway is bitwise identical to :class:`LocalizationService`.
* :func:`scaled_site_plan` — N copies of the paper testbed tiled at
  :data:`ZONE_PITCH_M`, one seeded world per zone.
* :func:`monolithic_site_plan` — the *same* site (same rooms' readers,
  same tags, same virtual-tag density) as one giant lattice in a single
  zone. The scale-out benchmark compares the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

import numpy as np

from ..core.config import VIREConfig
from ..exceptions import ConfigurationError
from ..experiments.scenarios import TestbedScenario
from ..faults.models import is_zone_fault
from ..faults.plan import FaultPlan
from ..geometry.grid import ReferenceGrid
from ..geometry.placement import (
    corner_reader_positions,
    figure2a_tracking_tags,
    paper_testbed_grid,
)
from ..geometry.rooms import rectangular_room
from ..rf.environments import EnvironmentSpec, environment_by_name
from ..utils.rng import derive_seed

__all__ = [
    "ZONE_PITCH_M",
    "ZoneSpec",
    "RoamingTag",
    "ZonePlan",
    "zone_seed",
    "slice_fault_plan",
    "single_zone_plan",
    "scaled_site_plan",
    "monolithic_site_plan",
]

#: Site-frame distance between neighbouring zone origins. Deliberately a
#: non-integer multiple of the 1 m lattice pitch: the merged monolithic
#: lattice of :func:`monolithic_site_plan` must not place a virtual or
#: reference tag exactly on a neighbouring room's reader (the channel
#: refuses zero-length tag→reader segments), and 4.5 m keeps every
#: reader off every lattice point while still leaving only 0.5 m of
#: corridor between rooms.
ZONE_PITCH_M: float = 4.5

#: Zone-targeted fault addressing separator: ``"z1/reader-0"`` targets
#: reader-0 *of zone z1* only; an unprefixed ``"reader-0"`` targets that
#: reader in every zone (and is what single-zone plans use, unchanged).
ZONE_TARGET_SEP = "/"


def zone_seed(seed: int, zone_id: str) -> int:
    """Deterministic per-zone world seed under the site seed.

    Derived through the same :func:`~repro.utils.rng.derive_seed`
    discipline the fault plans use, so adding or removing a zone never
    perturbs another zone's world.
    """
    return int(derive_seed(seed, "zone", zone_id).generate_state(1)[0])


@dataclass(frozen=True)
class ZoneSpec:
    """One shared-nothing zone: a complete deployment in local coordinates.

    Parameters
    ----------
    zone_id:
        Unique zone name (letters, digits, ``_``, ``-``).
    environment:
        Channel recipe, in the zone's local frame (rooms are per zone).
    grid:
        The zone's real reference lattice, local frame.
    origin:
        Translation of the local frame into the site frame.
    tracking_tags:
        Static tracking tags, label -> local position (labels are
        formatted ``tag-<label>`` by the worker, exactly like the
        single-zone service).
    seed:
        The zone's frozen-world seed.
    reader_margin_m:
        Corner-reader clearance (paper: 1 m); ignored when
        ``reader_positions`` is given.
    reader_positions:
        Explicit local reader coordinates (merged monolithic sites).
    vire:
        Optional per-zone estimator config override (a monolithic zone
        needs a larger virtual-tag budget to hold the site's density).
    """

    zone_id: str
    environment: EnvironmentSpec
    grid: ReferenceGrid = field(default_factory=paper_testbed_grid)
    origin: tuple[float, float] = (0.0, 0.0)
    tracking_tags: Mapping[Any, tuple[float, float]] = field(
        default_factory=dict
    )
    seed: int = 0
    reader_margin_m: float = 1.0
    reader_positions: tuple[tuple[float, float], ...] | None = None
    vire: VIREConfig | None = None

    def __post_init__(self) -> None:
        if not self.zone_id or not all(
            c.isalnum() or c in "_-" for c in self.zone_id
        ):
            raise ConfigurationError(
                f"zone_id must be non-empty [A-Za-z0-9_-], got {self.zone_id!r}"
            )
        object.__setattr__(
            self, "origin", (float(self.origin[0]), float(self.origin[1]))
        )
        object.__setattr__(self, "tracking_tags", dict(self.tracking_tags))
        if self.reader_positions is not None:
            object.__setattr__(
                self,
                "reader_positions",
                tuple(
                    (float(p[0]), float(p[1])) for p in self.reader_positions
                ),
            )

    # -- frames ---------------------------------------------------------------

    def to_global(self, local: Sequence[float]) -> tuple[float, float]:
        """Local zone coordinates -> site coordinates."""
        return (
            float(local[0]) + self.origin[0],
            float(local[1]) + self.origin[1],
        )

    def to_local(self, global_pos: Sequence[float]) -> tuple[float, float]:
        """Site coordinates -> local zone coordinates."""
        return (
            float(global_pos[0]) - self.origin[0],
            float(global_pos[1]) - self.origin[1],
        )

    def clamp_local(self, global_pos: Sequence[float]) -> tuple[float, float]:
        """Site position projected into the zone's lattice bounds.

        This is where a non-owned roaming tag is *parked*: inside the
        lattice (so its copy always has plausible geometry) and never on
        a reader (readers sit ``reader_margin_m`` outside the bounds).
        """
        x, y = self.to_local(global_pos)
        xmin, ymin, xmax, ymax = self.grid.bounds
        return (min(max(x, xmin), xmax), min(max(y, ymin), ymax))

    # -- geometry -------------------------------------------------------------

    def local_reader_positions(self) -> np.ndarray:
        if self.reader_positions is not None:
            return np.asarray(self.reader_positions, dtype=np.float64)
        return corner_reader_positions(self.grid, margin=self.reader_margin_m)

    def global_reader_positions(self) -> np.ndarray:
        return self.local_reader_positions() + np.asarray(
            self.origin, dtype=np.float64
        )

    @property
    def footprint(self) -> tuple[float, float, float, float]:
        """Site-frame bounding box of the zone's reference lattice.

        This is the area the zone *owns* — plan validation requires
        footprints to be disjoint. Readers are excluded on purpose: at
        the default :data:`ZONE_PITCH_M` neighbouring zones' corner
        readers share the 0.5 m corridor between rooms, which is
        physically fine (each zone only listens to its own readers).
        """
        xmin, ymin, xmax, ymax = self.grid.bounds
        return (
            xmin + self.origin[0],
            ymin + self.origin[1],
            xmax + self.origin[0],
            ymax + self.origin[1],
        )

    @property
    def extent(self) -> tuple[float, float, float, float]:
        """Site-frame bounding box of the zone's lattice *and* readers."""
        xmin, ymin, xmax, ymax = self.grid.bounds
        readers = self.local_reader_positions()
        xmin = min(xmin, float(readers[:, 0].min()))
        ymin = min(ymin, float(readers[:, 1].min()))
        xmax = max(xmax, float(readers[:, 0].max()))
        ymax = max(ymax, float(readers[:, 1].max()))
        return (
            xmin + self.origin[0],
            ymin + self.origin[1],
            xmax + self.origin[0],
            ymax + self.origin[1],
        )

    def with_(self, **changes) -> "ZoneSpec":
        """Modified copy (thin wrapper over dataclasses.replace)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class RoamingTag:
    """A tag that crosses zone boundaries along a timed site-frame route.

    ``route`` is a sequence of ``(t_rel_s, (x, y))`` waypoints in
    session-relative simulated seconds (0 = first post-warm-up tick) and
    site coordinates; the position is piecewise-linear between
    waypoints and clamps to the endpoints outside the timed range.
    """

    label: str
    route: tuple[tuple[float, tuple[float, float]], ...]

    def __post_init__(self) -> None:
        if not self.label:
            raise ConfigurationError("roaming tag label must be non-empty")
        route = tuple(
            (float(t), (float(p[0]), float(p[1]))) for t, p in self.route
        )
        if not route:
            raise ConfigurationError(
                f"roaming tag {self.label!r} needs at least one waypoint"
            )
        times = [t for t, _ in route]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigurationError(
                f"roaming tag {self.label!r} waypoint times must be "
                f"strictly increasing, got {times}"
            )
        object.__setattr__(self, "route", route)

    def position_at(self, t_rel_s: float) -> tuple[float, float]:
        """Site-frame position at session-relative time ``t_rel_s``."""
        t = float(t_rel_s)
        route = self.route
        if t <= route[0][0]:
            return route[0][1]
        if t >= route[-1][0]:
            return route[-1][1]
        for (t0, p0), (t1, p1) in zip(route, route[1:]):
            if t0 <= t <= t1:
                f = (t - t0) / (t1 - t0)
                return (
                    p0[0] + f * (p1[0] - p0[0]),
                    p0[1] + f * (p1[1] - p0[1]),
                )
        # Unreachable: times are strictly increasing and t is interior.
        raise AssertionError("roaming route interpolation fell through")


def _overlaps(
    a: tuple[float, float, float, float],
    b: tuple[float, float, float, float],
) -> bool:
    """Strict interior overlap of two bounding boxes (touching is fine)."""
    return a[0] < b[2] and b[0] < a[2] and a[1] < b[3] and b[1] < a[3]


@dataclass(frozen=True)
class ZonePlan:
    """An ordered, validated set of zones plus the site's roaming tags.

    Zones must have unique ids and non-overlapping lattice footprints —
    overlap would mean two workers claim the same physical area and the
    gateway's proximity routing becomes ambiguous. (Reader halos *may*
    overlap: neighbouring rooms' corner readers share the corridor.)
    """

    zones: tuple[ZoneSpec, ...]
    seed: int = 0
    roaming: tuple[RoamingTag, ...] = ()

    def __init__(
        self,
        zones: Sequence[ZoneSpec],
        seed: int = 0,
        roaming: Sequence[RoamingTag] = (),
    ):
        object.__setattr__(self, "zones", tuple(zones))
        object.__setattr__(self, "seed", int(seed))
        object.__setattr__(self, "roaming", tuple(roaming))
        if not self.zones:
            raise ConfigurationError("a zone plan needs at least one zone")
        ids = [z.zone_id for z in self.zones]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ConfigurationError(f"duplicate zone ids: {dupes}")
        for i, a in enumerate(self.zones):
            for b in self.zones[i + 1:]:
                if _overlaps(a.footprint, b.footprint):
                    raise ConfigurationError(
                        f"zones {a.zone_id!r} and {b.zone_id!r} overlap: "
                        f"{a.footprint} vs {b.footprint}"
                    )
        static = {
            str(label) for z in self.zones for label in z.tracking_tags
        }
        seen: set[str] = set()
        for tag in self.roaming:
            if tag.label in static:
                raise ConfigurationError(
                    f"roaming tag {tag.label!r} collides with a static "
                    f"tracking tag label"
                )
            if tag.label in seen:
                raise ConfigurationError(
                    f"duplicate roaming tag label {tag.label!r}"
                )
            seen.add(tag.label)

    def __len__(self) -> int:
        return len(self.zones)

    def __iter__(self):
        return iter(self.zones)

    @property
    def zone_ids(self) -> tuple[str, ...]:
        return tuple(z.zone_id for z in self.zones)

    def zone(self, zone_id: str) -> ZoneSpec:
        for z in self.zones:
            if z.zone_id == zone_id:
                return z
        raise ConfigurationError(
            f"no zone {zone_id!r} in plan (have {list(self.zone_ids)})"
        )

    def zone_seed(self, zone_id: str) -> int:
        """The per-zone derived seed under this plan's site seed."""
        self.zone(zone_id)  # existence check
        return zone_seed(self.seed, zone_id)

    def detect_zone(self, global_pos: Sequence[float]) -> ZoneSpec:
        """Coarse zone detection: nearest reader *set* wins.

        The gateway routes a site-frame position to the zone whose
        reader constellation is closest — by **mean** distance over the
        zone's readers, not minimum: corner readers of neighbouring
        rooms share the corridor, so a single nearest reader would
        assign the centre of one room to its neighbour. The mean is
        minimized at the constellation's centroid (the room centre),
        which is the ownership a deployment wants. Ties break on the
        lexicographically smallest zone id, so routing is a pure
        function of the plan geometry.
        """
        p = np.asarray(
            [float(global_pos[0]), float(global_pos[1])], dtype=np.float64
        )
        best: tuple[float, str] | None = None
        best_zone: ZoneSpec | None = None
        for z in sorted(self.zones, key=lambda z: z.zone_id):
            d = float(
                np.mean(
                    np.linalg.norm(z.global_reader_positions() - p, axis=1)
                )
            )
            key = (d, z.zone_id)
            if best is None or key < best:
                best, best_zone = key, z
        assert best_zone is not None  # plan has >= 1 zone
        return best_zone

    def rank_zones(self, global_pos: Sequence[float]) -> tuple[ZoneSpec, ...]:
        """Every zone ordered by :meth:`detect_zone` affinity.

        The first entry is exactly ``detect_zone(global_pos)``; the rest
        are the fallback order the gateway's cross-zone load shedding
        uses when the preferred zone is down or saturated — nearest
        surviving constellation first, ties on zone id. Pure function of
        the plan geometry, so rerouting is deterministic.
        """
        p = np.asarray(
            [float(global_pos[0]), float(global_pos[1])], dtype=np.float64
        )
        keyed = []
        for z in self.zones:
            d = float(
                np.mean(
                    np.linalg.norm(z.global_reader_positions() - p, axis=1)
                )
            )
            keyed.append(((d, z.zone_id), z))
        keyed.sort(key=lambda kz: kz[0])
        return tuple(z for _, z in keyed)


def slice_fault_plan(plan: FaultPlan, zone_id: str) -> FaultPlan:
    """The slice of a site fault plan that one zone injects locally.

    Target addressing: a fault whose ``reader_id``/``tag_id`` carries a
    ``"<zone>/"`` prefix belongs to that zone only (the prefix is
    stripped for the zone's local injector); an unprefixed target — and
    a targetless fault — applies to **every** zone verbatim. A
    single-zone plan therefore slices to *exactly* the original plan
    (same faults, same indices, same seed), preserving the bitwise
    identity contract with the unzoned service.

    Zone-scoped control-plane faults (``scope == "zone"``: crashes,
    hangs, link loss, slow zones) are *dropped* here regardless of
    target — they act on the gateway→worker call path and are consumed
    by :class:`~repro.zones.failover.ZoneChannel`, never by a worker's
    local record injector.
    """
    kept = []
    for fault in plan:
        if is_zone_fault(fault):
            continue
        changes: dict[str, str] = {}
        skip = False
        for attr in ("reader_id", "tag_id"):
            value = getattr(fault, attr, None)
            if not isinstance(value, str) or ZONE_TARGET_SEP not in value:
                continue
            target_zone, _, local = value.partition(ZONE_TARGET_SEP)
            if target_zone != zone_id:
                skip = True
                break
            changes[attr] = local
        if skip:
            continue
        kept.append(replace(fault, **changes) if changes else fault)
    return FaultPlan(kept, seed=plan.seed)


# ---------------------------------------------------------------------------
# Plan builders
# ---------------------------------------------------------------------------


def single_zone_plan(
    scenario: TestbedScenario, zone_id: str = "z0"
) -> ZonePlan:
    """Wrap a scenario as a one-zone plan — the refactor's safety rail.

    The zone keeps the scenario's environment, grid, tags and seed
    verbatim, so a gateway run of this plan is bitwise identical to
    ``LocalizationService().run(scenario, ...)``.
    """
    spec = ZoneSpec(
        zone_id=zone_id,
        environment=scenario.environment,
        grid=scenario.grid,
        origin=(0.0, 0.0),
        tracking_tags=scenario.tracking_tags,
        seed=scenario.base_seed,
    )
    return ZonePlan((spec,), seed=scenario.base_seed)


def _square_layout(n_zones: int, pitch_m: float) -> list[tuple[float, float]]:
    cols = math.ceil(math.sqrt(n_zones))
    return [
        (pitch_m * (i % cols), pitch_m * (i // cols)) for i in range(n_zones)
    ]


def scaled_site_plan(
    environment: str | EnvironmentSpec = "Env1",
    n_zones: int = 4,
    *,
    seed: int = 0,
    pitch_m: float = ZONE_PITCH_M,
    roaming: Sequence[RoamingTag] = (),
) -> ZonePlan:
    """N paper testbeds tiled row-major at ``pitch_m``, one world per zone.

    Each zone is the full §5 testbed (4x4 lattice, 4 corner readers,
    9 Fig. 2(a) tracking tags) in its own local frame with its own
    derived seed — the shared-nothing scale-out deployment.
    """
    if n_zones < 1:
        raise ConfigurationError(f"n_zones must be >= 1, got {n_zones}")
    env = (
        environment_by_name(environment)
        if isinstance(environment, str)
        else environment
    )
    grid = paper_testbed_grid()
    tags = figure2a_tracking_tags(grid)
    zones = []
    for i, origin in enumerate(_square_layout(n_zones, pitch_m)):
        zid = f"z{i}"
        zones.append(
            ZoneSpec(
                zone_id=zid,
                environment=env,
                grid=grid,
                origin=origin,
                tracking_tags=tags,
                seed=zone_seed(seed, zid),
            )
        )
    return ZonePlan(zones, seed=seed, roaming=roaming)


#: Room recipes for the merged monolithic site, matching the wall
#: parameters of the Env presets (Env3's cluttered office is too small
#: and furniture-specific to scale meaningfully).
_SITE_ROOM_RECIPES: dict[str, dict[str, Any]] = {
    "Env1": {
        "attenuation_db": 8.0,
        "reflectivity": 0.35,
        "open_sides": ("top", "right"),
    },
    "Env2": {"attenuation_db": 12.0, "reflectivity": 0.55, "open_sides": ()},
}


def monolithic_site_plan(
    environment: str | EnvironmentSpec = "Env1",
    n_zones: int = 4,
    *,
    seed: int = 0,
    pitch_m: float = ZONE_PITCH_M,
) -> ZonePlan:
    """The same site as :func:`scaled_site_plan`, as ONE zone.

    One merged lattice covers all rooms at (approximately) the zoned
    deployment's 0.1 m virtual pitch; *all* of the rooms' readers and
    tracking tags are kept at their site positions. This is the fair
    "1 zone on an N-zone deployment" baseline of the scale-out
    benchmark: identical hardware and load, monolithic estimator state.

    ``n_zones`` must be a perfect square (the merged lattice is a
    uniform rows x cols grid). Only Env1/Env2 have site room recipes.
    """
    side = math.isqrt(n_zones)
    if side * side != n_zones or n_zones < 1:
        raise ConfigurationError(
            f"monolithic site needs a square zone count, got {n_zones}"
        )
    env = (
        environment_by_name(environment)
        if isinstance(environment, str)
        else environment
    )
    recipe = _SITE_ROOM_RECIPES.get(env.name)
    if recipe is None:
        raise ConfigurationError(
            f"no monolithic site room recipe for environment {env.name!r} "
            f"(have {sorted(_SITE_ROOM_RECIPES)})"
        )
    zone_grid = paper_testbed_grid()
    zxmin, zymin, zxmax, zymax = zone_grid.bounds
    span = (zxmax - zxmin) + pitch_m * (side - 1)
    offsets = _square_layout(n_zones, pitch_m)

    # One uniform lattice across the whole site. rows = 4*side keeps the
    # spacing within ~7% of the per-zone 1 m pitch; the virtual budget
    # below reproduces the zoned arm's n=10 subdivisions per cell.
    rows = 4 * side
    spacing = span / (rows - 1)
    grid = ReferenceGrid(
        rows=rows, cols=rows, spacing_x=spacing, spacing_y=spacing,
        origin=(0.0, 0.0),
    )
    readers: list[tuple[float, float]] = []
    corner = corner_reader_positions(zone_grid)
    for ox, oy in offsets:
        readers.extend((float(x) + ox, float(y) + oy) for x, y in corner)

    tags: dict[str, tuple[float, float]] = {}
    zone_tags = figure2a_tracking_tags(zone_grid)
    for i, (ox, oy) in enumerate(offsets):
        for label, (x, y) in zone_tags.items():
            tags[f"z{i}:{label}"] = (x + ox, y + oy)

    # Room: the preset's clearance margins around the zone grid, kept
    # around the whole site.
    rxmin, rymin, rxmax, rymax = env.room.bounds
    width = span + (zxmin - rxmin) + (rxmax - zxmax)
    height = span + (zymin - rymin) + (rymax - zymax)
    room = rectangular_room(
        width,
        height,
        origin=(rxmin, rymin),
        name=f"{env.name.lower()}-site{n_zones}",
        **recipe,
    )
    site_env = replace(env, name=f"{env.name}-site{n_zones}", room=room)
    # n=10 virtual subdivisions per lattice cell, matching the zoned
    # arm's VIREConfig(target_total_tags=900) on a 4x4 grid.
    target = (10 * (rows - 1) + 1) ** 2
    spec = ZoneSpec(
        zone_id="site",
        environment=site_env,
        grid=grid,
        origin=(0.0, 0.0),
        tracking_tags=tags,
        seed=zone_seed(seed, "site"),
        reader_positions=tuple(readers),
        vire=VIREConfig(target_total_tags=target),
    )
    return ZonePlan((spec,), seed=seed)
