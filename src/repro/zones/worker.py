"""One zone's supervised localization worker.

:class:`ZoneWorker` is the per-zone unit of the scale-out design: a
complete :class:`~repro.service.pipeline.ServicePipeline` over the
zone's own deployment (its seeded world, lattice, estimator,
interpolation cache, circuit breakers), stepped one stream chunk at a
time so the gateway can run many zones in deterministic lockstep. The
step loop reproduces :meth:`LocalizationService.run`'s tick semantics
*exactly* — warm-up, query scheduling, write-ahead checkpointing,
replay-based resume, graceful interrupt — which is what makes a
single-zone plan bitwise identical to the unzoned service (the
``repro.zones`` safety rail, asserted in ``tests/test_zones_worker.py``).

On top of the session semantics the worker adds the gateway-facing tag
surface for handoff: an *active set* deciding which tags this zone
queries, :meth:`activate_tag` / :meth:`deactivate_tag` /
:meth:`move_tag` to change ownership at chunk boundaries, and
:meth:`transfer_estimate` to seed the level-4 ladder with the estimate
carried over from the sending zone. All positions on this surface are
**local** zone coordinates; the gateway owns the site frame.

:func:`run_zone` + :class:`ZoneTask` are the module-level picklable pair
the gateway hands to :class:`~repro.runtime.supervisor.SupervisedPool`
for shared-nothing parallel execution (non-roaming plans only).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

from ..exceptions import (
    CheckpointError,
    ConfigurationError,
    SimulationError,
)
from ..hardware.deployment import Deployment, build_paper_deployment
from ..hardware.readers import ReadingRecord
from ..hardware.streams import SimulatorRecordStream
from ..obs import Tracer, current_tracer, use_tracer
from ..runtime.checkpoint import (
    CheckpointState,
    CheckpointWriter,
    load_checkpoint,
    validate_header,
)
from ..service.metrics import MetricsRegistry, get_service_logger, log_event
from ..service.pipeline import ServiceConfig, ServicePipeline, ServiceResult
from ..service.session import SessionReport, result_from_doc, result_to_doc
from ..types import estimation_error
from .spec import ZoneSpec, slice_fault_plan

__all__ = ["ZoneWorker", "ZoneTask", "run_zone"]


def _tag_id(label: Any) -> str:
    """Tag labels become simulator tag ids exactly as the service does."""
    return f"tag-{label}"


class ZoneWorker:
    """A steppable, checkpointable localization session for one zone.

    Parameters
    ----------
    spec:
        The zone's world (environment, lattice, tags, seed, frame).
    config:
        Service knobs; the zone's ``spec.vire`` override (if any) is
        applied on top.
    fault_plan:
        The zone's **already sliced** fault plan (see
        :func:`repro.zones.spec.slice_fault_plan`); attached to the
        simulator after warm-up, exactly like the unzoned session.
    roaming_tags:
        Label -> initial *local* position of every roaming tag copy this
        zone hosts. Roaming copies exist in every zone's deployment (so
        geometry and ground truth are always defined) but start
        *inactive*: the gateway activates the owner's copy.
    checkpoint_path / resume / crash_point:
        Write-ahead checkpointing, replay-based resume and the simulated
        hard-kill hook — same contracts as
        :meth:`~repro.service.session.LocalizationService.run`.
    """

    def __init__(
        self,
        spec: ZoneSpec,
        config: ServiceConfig | None = None,
        *,
        fault_plan=None,
        roaming_tags: Mapping[str, tuple[float, float]] | None = None,
        checkpoint_path: str | os.PathLike | None = None,
        resume: bool = False,
        crash_point=None,
        perf_clock: Callable[[], float] = time.perf_counter,
        warmup_max_s: float = 120.0,
        query_schedule: Sequence[tuple[float, str]] | None = None,
    ):
        if resume and checkpoint_path is None:
            raise ConfigurationError("resume=True requires a checkpoint_path")
        self.spec = spec
        config = config or ServiceConfig()
        if checkpoint_path is not None and config.engine.precision != "exact":
            # Zone checkpoints carry a byte-exact recovery witness; the
            # relaxed tier cannot produce one.
            raise ConfigurationError(
                "checkpointed zone workers require engine precision "
                f"'exact', got {config.engine.precision!r}"
            )
        if spec.vire is not None:
            config = config.with_(vire=spec.vire)
        self.config = config
        self._fault_plan = fault_plan
        self._checkpoint_path = checkpoint_path
        self._resume = bool(resume)
        self._crash_point = crash_point
        self._perf_clock = perf_clock
        self.warmup_max_s = float(warmup_max_s)
        self._logger = get_service_logger()

        # Static tags first, roaming copies after — build order is the
        # deployment's tag-offset RNG draw order, so a plan without
        # roaming tags builds the exact world the unzoned service does.
        roaming = dict(roaming_tags or {})
        overlap = {str(k) for k in spec.tracking_tags} & set(roaming)
        if overlap:
            raise ConfigurationError(
                f"roaming tags {sorted(overlap)} collide with zone "
                f"{spec.zone_id!r}'s static tags"
            )
        tracking: dict[str, tuple[float, float]] = {
            _tag_id(label): pos for label, pos in spec.tracking_tags.items()
        }
        tracking.update(
            {_tag_id(label): pos for label, pos in roaming.items()}
        )
        self.deployment: Deployment = build_paper_deployment(
            spec.environment,
            grid=spec.grid,
            tracking_tags=tracking,
            reader_margin_m=spec.reader_margin_m,
            reader_positions=spec.reader_positions,
            seed=spec.seed,
        )
        self.metrics = MetricsRegistry(zone=spec.zone_id)
        self.pipeline = ServicePipeline(
            self.deployment.grid,
            self.deployment.simulator.middleware,
            self.config,
            metrics=self.metrics,
            perf_clock=perf_clock,
        )
        self._active: set[str] = {_tag_id(label) for label in spec.tracking_tags}
        self._roaming_ids: set[str] = {_tag_id(label) for label in roaming}
        self._admission = None
        # Open-loop arrival schedule (load harness): (t_rel_s, label)
        # events relative to session start, replacing the per-tag query
        # interval. The cursor lives on the worker instance, so a fresh
        # worker (respawn, resume) replays the schedule from the top —
        # exactly the property journal gap replay needs.
        self._query_schedule: tuple[tuple[float, str], ...] | None = (
            None
            if query_schedule is None
            else tuple(
                (float(t), str(label)) for t, label in query_schedule
            )
        )
        self._sched_i = 0

        self._stream: SimulatorRecordStream | None = None
        self._chunks: Iterator[tuple[float, list[ReadingRecord]]] | None = None
        self._writer: CheckpointWriter | None = None
        self._restored: CheckpointState | None = None
        self._next_query: dict[str, float] = {}
        self._records_dispatched = 0
        self._wal_index = 0
        self._next_snapshot: float | None = None
        self._last_cut: dict | None = None
        self._replay_until: float | None = None
        self._interrupted = False
        self._finished = False
        self._wall_start = 0.0
        self._start_s = 0.0
        self._duration_s = 0.0

    # -- identity --------------------------------------------------------------

    @property
    def zone_id(self) -> str:
        return self.spec.zone_id

    @property
    def simulator(self):
        return self.deployment.simulator

    @property
    def now(self) -> float:
        """The zone's own simulation clock."""
        return self.simulator.now

    def checkpoint_header(self, duration_s: float) -> dict[str, Any]:
        """Zone identity written to (and checked against) a checkpoint.

        ``zone`` plus the world keys (seed, origin, grid, environment)
        make resuming zone A's file into zone B fail loudly — the two
        zones are independent seeded worlds.
        """
        header: dict[str, Any] = {
            "zone": self.spec.zone_id,
            "environment": self.spec.environment.name,
            "seed": self.spec.seed,
            "origin": [self.spec.origin[0], self.spec.origin[1]],
            "grid": [self.spec.grid.rows, self.spec.grid.cols],
            "tags": sorted(
                _tag_id(label) for label in self.spec.tracking_tags
            ) + sorted(self._roaming_ids),
            "duration_s": float(duration_s),
            "query_interval_s": float(self.config.query_interval_s),
            "stream_step_s": float(self.config.stream_step_s),
        }
        if self.config.calibration is not None:
            # Zone identity includes the calibration loop: quarantine
            # state is part of the checkpoint, so a calibrating worker
            # must never resume a non-calibrating file (and vice versa).
            header["calibration"] = True
        return header

    # -- gateway tag surface -----------------------------------------------------

    def active_tags(self) -> tuple[str, ...]:
        """Tag ids this zone currently queries, sorted."""
        return tuple(sorted(self._active))

    def activate_tag(self, label: str) -> None:
        """Start querying ``label`` (ownership arrived here)."""
        tag_id = _tag_id(label)
        if tag_id not in self.deployment.tracking_truth:
            raise ConfigurationError(
                f"zone {self.zone_id!r} hosts no tag {label!r}"
            )
        if tag_id not in self._active:
            self._active.add(tag_id)
            self._next_query[tag_id] = self.simulator.now

    def deactivate_tag(self, label: str) -> None:
        """Stop querying ``label`` (ownership moved away)."""
        tag_id = _tag_id(label)
        self._active.discard(tag_id)
        self._next_query.pop(tag_id, None)

    def move_tag(self, label: str, local_pos: tuple[float, float]) -> None:
        """Move a hosted tag to a new *local* position (owner only)."""
        self.deployment.move_tracking_tag(_tag_id(label), local_pos)

    def last_estimate(self, label: str) -> tuple[float, float] | None:
        """The tag's last served *local* position in this zone, if any."""
        return self.pipeline.last_estimate(_tag_id(label))

    def transfer_estimate(
        self, label: str, local_pos: tuple[float, float]
    ) -> None:
        """Seed the level-4 ladder from a handed-off estimate (local)."""
        self.pipeline.transfer_last_estimate(_tag_id(label), local_pos)

    def set_admission(self, admission) -> None:
        """Attach an admission gate (duck typed: ``admit(now_s) -> bool``).

        Consulted before each due query is submitted; a shed query's
        schedule slot still advances (shed-newest — see
        :class:`~repro.zones.failover.ZoneAdmission`). ``None`` (the
        default) leaves the query path untouched.
        """
        self._admission = admission

    # -- lifecycle ---------------------------------------------------------------

    def start(self, duration_s: float) -> None:
        """Warm up and arm the session; :meth:`step` then drives ticks."""
        if self._stream is not None:
            raise SimulationError(
                f"zone {self.zone_id!r} worker already started"
            )
        self._duration_s = float(duration_s)
        self._wall_start = self._perf_clock()
        header = self.checkpoint_header(duration_s)
        if self._resume:
            self._restored = load_checkpoint(self._checkpoint_path)
            validate_header(self._restored, header)
        if self._checkpoint_path is not None:
            self._writer = CheckpointWriter(
                self._checkpoint_path, append=self._resume
            )
            if self._resume:
                self._writer.write_marker("resume", t_cut=self._restored.t_cut)
            else:
                self._writer.write_header(**header)

        simulator = self.simulator
        stream = SimulatorRecordStream(
            simulator, step_s=self.config.stream_step_s
        )
        stream.__enter__()
        self._stream = stream
        try:
            with current_tracer().span(
                "zone.warmup", zone=self.zone_id
            ) as wsp:
                warmed_s = self._warm_up(stream)
                wsp.set("warmed_until_s", float(warmed_s))
            # Per-zone corrector baseline: after warm-up (clean series),
            # before this zone's fault injector attaches.
            self.pipeline.arm_calibration(simulator.now)
            if self._fault_plan is not None:
                from ..faults.injector import FaultInjector  # lazy: cycle

                self._injector = FaultInjector(
                    self._fault_plan, metrics=self.pipeline.metrics
                )
                simulator.set_fault_injector(self._injector)
            else:
                self._injector = None
            if self._restored is not None:
                self.pipeline.restore_checkpoint_state(
                    self._restored.snapshot["state"],
                    [result_from_doc(d) for d in self._restored.results],
                )
                self.pipeline.begin_replay()
                self._replay_until = self._restored.t_cut
            self._start_s = simulator.now
            self._next_query = {
                tag: simulator.now for tag in sorted(self._active)
            }
            self._wal_index = len(self.pipeline.results)
            log_event(
                self._logger, "zone_session_start",
                zone=self.zone_id, tags=len(self._active),
                duration=duration_s, t=self._start_s,
                faults=(
                    len(self._fault_plan)
                    if self._fault_plan is not None else 0
                ),
                resumed=self._restored is not None,
                checkpoint=self._writer is not None,
            )
            if self._writer is not None and self._restored is None:
                self._writer.write_snapshot(
                    t=self._start_s,
                    results_count=0,
                    state=self.pipeline.checkpoint_state(),
                    records_dispatched=0,
                )
            self._chunks = stream.iter_chunks(duration_s)
        except BaseException:
            self.abort()
            raise

    def _warm_up(self, stream: SimulatorRecordStream) -> float:
        """Stream until every reader covers the reference grid.

        Same loop as the unzoned session's warm-up — routed through the
        zone pipeline's own ingestion queue.
        """
        simulator = stream.simulator
        pipeline = self.pipeline
        deadline = simulator.now + self.warmup_max_s
        while simulator.now < deadline:
            records = stream.advance(min(2.0, deadline - simulator.now))
            pipeline.ingest.submit(records)
            pipeline.ingest.deliver_pending()
            coverage = pipeline.middleware.coverage(simulator.now)
            if all(c >= 1.0 for c in coverage.values()):
                return simulator.now
        raise SimulationError(
            f"zone {self.zone_id!r}: reference coverage incomplete after "
            f"{self.warmup_max_s}s of warm-up: "
            f"{pipeline.middleware.coverage(simulator.now)}"
        )

    def _flip_to_live(self, now_s: float) -> None:
        pipeline = self.pipeline
        pipeline.end_replay()
        pipeline.verify_replay(self._restored.snapshot["state"])
        snap_dispatched = self._restored.snapshot.get("records_dispatched")
        if (
            snap_dispatched is not None
            and self._records_dispatched != int(snap_dispatched)
        ):
            raise CheckpointError(
                f"zone {self.zone_id!r} replay diverged on dispatched "
                f"records: reconstructed {self._records_dispatched}, "
                f"checkpoint {snap_dispatched}"
            )
        log_event(
            self._logger, "zone_resume_live",
            zone=self.zone_id, t=now_s,
            records_replayed=self._records_dispatched,
            results_restored=self._wal_index,
        )

    def _submit_scheduled(self, now_s: float) -> None:
        """Submit every open-loop schedule event due at this tick.

        Arrival times are relative to the session start (post warm-up).
        The cursor only moves forward — arrivals are submitted exactly
        once, in schedule order, regardless of how the service is
        keeping up (that is the open-loop contract). Events for tags
        this zone does not currently own are skipped with the cursor
        still advancing, and admission control applies per arrival
        exactly as it does to interval-driven queries.
        """
        schedule = self._query_schedule
        assert schedule is not None
        t_rel = now_s - self._start_s + 1e-9
        while self._sched_i < len(schedule) and schedule[self._sched_i][0] <= t_rel:
            _, label = schedule[self._sched_i]
            self._sched_i += 1
            tag = _tag_id(label)
            if tag not in self._active:
                continue
            if self._admission is not None and not self._admission.admit(now_s):
                continue  # shed-newest: the arrival is consumed, not queued
            self.pipeline.submit_request(tag, now_s)

    def step(self) -> list[ServiceResult] | None:
        """Process the next stream chunk; ``None`` when the stream ends.

        One call is exactly one tick of the unzoned session's
        dispatcher: deliver the chunk's records, submit due queries for
        the *active* tags, execute due batches, write-ahead-log the
        results and capture/flush the consistency cut.
        """
        if self._chunks is None:
            raise SimulationError(
                f"zone {self.zone_id!r} worker is not started"
            )
        if self._interrupted:
            return None
        try:
            now_s, records = next(self._chunks)
        except StopIteration:
            return None
        pipeline = self.pipeline
        writer = self._writer
        with current_tracer().span(
            "zone.tick",
            zone=self.zone_id,
            tick_s=float(now_s),
            replay=bool(pipeline.replaying),
        ) as tsp:
            if self._replay_until is not None and now_s > self._replay_until:
                self._flip_to_live(now_s)
                self._replay_until = None
            pipeline.ingest.submit(records)
            self._records_dispatched += len(records)
            if self._query_schedule is not None:
                self._submit_scheduled(now_s)
            else:
                for tag in sorted(self._active):
                    if now_s >= self._next_query[tag]:
                        self._next_query[tag] = (
                            now_s + self.config.query_interval_s
                        )
                        if (
                            self._admission is not None
                            and not self._admission.admit(now_s)
                        ):
                            continue  # shed-newest: slot advances
                        pipeline.submit_request(tag, now_s)
            served = pipeline.process_due(now_s)
            tsp.update(n_records=len(records), n_served=len(served))
        if writer is not None and not pipeline.replaying:
            # Write-ahead: results hit the log before any observer.
            for result in served:
                writer.append_result(self._wal_index, result_to_doc(result))
                self._wal_index += 1
            # The consistency cut at this tick, captured eagerly so a
            # later interrupt can seal the WAL at a tick boundary.
            self._last_cut = {
                "t": now_s,
                "results_count": self._wal_index,
                "state": pipeline.checkpoint_state(),
                "records_dispatched": self._records_dispatched,
            }
            interval = self.config.runtime.checkpoint_interval_s
            if self._next_snapshot is None:
                self._next_snapshot = now_s + interval
            if now_s >= self._next_snapshot:
                writer.write_snapshot(**self._last_cut)
                self._next_snapshot = now_s + interval
        if (
            self._crash_point is not None
            and not pipeline.replaying
            and self._crash_point.due(now_s)
        ):
            self._crash_point.fire(now_s)
        return served

    def interrupt(self) -> None:
        """Graceful shutdown: seal the WAL at the last complete tick."""
        if self._interrupted:
            return
        self._interrupted = True
        if self._writer is not None and self._last_cut is not None:
            self._writer.write_snapshot(**self._last_cut)
        log_event(
            self._logger, "zone_session_interrupted",
            zone=self.zone_id, t=self.simulator.now,
            results=len(self.pipeline.results),
        )

    def abort(self) -> None:
        """Hard teardown (simulated crash): close the WAL as-is."""
        if self._writer is not None:
            self._writer.close()
        if self._stream is not None:
            self._stream.close()
        self._chunks = None
        self._finished = True

    def finish(self) -> SessionReport:
        """Drain, seal the checkpoint and assemble the session report."""
        if self._stream is None or self._finished:
            raise SimulationError(
                f"zone {self.zone_id!r} worker is not running"
            )
        pipeline = self.pipeline
        writer = self._writer
        restored = self._restored
        try:
            if pipeline.replaying:
                # Cut at (or past) the session end: the whole stream
                # replayed; flip to live so the drain below estimates.
                pipeline.end_replay()
                if not self._interrupted:
                    pipeline.verify_replay(restored.snapshot["state"])
            end_s = self.simulator.now
            with current_tracer().span("service.drain") as dsp:
                drained = pipeline.drain(end_s)
                dsp.set("n_drained", len(drained))
            if writer is not None:
                if not self._interrupted:
                    # Normal completion: commit the drained tail and seal
                    # with a final snapshot. (On interrupt the last
                    # complete tick's cut was already sealed; the drain
                    # above is report-only.)
                    logged = writer.results_logged + (
                        len(restored.results) if restored is not None else 0
                    )
                    all_results = pipeline.results
                    for i in range(logged, len(all_results)):
                        writer.append_result(i, result_to_doc(all_results[i]))
                    writer.write_snapshot(
                        t=end_s,
                        results_count=len(all_results),
                        state=pipeline.checkpoint_state(),
                    )
                writer.write_marker(
                    "end", t=end_s, interrupted=self._interrupted
                )
        finally:
            if writer is not None:
                writer.close()
            self._stream.close()
            self._finished = True
            self._chunks = None

        wall_s = self._perf_clock() - self._wall_start
        summary = dict(pipeline.metrics_summary())
        summary["session_duration_s"] = end_s - self._start_s
        summary["records_streamed"] = float(self._stream.records_streamed)
        summary["wall_time_s"] = wall_s
        summary["localizations_per_s"] = (
            summary["results"] / wall_s if wall_s > 0 else float("inf")
        )
        if self._injector is not None:
            for key, value in self._injector.counters().items():
                summary[f"fault_records_{key}"] = float(value)
        if self._interrupted:
            summary["interrupted"] = 1.0
        if self._resume:
            summary["resumed"] = 1.0
            summary["resume_results_restored"] = float(len(restored.results))
        if writer is not None:
            summary["checkpoint_results_logged"] = float(
                writer.results_logged
            )
            summary["checkpoint_snapshots"] = float(writer.snapshots_written)
        errors = tuple(
            estimation_error(
                r.position, self.deployment.tracking_truth[r.tag_id]
            )
            for r in pipeline.results
            if r.tag_id in self.deployment.tracking_truth
        )
        log_event(
            self._logger, "zone_session_end",
            zone=self.zone_id, results=len(pipeline.results),
            wall_s=wall_s, interrupted=self._interrupted,
        )
        return SessionReport(
            results=pipeline.results,
            summary=summary,
            metrics=pipeline.metrics,
            errors_m=errors,
            calibration_events=pipeline.calibration_events(),
        )

    def run(
        self, duration_s: float, *, tracer: Tracer | None = None
    ) -> SessionReport:
        """Start, step to exhaustion and finish — the standalone path.

        A :class:`KeyboardInterrupt` mid-stream is a graceful shutdown
        (matching the service); a simulated crash propagates with the
        WAL left exactly as the crash found it.
        """
        from ..faults.crash import SimulatedCrash  # lazy: avoid cycle

        if tracer is not None and tracer.clock is None:
            tracer.clock = lambda: self.simulator.now
        scope = use_tracer(tracer) if tracer is not None else _null_scope()
        with scope:
            try:
                self.start(duration_s)
                while True:
                    try:
                        if self.step() is None:
                            break
                    except KeyboardInterrupt:
                        self.interrupt()
                        break
            except SimulatedCrash:
                self.abort()
                raise
            return self.finish()


def _null_scope():
    from contextlib import nullcontext

    return nullcontext()


# ---------------------------------------------------------------------------
# Picklable parallel execution unit
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ZoneTask:
    """Everything a worker process needs to run one zone, picklable.

    ``fault_plan`` is the **site** plan; the task slices it for its own
    zone so the gateway ships one object to every process.
    """

    spec: ZoneSpec
    config: ServiceConfig | None = None
    duration_s: float = 10.0
    fault_plan: Any | None = None
    checkpoint_path: str | None = None
    resume: bool = False
    warmup_max_s: float = 120.0


def run_zone(task: ZoneTask) -> SessionReport:
    """Run one zone to completion (module-level: picklable for the pool)."""
    plan = (
        slice_fault_plan(task.fault_plan, task.spec.zone_id)
        if task.fault_plan is not None
        else None
    )
    worker = ZoneWorker(
        task.spec,
        task.config,
        fault_plan=plan,
        checkpoint_path=task.checkpoint_path,
        resume=task.resume,
        warmup_max_s=task.warmup_max_s,
    )
    return worker.run(task.duration_s)
