"""Zone-level fault tolerance: supervised channels, admission, respawn.

This module is the reliability layer between the
:class:`~repro.zones.gateway.ZoneGateway` and its
:class:`~repro.zones.worker.ZoneWorker` fleet. The gateway never touches
a worker directly when failover is enabled; every call goes through a
:class:`ZoneChannel`, which

* **journals** every gateway→worker tag-surface call (activate /
  deactivate / move / transfer) against the stream chunk it applies to,
  and replays the journal *in order* both for live operation and for
  recovery — the seeded world regenerates the same RSSI stream only if
  it sees the same surface-call sequence;
* **supervises** the per-chunk step call with the shared
  :class:`~repro.runtime.policy.RetryPolicy` vocabulary (deadlines,
  bounded exponential backoff) against the zone-scoped control-plane
  faults of :mod:`repro.faults.models`;
* **respawns** a dead zone from its zone-identity checkpoint (reusing
  :mod:`repro.runtime.checkpoint` resume-by-replay) and replays the full
  surface-call journal through the gap, so the recovered zone's answers
  are *byte-identical* to an uninterrupted run's;
* **degrades explicitly** when recovery is off or exhausted: the zone is
  marked down and the gateway serves interim last-known answers
  (``estimator="gateway-interim"``, ``reason="zone_down"`` — a new level
  of the degradation ladder above the per-zone levels, see
  ``docs/SERVICE.md``) while roaming tags are rerouted to the
  next-nearest live zone.

Admission control (:class:`AdmissionPolicy` + :class:`TokenBucket`) is
the SLO guard on the same path: a deterministic token bucket on the
zone's *simulation* clock sheds localization queries before they enter a
saturated pipeline (shed-newest: the schedule still advances, the shed
is counted, admitted work is never abandoned). Disabled by default —
the bit-identity contract with the unfailover'd gateway holds.

Determinism notes
-----------------
The journal defers surface calls to just before the chunk they precede.
A zone's simulation clock only advances inside ``step()``, so a deferred
call observes exactly the worker state an immediate call would have —
which is why the default channel path is bit-identical to the direct
PR-6 loop, and why a respawn replay (same journal, same seeded world)
reconverges exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

from ..exceptions import ConfigurationError
from ..faults.models import is_zone_fault
from ..obs import Tracer
from ..runtime.policy import RetryPolicy
from ..service.metrics import get_service_logger, log_event
from ..service.pipeline import ServiceConfig, ServiceResult
from ..service.session import SessionReport
from ..types import estimation_error
from .spec import ZoneSpec, slice_fault_plan
from .worker import ZoneWorker, _tag_id

__all__ = [
    "AdmissionPolicy",
    "TokenBucket",
    "ZoneAdmission",
    "ZoneFailoverPolicy",
    "ZoneChannel",
]

#: Reason string of gateway-interim results — the ladder level above the
#: per-zone levels (``docs/SERVICE.md``): the *zone* is unavailable, not
#: just a reader or an intersection.
ZONE_DOWN_REASON = "zone_down"

#: Estimator tag of gateway-served interim answers.
INTERIM_ESTIMATOR = "gateway-interim"


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TokenBucket:
    """Deterministic token bucket on an injected (simulation) clock.

    Refill is computed lazily from elapsed clock time, so the bucket is
    a pure function of the admission request sequence — no wall clock,
    no background thread.
    """

    def __init__(self, rate_per_s: float, burst: float):
        if rate_per_s <= 0:
            raise ConfigurationError(
                f"rate_per_s must be positive, got {rate_per_s}"
            )
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_s: float | None = None

    @property
    def tokens(self) -> float:
        return self._tokens

    def try_acquire(self, now_s: float) -> bool:
        """Take one token at clock time ``now_s``; False when empty."""
        now_s = float(now_s)
        if self._last_s is not None and now_s > self._last_s:
            self._tokens = min(
                self.burst, self._tokens + (now_s - self._last_s) * self.rate_per_s
            )
        self._last_s = now_s
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class AdmissionPolicy:
    """SLO-aware admission control knobs for one zone's query stream.

    Parameters
    ----------
    rate_per_s:
        Sustained localization queries per *simulated* second the zone
        admits.
    burst:
        Bucket depth: how many queries may arrive back-to-back before
        shedding starts.
    saturation_shed:
        Also shed every query while the zone is marked saturated by a
        :class:`~repro.faults.models.SlowZoneFault` window — protecting
        a browning-out zone regardless of the token budget.
    """

    rate_per_s: float = 100.0
    burst: int = 16
    saturation_shed: bool = False

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ConfigurationError(
                f"rate_per_s must be positive, got {self.rate_per_s}"
            )
        if self.burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {self.burst}")

    def with_(self, **changes) -> "AdmissionPolicy":
        """Modified copy (thin wrapper over dataclasses.replace)."""
        return replace(self, **changes)


class ZoneAdmission:
    """One zone's admission gate: token bucket + overload accounting.

    Consulted by :meth:`ZoneWorker.step` before each due query is
    submitted (shed-newest: a refused query is counted and its schedule
    slot advances — admitted work is never abandoned to make room).
    """

    def __init__(self, policy: AdmissionPolicy, *, metrics=None):
        self.policy = policy
        self.bucket = TokenBucket(policy.rate_per_s, policy.burst)
        self.saturated = False
        self.admitted = 0
        self.shed = 0
        self._c_admitted = self._c_shed = None
        if metrics is not None:
            self._c_admitted = metrics.counter(
                "admission_requests_admitted_total",
                "Localization queries admitted by the zone's token bucket",
            )
            self._c_shed = metrics.counter(
                "admission_requests_shed_total",
                "Localization queries shed by zone admission control",
            )

    def admit(self, now_s: float) -> bool:
        """Admit or shed one query at zone-simulation time ``now_s``."""
        ok = not (self.policy.saturation_shed and self.saturated)
        if ok:
            ok = self.bucket.try_acquire(now_s)
        if ok:
            self.admitted += 1
            if self._c_admitted is not None:
                self._c_admitted.inc()
        else:
            self.shed += 1
            if self._c_shed is not None:
                self._c_shed.inc()
        return ok


# ---------------------------------------------------------------------------
# Failover policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ZoneFailoverPolicy:
    """Gateway-side supervision knobs for the zone fleet.

    Parameters
    ----------
    retry:
        Shared deadline/retry/backoff vocabulary
        (:class:`~repro.runtime.policy.RetryPolicy`) of the
        gateway→worker call path: a hung worker's call times out after
        ``retry.deadline_s``, is retried ``retry.max_retries`` times
        with exponential backoff, and only then is the instance killed.
    respawn:
        Recover a dead zone by respawning it from its checkpoint (or,
        without a checkpoint, by cold re-execution) and replaying the
        surface-call journal — answers come back byte-identical. When
        ``False`` the zone stays down and the gateway serves interim
        last-known answers.
    max_respawns:
        Respawn budget per zone; once exhausted the zone is treated as
        permanently down (crash-looping zones must not flap forever).
    admission:
        Optional per-zone :class:`AdmissionPolicy`; ``None`` (default)
        disables admission control entirely.
    """

    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(deadline_s=5.0, max_retries=2)
    )
    respawn: bool = True
    max_respawns: int = 2
    admission: AdmissionPolicy | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.retry, RetryPolicy):
            raise ConfigurationError(
                f"retry must be a RetryPolicy, got {type(self.retry).__name__}"
            )
        if self.max_respawns < 0:
            raise ConfigurationError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )

    def with_(self, **changes) -> "ZoneFailoverPolicy":
        """Modified copy (thin wrapper over dataclasses.replace)."""
        return replace(self, **changes)


# ---------------------------------------------------------------------------
# The supervised channel
# ---------------------------------------------------------------------------


class ZoneChannel:
    """The gateway's supervised, journaling call path to one zone.

    All tag-surface calls are *journaled* with the stream chunk they
    precede and applied inside :meth:`advance_to` right before that
    chunk is stepped — one mechanism serves live operation, link-loss
    catch-up and respawn recovery. Reads (:meth:`last_estimate_site`)
    are answered by the live worker when it is current, and by the
    channel's result cache (the gateway's own view) when the zone is
    down or behind.
    """

    def __init__(
        self,
        spec: ZoneSpec,
        config: ServiceConfig,
        *,
        policy: ZoneFailoverPolicy,
        site_fault_plan=None,
        roaming_tags: Mapping[str, tuple[float, float]] | None = None,
        checkpoint_path: str | None = None,
        resume: bool = False,
        perf_clock: Callable[[], float] = time.perf_counter,
        warmup_max_s: float = 120.0,
        tracer: Tracer | None = None,
        sleep: Callable[[float], None] = time.sleep,
        query_schedule: Sequence[tuple[float, str]] | None = None,
    ):
        if policy.admission is not None and checkpoint_path is not None:
            raise ConfigurationError(
                "admission control does not compose with zone checkpoints: "
                "shed decisions are not checkpointed, so a resume could not "
                "replay them; disable one of the two"
            )
        self.spec = spec
        self.config = config
        self.policy = policy
        self._roaming_tags = dict(roaming_tags or {})
        self._checkpoint_path = checkpoint_path
        self._resume = bool(resume)
        self._perf_clock = perf_clock
        self._warmup_max_s = warmup_max_s
        self._tracer = tracer
        self._sleep = sleep
        self._query_schedule = query_schedule
        self._logger = get_service_logger()

        # Record-path slice for the worker; zone-scoped control faults
        # are compiled here and consumed by this channel only.
        self._record_plan = (
            slice_fault_plan(site_fault_plan, spec.zone_id)
            if site_fault_plan is not None
            else None
        )
        self._crashes: list = []
        self._hangs: list = []
        self._links: list = []
        self._slows: list = []
        if site_fault_plan is not None:
            for f in site_fault_plan:
                if not is_zone_fault(f) or f.zone_id != spec.zone_id:
                    continue
                compiled = f.compile(None)
                kind = type(f).__name__
                if kind == "ZoneCrashFault":
                    self._crashes.append(compiled)
                elif kind == "WorkerHangFault":
                    self._hangs.append(compiled)
                elif kind == "ZoneLinkLossFault":
                    self._links.append(compiled)
                elif kind == "SlowZoneFault":
                    self._slows.append(compiled)

        self.worker: ZoneWorker | None = None
        self.admission: ZoneAdmission | None = None
        self._duration_s = 0.0
        self._journal: list[tuple[int, str, tuple]] = []
        self._k = 0  # chunks this zone has processed
        self._down = False
        self._active_at_crash: tuple[str, ...] = ()
        self._cache: dict[str, ServiceResult] = {}
        self._next_interim: dict[str, float] = {}
        self.interim_served: list[ServiceResult] = []
        # supervision accounting
        self.crashes = 0
        self.respawns = 0
        self.timeouts = 0
        self.retries = 0
        self.link_failures = 0
        self.slow_ticks = 0

    # -- identity / status -----------------------------------------------------

    @property
    def zone_id(self) -> str:
        return self.spec.zone_id

    @property
    def down(self) -> bool:
        """True once the zone is permanently down (no respawn left)."""
        return self._down

    @property
    def chunks_processed(self) -> int:
        return self._k

    def saturated_at(self, tau_s: float) -> bool:
        """Is a slow-zone window active at gateway-relative ``tau_s``?"""
        return any(s.slow_at(tau_s) for s in self._slows)

    def accepts_handoffs(self, tau_s: float) -> bool:
        """May the gateway route a roaming-tag handoff here at ``tau_s``?"""
        return not self._down and not self.saturated_at(tau_s)

    # -- lifecycle -------------------------------------------------------------

    def start(self, duration_s: float) -> None:
        self._duration_s = float(duration_s)
        self.worker = self._build_worker(resume=self._resume)
        self._scoped(self.worker.start, duration_s)
        self._attach_admission()

    def _build_worker(self, *, resume: bool) -> ZoneWorker:
        return ZoneWorker(
            self.spec,
            self.config,
            fault_plan=self._record_plan,
            roaming_tags=self._roaming_tags,
            checkpoint_path=self._checkpoint_path,
            resume=resume,
            perf_clock=self._perf_clock,
            warmup_max_s=self._warmup_max_s,
            query_schedule=self._query_schedule,
        )

    def _attach_admission(self) -> None:
        if self.policy.admission is None:
            return
        # A fresh gate per worker instance: a cold respawn re-executes
        # the same tick sequence against a fresh bucket, so its shed
        # decisions replay identically.
        self.admission = ZoneAdmission(
            self.policy.admission, metrics=self.worker.metrics
        )
        self.worker.set_admission(self.admission)

    # -- the journaled tag surface ---------------------------------------------

    def enqueue(self, chunk_k: int, method: str, *args) -> None:
        """Journal one surface call against *gateway* chunk ``chunk_k``.

        Keyed by the gateway's tick, not the channel's own progress: a
        zone that has fallen behind the gateway clock (link loss)
        receives each deferred call at the simulated time it was issued,
        not bunched together at reconnect — catch-up replays the exact
        call/step interleaving a healthy zone would have seen.

        Dropped silently for a permanently-down zone — the caller is the
        gateway, which reroutes ownership away on the next boundary.
        """
        if self._down:
            return
        self._journal.append((int(chunk_k), method, args))

    _SURFACE = {
        "move": "move_tag",
        "activate": "activate_tag",
        "deactivate": "deactivate_tag",
        "transfer": "transfer_estimate",
    }

    def _apply_journal(self, chunk_k: int) -> None:
        for k, method, args in self._journal:
            if k != chunk_k:
                continue
            self._scoped(getattr(self.worker, self._SURFACE[method]), *args)

    def last_estimate_site(self, label: str) -> tuple[float, float] | None:
        """The tag's last known position, in *site* coordinates.

        Served by the live worker when the zone is current; by the
        channel's own result cache (the last answer the gateway actually
        saw) when the zone is down or lagging behind the gateway clock —
        an unreachable worker cannot be queried for a fresher value.
        """
        if not self._down and self.worker is not None:
            local = self._scoped(self.worker.last_estimate, label)
            if local is not None:
                return self.spec.to_global(local)
            return None
        cached = self._cache.get(_tag_id(label))
        if cached is None:
            return None
        return self.spec.to_global(cached.position)

    # -- supervised advancement ------------------------------------------------

    def advance_to(
        self, k_target: int, tau_s: float
    ) -> list[ServiceResult] | None:
        """Process chunks up to the gateway's chunk counter ``k_target``.

        The supervised step call: zone-scoped fault dispositions are
        evaluated here (death → respawn or mark-down; hang → deadline
        timeouts, retry budget, kill; link loss → fall behind; slow →
        saturation), then the zone catches up chunk by chunk, applying
        journaled surface calls before each step. Returns the results
        served (``[]`` while unreachable/down), or ``None`` when the
        zone's stream is exhausted.
        """
        if self._down:
            return []
        if any(c.fires_at(tau_s) for c in self._crashes):
            self.crashes += 1
            log_event(
                self._logger, "zone_crash_detected",
                zone=self.zone_id, tau=tau_s, chunks=self._k,
            )
            if not self._recover(tau_s):
                return []
        elif any(h.fires_at(tau_s) for h in self._hangs):
            self._charge_hang(tau_s)
            if not self._recover(tau_s):
                return []
        if any(link.down_at(tau_s) for link in self._links):
            # Transient unreachability: the retry budget burns without a
            # kill — the worker is alive, the link is not. The zone
            # falls behind and catches up deterministically later.
            attempts = self.policy.retry.max_retries + 1
            self.link_failures += attempts
            self.retries += self.policy.retry.max_retries
            for attempt in range(1, self.policy.retry.max_retries + 1):
                self._sleep(self.policy.retry.backoff_s(attempt))
            log_event(
                self._logger, "zone_link_down",
                zone=self.zone_id, tau=tau_s, behind=k_target - self._k,
            )
            return []
        if self.saturated_at(tau_s):
            self.slow_ticks += 1
        if self.admission is not None:
            self.admission.saturated = self.saturated_at(tau_s)
        return self._catch_up(k_target)

    def _charge_hang(self, tau_s: float) -> None:
        """A wedged instance: every attempt times out, then it is killed."""
        retry = self.policy.retry
        attempts = retry.max_retries + 1
        self.timeouts += attempts
        self.retries += retry.max_retries
        for attempt in range(1, retry.max_retries + 1):
            self._sleep(retry.backoff_s(attempt))
        self.crashes += 1
        log_event(
            self._logger, "zone_worker_hung",
            zone=self.zone_id, tau=tau_s, timeouts=attempts,
            deadline_s=retry.deadline_s,
        )

    def _recover(self, tau_s: float) -> bool:
        """Kill the instance; respawn within budget, else mark down."""
        self._scoped(self.worker.abort)
        if not self.policy.respawn or self.respawns >= self.policy.max_respawns:
            self._mark_down(tau_s)
            return False
        self._respawn(tau_s)
        return True

    def _mark_down(self, tau_s: float) -> None:
        self._down = True
        self._active_at_crash = self.worker.active_tags()
        self._next_interim = {tag: tau_s for tag in self._active_at_crash}
        log_event(
            self._logger, "zone_down",
            zone=self.zone_id, tau=tau_s, chunks=self._k,
            respawns=self.respawns,
        )

    def _respawn(self, tau_s: float) -> None:
        """Fresh instance from the checkpoint + full journal replay.

        With a checkpoint the fresh worker resumes by replay (estimation
        skipped up to the last committed cut); without one it cold
        re-executes from the start. Either way the *entire* surface-call
        journal replays in chunk order — tag positions shape the RSSI
        stream, so the re-seeded world must see every call the first
        instance saw, at the same chunk boundaries.
        """
        self.respawns += 1
        import os

        resume = (
            self._checkpoint_path is not None
            and os.path.exists(self._checkpoint_path)
        )
        self.worker = self._build_worker(resume=resume)
        self._scoped(self.worker.start, self._duration_s)
        self._attach_admission()
        recovered_k = self._k
        self._k = 0
        while self._k < recovered_k:
            served = self._step_next()
            if served is None:  # pragma: no cover - journal never outruns
                raise ConfigurationError(
                    f"zone {self.zone_id!r} stream exhausted during respawn "
                    f"replay at chunk {self._k}/{recovered_k}"
                )
        log_event(
            self._logger, "zone_respawned",
            zone=self.zone_id, tau=tau_s, resumed=resume,
            chunks_replayed=recovered_k, respawns=self.respawns,
        )

    def _step_next(self) -> list[ServiceResult] | None:
        next_k = self._k + 1
        self._apply_journal(next_k)
        served = self._scoped(self.worker.step)
        if served is None:
            return None
        self._k = next_k
        for r in served:
            self._cache[r.tag_id] = r
        return served

    def _catch_up(self, k_target: int) -> list[ServiceResult] | None:
        out: list[ServiceResult] = []
        while self._k < k_target:
            served = self._step_next()
            if served is None:
                return None
            out.extend(served)
        return out

    # -- interim serving (zone down) -------------------------------------------

    def interim_results(self, tau_s: float) -> list[ServiceResult]:
        """Gateway-interim answers due at ``tau_s`` for a down zone.

        Last-known positions (site frame) at the configured query
        cadence on the gateway's relative clock, degraded with
        ``reason="zone_down"``. Tags the zone never localized have
        nothing to serve from; they are counted, never silently skipped.
        """
        if not self._down:
            return []
        out: list[ServiceResult] = []
        interval = self.config.query_interval_s
        for tag in sorted(self._next_interim):
            if tau_s < self._next_interim[tag]:
                continue
            self._next_interim[tag] = self._next_interim[tag] + interval
            cached = self._cache.get(tag)
            if cached is None:
                continue
            site = self.spec.to_global(cached.position)
            out.append(
                ServiceResult(
                    tag_id=tag,
                    position=(float(site[0]), float(site[1])),
                    estimator=INTERIM_ESTIMATOR,
                    degraded=True,
                    reason=ZONE_DOWN_REASON,
                    requested_at_s=float(tau_s),
                    completed_at_s=float(tau_s),
                    processing_latency_s=0.0,
                    diagnostics={"zone": self.zone_id},
                )
            )
        self.interim_served.extend(out)
        return out

    def drop_interim_tag(self, label: str) -> None:
        """Stop interim serving for a tag rerouted to another zone."""
        self._next_interim.pop(_tag_id(label), None)

    # -- teardown --------------------------------------------------------------

    def interrupt(self) -> None:
        if not self._down and self.worker is not None:
            self.worker.interrupt()

    def finish(self) -> SessionReport:
        """The zone's session report; synthesized for a dead zone.

        A down zone's worker was aborted (its WAL closed as the crash
        left it), but the pipeline object still holds everything served
        before death — that, honestly marked, is the zone's report. The
        gateway-interim answers served on its behalf live at the gateway
        level, not here.
        """
        if not self._down:
            return self._scoped(self.worker.finish)
        pipeline = self.worker.pipeline
        summary = dict(pipeline.metrics_summary())
        summary["zone_down"] = 1.0
        summary["interim_results"] = float(len(self.interim_served))
        errors = tuple(
            estimation_error(
                r.position, self.worker.deployment.tracking_truth[r.tag_id]
            )
            for r in pipeline.results
            if r.tag_id in self.worker.deployment.tracking_truth
        )
        return SessionReport(
            results=pipeline.results,
            summary=summary,
            metrics=self.worker.metrics,
            errors_m=errors,
        )

    def counters(self) -> dict[str, int]:
        """Snapshot of the channel's supervision accounting."""
        return {
            "crashes": self.crashes,
            "respawns": self.respawns,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "link_failures": self.link_failures,
            "slow_ticks": self.slow_ticks,
            "down": int(self._down),
            "interim_results": len(self.interim_served),
            "admission_shed": self.admission.shed if self.admission else 0,
        }

    # -- tracer plumbing -------------------------------------------------------

    def _scoped(self, fn, *args):
        """Call into the worker with the tracer clock on its timeline.

        Mirrors :meth:`ZoneGateway._worker_scope`: spans emitted inside
        a worker call are stamped with that zone's simulation time.
        """
        tracer = self._tracer
        if tracer is None:
            return fn(*args)
        saved = tracer.clock
        tracer.clock = lambda: self.worker.simulator.now
        try:
            return fn(*args)
        finally:
            tracer.clock = saved
