"""The single front door over many shared-nothing zones.

:class:`ZoneGateway` owns a :class:`~repro.zones.spec.ZonePlan` and runs
one :class:`~repro.zones.worker.ZoneWorker` per zone, presenting the
whole site as one service:

* **Routing** — a tag position is assigned to a zone by coarse
  reader-set proximity (:meth:`ZonePlan.detect_zone`): the zone whose
  reader constellation is nearest owns the tag. Initial assignments are
  traced as ``gateway.route`` events.
* **Aggregation** — per-zone metrics (already namespaced
  ``repro_zone_<id>_*``), summaries and witnesses are collected into one
  :class:`MultiZoneReport`; zone traces nest under the gateway's ambient
  tracer.
* **Handoff** — roaming tags cross zone boundaries through a
  deterministic protocol executed at chunk boundaries: evaluated in
  sorted tag order on the gateway's relative clock (``τ = k·step``),
  the old owner deactivates, the last estimate is re-expressed
  old-local -> site -> new-local and seeded into the receiver's ladder
  (:meth:`ZoneWorker.transfer_estimate`), and the new owner moves and
  activates its copy. Every crossing is a ``gateway.handoff`` span and a
  :class:`HandoffEvent` in the report. The protocol never consults
  wall-clock or estimator internals, so it behaves identically while a
  zone is mid-degradation or has readers open-circuit.

Execution modes:

* **serial lockstep** (default) — workers sorted by zone id, one chunk
  each per iteration; required for roaming plans (handoff needs all
  zones at the same τ) and byte-reproducible run to run.
* **parallel** — non-roaming plans fan out one process per zone through
  :class:`~repro.runtime.supervisor.SupervisedPool`; shared-nothing by
  construction, bit-identical to the serial mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..exceptions import ConfigurationError
from ..obs import Tracer, current_tracer, use_tracer
from ..service.metrics import get_service_logger, log_event
from ..service.pipeline import ServiceConfig
from ..service.session import SessionReport
from .spec import RoamingTag, ZonePlan, ZoneSpec, slice_fault_plan
from .worker import ZoneTask, ZoneWorker, run_zone

__all__ = ["HandoffEvent", "MultiZoneReport", "ZoneGateway"]


@dataclass(frozen=True)
class HandoffEvent:
    """One roaming-tag crossing, in site-frame terms.

    ``carried_estimate`` is the sending zone's last estimate for the tag
    re-expressed in site coordinates (``None`` when the sender had never
    localized it — the receiver then starts cold).
    """

    t_rel_s: float
    tag: str
    from_zone: str
    to_zone: str
    position: tuple[float, float]
    carried_estimate: tuple[float, float] | None


@dataclass(frozen=True)
class MultiZoneReport:
    """Everything a multi-zone run produced, zone by zone.

    Attributes
    ----------
    zones:
        Zone id -> that zone's :class:`SessionReport`, in zone-id order.
    handoffs:
        Every :class:`HandoffEvent`, in protocol execution order.
    summary:
        Site-level totals over the per-zone summaries.
    """

    zones: Mapping[str, SessionReport]
    handoffs: tuple[HandoffEvent, ...] = ()
    summary: Mapping[str, float] = field(default_factory=dict)

    def witness_document(self) -> dict[str, Any]:
        """The multi-zone determinism witness, as JSON types.

        Per-zone witnesses under their zone ids plus the handoff trail —
        a seeded plan run twice (or serial vs parallel, or crash-resumed)
        must produce a byte-identical ``json.dumps(..., sort_keys=True)``
        of this document.
        """
        return {
            "zones": {
                zid: report.witness_document()
                for zid, report in self.zones.items()
            },
            "handoffs": [
                {
                    "t_rel_s": float(h.t_rel_s),
                    "tag": h.tag,
                    "from_zone": h.from_zone,
                    "to_zone": h.to_zone,
                    "position": [float(h.position[0]), float(h.position[1])],
                    "carried_estimate": (
                        None if h.carried_estimate is None
                        else [
                            float(h.carried_estimate[0]),
                            float(h.carried_estimate[1]),
                        ]
                    ),
                }
                for h in self.handoffs
            ],
            "n_zones": len(self.zones),
            "n_results": sum(
                len(r.results) for r in self.zones.values()
            ),
        }

    def render_prometheus(self) -> str:
        """All zones' metrics, concatenated (names never collide)."""
        return "\n".join(
            report.render_prometheus() for report in self.zones.values()
        )


class ZoneGateway:
    """Runs a :class:`ZonePlan` as one site-wide localization service.

    Parameters
    ----------
    plan:
        The validated zone partition plus roaming tags.
    config:
        Service knobs applied to every zone (per-zone ``spec.vire``
        overrides still win inside each worker).
    fault_plan:
        The **site** fault plan; each zone injects its slice
        (:func:`~repro.zones.spec.slice_fault_plan` — ``"z1/reader-0"``
        targets zone ``z1`` only, unprefixed targets hit every zone).
    checkpoint_dir:
        Directory receiving one WAL file per zone (``<zone_id>.ckpt``).
    """

    def __init__(
        self,
        plan: ZonePlan,
        config: ServiceConfig | None = None,
        *,
        fault_plan=None,
        checkpoint_dir: str | None = None,
        warmup_max_s: float = 120.0,
        perf_clock: Callable[[], float] = time.perf_counter,
    ):
        self.plan = plan
        self.config = config or ServiceConfig()
        self.fault_plan = fault_plan
        self.checkpoint_dir = checkpoint_dir
        self.warmup_max_s = float(warmup_max_s)
        self._perf_clock = perf_clock
        self._logger = get_service_logger()

    # -- helpers ---------------------------------------------------------------

    def _checkpoint_path(self, zone_id: str) -> str | None:
        if self.checkpoint_dir is None:
            return None
        import os

        return os.path.join(self.checkpoint_dir, f"{zone_id}.ckpt")

    def _owner_at(self, tag: RoamingTag, t_rel_s: float) -> ZoneSpec:
        return self.plan.detect_zone(tag.position_at(t_rel_s))

    # -- the run ---------------------------------------------------------------

    def run(
        self,
        duration_s: float,
        *,
        parallel: bool = False,
        max_workers: int | None = None,
        resume: bool = False,
        tracer: Tracer | None = None,
    ) -> MultiZoneReport:
        """Run every zone for ``duration_s`` simulated seconds.

        Serial lockstep by default; ``parallel=True`` fans non-roaming
        plans out across processes (bit-identical results — the zones
        are shared-nothing). ``resume=True`` resumes every zone from its
        checkpoint file in ``checkpoint_dir``.
        """
        if parallel and self.plan.roaming:
            raise ConfigurationError(
                "roaming tags require serial lockstep execution: handoff "
                "is evaluated with all zones at the same relative time; "
                "run with parallel=False"
            )
        if parallel and tracer is not None:
            raise ConfigurationError(
                "tracing is not supported in parallel mode (spans cannot "
                "cross process boundaries deterministically)"
            )
        if resume and self.checkpoint_dir is None:
            raise ConfigurationError("resume=True requires a checkpoint_dir")
        if parallel:
            return self._run_parallel(duration_s, max_workers, resume)
        return self._run_serial(duration_s, resume, tracer)

    # -- parallel fan-out --------------------------------------------------------

    def _run_parallel(
        self,
        duration_s: float,
        max_workers: int | None,
        resume: bool,
    ) -> MultiZoneReport:
        from ..runtime.supervisor import SupervisedPool

        zones = sorted(self.plan.zones, key=lambda z: z.zone_id)
        tasks = [
            ZoneTask(
                spec=spec,
                config=self.config,
                duration_s=float(duration_s),
                fault_plan=self.fault_plan,
                checkpoint_path=self._checkpoint_path(spec.zone_id),
                resume=resume,
                warmup_max_s=self.warmup_max_s,
            )
            for spec in zones
        ]
        wall_start = self._perf_clock()
        workers = max_workers or len(zones)
        log_event(
            self._logger, "gateway_parallel_start",
            zones=len(zones), workers=workers, duration=duration_s,
        )
        with SupervisedPool(workers) as pool:
            reports = pool.map(run_zone, tasks)
        wall_s = self._perf_clock() - wall_start
        by_zone = {
            spec.zone_id: report for spec, report in zip(zones, reports)
        }
        return self._assemble(by_zone, (), wall_s, interrupted=False)

    # -- serial lockstep -----------------------------------------------------------

    def _run_serial(
        self,
        duration_s: float,
        resume: bool,
        tracer: Tracer | None,
    ) -> MultiZoneReport:
        step = self.config.stream_step_s
        zones = sorted(self.plan.zones, key=lambda z: z.zone_id)
        wall_start = self._perf_clock()

        # The gateway's relative clock: τ = k·step since query start,
        # shared by every zone regardless of their (per-seed) warm-up
        # lengths. Gateway spans are stamped with τ.
        tau = 0.0
        if tracer is not None and tracer.clock is None:
            tracer.clock = lambda: tau
        scope = use_tracer(tracer) if tracer is not None else _null_scope()

        workers: dict[str, ZoneWorker] = {}
        owner: dict[str, str] = {}
        handoffs: list[HandoffEvent] = []
        interrupted = False
        with scope:
            gateway_tracer = current_tracer()
            for spec in zones:
                workers[spec.zone_id] = ZoneWorker(
                    spec,
                    self.config,
                    fault_plan=(
                        slice_fault_plan(self.fault_plan, spec.zone_id)
                        if self.fault_plan is not None else None
                    ),
                    roaming_tags={
                        tag.label: spec.clamp_local(tag.position_at(0.0))
                        for tag in self.plan.roaming
                    },
                    checkpoint_path=self._checkpoint_path(spec.zone_id),
                    resume=resume,
                    perf_clock=self._perf_clock,
                    warmup_max_s=self.warmup_max_s,
                )
            log_event(
                self._logger, "gateway_serial_start",
                zones=len(zones), duration=duration_s,
                roaming=len(self.plan.roaming),
            )
            try:
                for worker in workers.values():
                    self._worker_scope(worker, tracer, worker.start, duration_s)

                # Initial routing: each roaming tag activates in (only)
                # the zone owning its t=0 position.
                for tag in sorted(self.plan.roaming, key=lambda t: t.label):
                    spec = self._owner_at(tag, 0.0)
                    owner[tag.label] = spec.zone_id
                    gpos = tag.position_at(0.0)
                    w = workers[spec.zone_id]
                    self._worker_scope(
                        w, tracer, w.move_tag,
                        tag.label, spec.clamp_local(gpos),
                    )
                    self._worker_scope(w, tracer, w.activate_tag, tag.label)
                    gateway_tracer.event(
                        "gateway.route",
                        tag=tag.label, zone=spec.zone_id,
                        x=float(gpos[0]), y=float(gpos[1]),
                    )

                exhausted = False
                while not exhausted:
                    tau += step
                    # Handoff protocol at the chunk boundary: ownership
                    # is re-evaluated *before* the chunk covering
                    # (τ-step, τ] is processed, in sorted tag order.
                    for tag in sorted(
                        self.plan.roaming, key=lambda t: t.label
                    ):
                        self._route_tag(
                            tag, tau, owner, workers, handoffs,
                            gateway_tracer, tracer,
                        )
                    for worker in workers.values():
                        served = self._worker_scope(
                            worker, tracer, worker.step
                        )
                        if served is None:
                            exhausted = True
            except KeyboardInterrupt:
                interrupted = True
                for worker in workers.values():
                    worker.interrupt()
                log_event(
                    self._logger, "gateway_interrupted",
                    tau=tau, zones=len(zones),
                )
            reports = {
                zid: self._worker_scope(workers[zid], tracer, workers[zid].finish)
                for zid in sorted(workers)
            }
        wall_s = self._perf_clock() - wall_start
        return self._assemble(
            reports, tuple(handoffs), wall_s, interrupted=interrupted
        )

    def _route_tag(
        self,
        tag: RoamingTag,
        tau: float,
        owner: dict[str, str],
        workers: dict[str, ZoneWorker],
        handoffs: list[HandoffEvent],
        gateway_tracer,
        tracer: Tracer | None,
    ) -> None:
        """Evaluate one roaming tag's ownership at τ; hand off if it moved."""
        gpos = tag.position_at(tau)
        new_spec = self.plan.detect_zone(gpos)
        old_id = owner[tag.label]
        new_id = new_spec.zone_id
        if new_id == old_id:
            # Owner unchanged: just track the motion inside the zone.
            w = workers[old_id]
            self._worker_scope(
                w, tracer, w.move_tag,
                tag.label, w.spec.clamp_local(gpos),
            )
            return
        old = workers[old_id]
        new = workers[new_id]
        with gateway_tracer.span(
            "gateway.handoff",
            tag=tag.label, t_rel_s=float(tau),
            from_zone=old_id, to_zone=new_id,
        ) as span:
            self._worker_scope(old, tracer, old.deactivate_tag, tag.label)
            carried_local = self._worker_scope(
                old, tracer, old.last_estimate, tag.label
            )
            carried_global = (
                None if carried_local is None
                else old.spec.to_global(carried_local)
            )
            local = new.spec.clamp_local(gpos)
            self._worker_scope(new, tracer, new.move_tag, tag.label, local)
            if carried_global is not None:
                self._worker_scope(
                    new, tracer, new.transfer_estimate,
                    tag.label, new.spec.to_local(carried_global),
                )
            self._worker_scope(new, tracer, new.activate_tag, tag.label)
            span.set("carried", carried_global is not None)
        owner[tag.label] = new_id
        handoffs.append(
            HandoffEvent(
                t_rel_s=float(tau),
                tag=tag.label,
                from_zone=old_id,
                to_zone=new_id,
                position=(float(gpos[0]), float(gpos[1])),
                carried_estimate=carried_global,
            )
        )
        log_event(
            self._logger, "gateway_handoff",
            tag=tag.label, tau=tau,
            from_zone=old_id, to_zone=new_id,
            carried=carried_global is not None,
        )

    @staticmethod
    def _worker_scope(worker: ZoneWorker, tracer: Tracer | None, fn, *args):
        """Call into a worker with the tracer clock on *its* sim timeline.

        Each zone has its own simulation clock; spans emitted inside a
        worker call (``zone.tick``, ``service.batch``, ...) must be
        stamped with that zone's time, while gateway spans between calls
        stay on the τ-clock. Swapping the shared tracer's clock around
        each call keeps both deterministic.
        """
        if tracer is None:
            return fn(*args)
        saved = tracer.clock
        tracer.clock = lambda: worker.simulator.now
        try:
            return fn(*args)
        finally:
            tracer.clock = saved

    # -- aggregation ---------------------------------------------------------------

    def _assemble(
        self,
        reports: Mapping[str, SessionReport],
        handoffs: tuple[HandoffEvent, ...],
        wall_s: float,
        *,
        interrupted: bool,
    ) -> MultiZoneReport:
        totals = {
            "zones": float(len(reports)),
            "handoffs": float(len(handoffs)),
            "wall_time_s": wall_s,
        }
        for key in (
            "requests", "results", "failed", "degraded",
            "records_streamed", "checkpoint_snapshots",
        ):
            total = sum(
                float(r.summary.get(key, 0.0)) for r in reports.values()
            )
            totals[key] = total
        totals["localizations_per_s"] = (
            totals["results"] / wall_s if wall_s > 0 else float("inf")
        )
        if interrupted:
            totals["interrupted"] = 1.0
        log_event(
            self._logger, "gateway_end",
            zones=len(reports), results=totals["results"],
            handoffs=len(handoffs), wall_s=wall_s,
            interrupted=interrupted,
        )
        return MultiZoneReport(
            zones={zid: reports[zid] for zid in sorted(reports)},
            handoffs=handoffs,
            summary=totals,
        )


def _null_scope():
    from contextlib import nullcontext

    return nullcontext()
