"""The single front door over many shared-nothing zones.

:class:`ZoneGateway` owns a :class:`~repro.zones.spec.ZonePlan` and runs
one :class:`~repro.zones.worker.ZoneWorker` per zone, presenting the
whole site as one service:

* **Routing** — a tag position is assigned to a zone by coarse
  reader-set proximity (:meth:`ZonePlan.detect_zone`): the zone whose
  reader constellation is nearest owns the tag. Initial assignments are
  traced as ``gateway.route`` events.
* **Aggregation** — per-zone metrics (already namespaced
  ``repro_zone_<id>_*``), summaries and witnesses are collected into one
  :class:`MultiZoneReport`; zone traces nest under the gateway's ambient
  tracer.
* **Handoff** — roaming tags cross zone boundaries through a
  deterministic protocol executed at chunk boundaries: evaluated in
  sorted tag order on the gateway's relative clock (``τ = k·step``),
  the old owner deactivates, the last estimate is re-expressed
  old-local -> site -> new-local and seeded into the receiver's ladder
  (:meth:`ZoneWorker.transfer_estimate`), and the new owner moves and
  activates its copy. Every crossing is a ``gateway.handoff`` span and a
  :class:`HandoffEvent` in the report. The protocol never consults
  wall-clock or estimator internals, so it behaves identically while a
  zone is mid-degradation or has readers open-circuit.

Execution modes:

* **serial lockstep** (default) — workers sorted by zone id, one chunk
  each per iteration; required for roaming plans (handoff needs all
  zones at the same τ) and byte-reproducible run to run.
* **parallel** — non-roaming plans fan out one process per zone through
  :class:`~repro.runtime.supervisor.SupervisedPool`; shared-nothing by
  construction, bit-identical to the serial mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..exceptions import ConfigurationError
from ..faults.models import is_zone_fault
from ..obs import Tracer, current_tracer, use_tracer
from ..service.metrics import MetricsRegistry, get_service_logger, log_event
from ..service.pipeline import ServiceConfig, ServiceResult
from ..service.session import SessionReport, result_witness_entry
from .failover import ZoneChannel, ZoneFailoverPolicy
from .spec import RoamingTag, ZonePlan, ZoneSpec, slice_fault_plan
from .worker import ZoneTask, ZoneWorker, run_zone

__all__ = ["HandoffEvent", "MultiZoneReport", "ZoneGateway"]

#: Default supervision policy: failover ON, recovery by respawn, no
#: admission control. With an empty fault plan this path is
#: *bit-identical* to ``failover=None`` (the bare PR-6 lockstep loop) —
#: the journal defers each surface call to the same worker state an
#: immediate call would have seen.
_DEFAULT_FAILOVER = ZoneFailoverPolicy()


@dataclass(frozen=True)
class HandoffEvent:
    """One roaming-tag crossing, in site-frame terms.

    ``carried_estimate`` is the sending zone's last estimate for the tag
    re-expressed in site coordinates (``None`` when the sender had never
    localized it — the receiver then starts cold).

    ``rerouted_from`` is set when cross-zone load shedding redirected
    the handoff away from the proximity-preferred zone (because it was
    down or saturated); ``carried_source`` is ``"cache"`` when the
    sending zone was unreachable and the estimate came from the
    gateway's own last-seen cache instead of the live worker.
    """

    t_rel_s: float
    tag: str
    from_zone: str
    to_zone: str
    position: tuple[float, float]
    carried_estimate: tuple[float, float] | None
    rerouted_from: str | None = None
    carried_source: str = "live"


@dataclass(frozen=True)
class MultiZoneReport:
    """Everything a multi-zone run produced, zone by zone.

    Attributes
    ----------
    zones:
        Zone id -> that zone's :class:`SessionReport`, in zone-id order.
    handoffs:
        Every :class:`HandoffEvent`, in protocol execution order.
    summary:
        Site-level totals over the per-zone summaries.
    interim:
        Gateway-interim answers served on behalf of down zones
        (``estimator="gateway-interim"``, ``reason="zone_down"``), in
        serving order. Empty unless a zone went permanently down.
    metrics:
        The gateway's own registry (``repro_gateway_*`` supervision and
        overload counters); ``None`` when failover was disabled.
    """

    zones: Mapping[str, SessionReport]
    handoffs: tuple[HandoffEvent, ...] = ()
    summary: Mapping[str, float] = field(default_factory=dict)
    interim: tuple[ServiceResult, ...] = ()
    metrics: MetricsRegistry | None = None

    def witness_document(self) -> dict[str, Any]:
        """The multi-zone determinism witness, as JSON types.

        Per-zone witnesses under their zone ids plus the handoff trail —
        a seeded plan run twice (or serial vs parallel, or crash-resumed)
        must produce a byte-identical ``json.dumps(..., sort_keys=True)``
        of this document.

        Failover-only facts (reroutes, cache-sourced carries, interim
        answers) appear *conditionally* — a fault-free run's witness is
        byte-identical to the pre-failover format.
        """
        doc = {
            "zones": {
                zid: report.witness_document()
                for zid, report in self.zones.items()
            },
            "handoffs": [
                self._handoff_entry(h) for h in self.handoffs
            ],
            "n_zones": len(self.zones),
            "n_results": sum(
                len(r.results) for r in self.zones.values()
            ),
        }
        if self.interim:
            doc["interim"] = [
                result_witness_entry(r) for r in self.interim
            ]
            doc["n_interim"] = len(self.interim)
        return doc

    @staticmethod
    def _handoff_entry(h: HandoffEvent) -> dict[str, Any]:
        entry = {
            "t_rel_s": float(h.t_rel_s),
            "tag": h.tag,
            "from_zone": h.from_zone,
            "to_zone": h.to_zone,
            "position": [float(h.position[0]), float(h.position[1])],
            "carried_estimate": (
                None if h.carried_estimate is None
                else [
                    float(h.carried_estimate[0]),
                    float(h.carried_estimate[1]),
                ]
            ),
        }
        if h.rerouted_from is not None:
            entry["rerouted_from"] = h.rerouted_from
        if h.carried_source != "live":
            entry["carried_source"] = h.carried_source
        return entry

    def render_prometheus(self) -> str:
        """All zones' metrics plus the gateway's own block, concatenated.

        Zone metrics are already namespaced ``repro_zone_<id>_*`` (the
        ingest queue's ``..._ingest_records_dropped_total`` /
        ``..._ingest_records_shed_total`` included); the gateway's
        supervision/overload counters render under ``repro_gateway_*``
        so one scrape sees both layers without collisions.
        """
        blocks = [
            report.render_prometheus() for report in self.zones.values()
        ]
        if self.metrics is not None:
            blocks.append(self.metrics.render_prometheus())
        return "\n".join(blocks)


class ZoneGateway:
    """Runs a :class:`ZonePlan` as one site-wide localization service.

    Parameters
    ----------
    plan:
        The validated zone partition plus roaming tags.
    config:
        Service knobs applied to every zone (per-zone ``spec.vire``
        overrides still win inside each worker).
    fault_plan:
        The **site** fault plan; each zone injects its slice
        (:func:`~repro.zones.spec.slice_fault_plan` — ``"z1/reader-0"``
        targets zone ``z1`` only, unprefixed targets hit every zone).
    checkpoint_dir:
        Directory receiving one WAL file per zone (``<zone_id>.ckpt``).
    failover:
        The zone-level supervision policy
        (:class:`~repro.zones.failover.ZoneFailoverPolicy`): gateway→
        worker calls are journaled and supervised, dead zones respawn
        from their checkpoints, and zone-scoped chaos faults take
        effect. Enabled by default — with an empty fault plan the
        supervised path is bit-identical to ``failover=None``, the bare
        unsupervised lockstep loop (kept as the escape hatch and the
        overhead-benchmark baseline).
    sleep:
        Backoff sleep injection for the supervised call path (tests pass
        a no-op to pay no wall-clock for retry backoff).
    query_schedules:
        Open-loop arrival schedules per zone id (the load harness):
        each zone's ``(t_rel_s, tag_label)`` events replace its
        interval-driven query loop (see
        :meth:`ZoneWorker._submit_scheduled`). Zones absent from the
        mapping keep the interval behaviour. Serial lockstep only.
    """

    def __init__(
        self,
        plan: ZonePlan,
        config: ServiceConfig | None = None,
        *,
        fault_plan=None,
        checkpoint_dir: str | None = None,
        warmup_max_s: float = 120.0,
        perf_clock: Callable[[], float] = time.perf_counter,
        failover: ZoneFailoverPolicy | None = _DEFAULT_FAILOVER,
        sleep: Callable[[float], None] = time.sleep,
        query_schedules: Mapping[str, Sequence[tuple[float, str]]]
        | None = None,
    ):
        self.plan = plan
        self.config = config or ServiceConfig()
        self.fault_plan = fault_plan
        self.checkpoint_dir = checkpoint_dir
        self.warmup_max_s = float(warmup_max_s)
        self._perf_clock = perf_clock
        self.failover = failover
        self._sleep = sleep
        self.query_schedules = (
            dict(query_schedules) if query_schedules is not None else None
        )
        if self.query_schedules is not None:
            known = {spec.zone_id for spec in plan.zones}
            unknown = sorted(set(self.query_schedules) - known)
            if unknown:
                raise ConfigurationError(
                    f"query_schedules name unknown zones {unknown}; "
                    f"the plan has {sorted(known)}"
                )
        self._logger = get_service_logger()
        if failover is None and self._has_zone_faults():
            raise ConfigurationError(
                "the fault plan contains zone-scoped faults but failover "
                "is disabled; zone faults are consumed by the supervised "
                "gateway path (pass a ZoneFailoverPolicy)"
            )

    def _has_zone_faults(self) -> bool:
        return self.fault_plan is not None and any(
            is_zone_fault(f) for f in self.fault_plan
        )

    # -- helpers ---------------------------------------------------------------

    def _checkpoint_path(self, zone_id: str) -> str | None:
        if self.checkpoint_dir is None:
            return None
        import os

        return os.path.join(self.checkpoint_dir, f"{zone_id}.ckpt")

    def _owner_at(self, tag: RoamingTag, t_rel_s: float) -> ZoneSpec:
        return self.plan.detect_zone(tag.position_at(t_rel_s))

    # -- the run ---------------------------------------------------------------

    def run(
        self,
        duration_s: float,
        *,
        parallel: bool = False,
        max_workers: int | None = None,
        resume: bool = False,
        tracer: Tracer | None = None,
    ) -> MultiZoneReport:
        """Run every zone for ``duration_s`` simulated seconds.

        Serial lockstep by default; ``parallel=True`` fans non-roaming
        plans out across processes (bit-identical results — the zones
        are shared-nothing). ``resume=True`` resumes every zone from its
        checkpoint file in ``checkpoint_dir``.
        """
        if parallel and self.plan.roaming:
            raise ConfigurationError(
                "roaming tags require serial lockstep execution: handoff "
                "is evaluated with all zones at the same relative time; "
                "run with parallel=False"
            )
        if parallel and tracer is not None:
            raise ConfigurationError(
                "tracing is not supported in parallel mode (spans cannot "
                "cross process boundaries deterministically)"
            )
        if resume and self.checkpoint_dir is None:
            raise ConfigurationError("resume=True requires a checkpoint_dir")
        if parallel and self._has_zone_faults():
            raise ConfigurationError(
                "zone-scoped faults require the serial supervised gateway "
                "(crash detection and respawn live on the gateway's call "
                "path); run with parallel=False"
            )
        if (
            parallel
            and self.failover is not None
            and self.failover.admission is not None
        ):
            raise ConfigurationError(
                "admission control is not supported in parallel mode; "
                "run with parallel=False"
            )
        if parallel and self.query_schedules is not None:
            raise ConfigurationError(
                "open-loop query schedules require serial lockstep "
                "execution (arrivals are keyed to the shared gateway "
                "clock); run with parallel=False"
            )
        if parallel:
            return self._run_parallel(duration_s, max_workers, resume)
        if self.failover is not None:
            return self._run_serial_failover(duration_s, resume, tracer)
        return self._run_serial(duration_s, resume, tracer)

    # -- parallel fan-out --------------------------------------------------------

    def _run_parallel(
        self,
        duration_s: float,
        max_workers: int | None,
        resume: bool,
    ) -> MultiZoneReport:
        from ..runtime.supervisor import SupervisedPool

        zones = sorted(self.plan.zones, key=lambda z: z.zone_id)
        tasks = [
            ZoneTask(
                spec=spec,
                config=self.config,
                duration_s=float(duration_s),
                fault_plan=self.fault_plan,
                checkpoint_path=self._checkpoint_path(spec.zone_id),
                resume=resume,
                warmup_max_s=self.warmup_max_s,
            )
            for spec in zones
        ]
        wall_start = self._perf_clock()
        workers = max_workers or len(zones)
        log_event(
            self._logger, "gateway_parallel_start",
            zones=len(zones), workers=workers, duration=duration_s,
        )
        with SupervisedPool(workers) as pool:
            reports = pool.map(run_zone, tasks)
        wall_s = self._perf_clock() - wall_start
        by_zone = {
            spec.zone_id: report for spec, report in zip(zones, reports)
        }
        return self._assemble(by_zone, (), wall_s, interrupted=False)

    # -- serial lockstep -----------------------------------------------------------

    def _run_serial(
        self,
        duration_s: float,
        resume: bool,
        tracer: Tracer | None,
    ) -> MultiZoneReport:
        step = self.config.stream_step_s
        zones = sorted(self.plan.zones, key=lambda z: z.zone_id)
        wall_start = self._perf_clock()

        # The gateway's relative clock: τ = k·step since query start,
        # shared by every zone regardless of their (per-seed) warm-up
        # lengths. Gateway spans are stamped with τ.
        tau = 0.0
        if tracer is not None and tracer.clock is None:
            tracer.clock = lambda: tau
        scope = use_tracer(tracer) if tracer is not None else _null_scope()

        workers: dict[str, ZoneWorker] = {}
        owner: dict[str, str] = {}
        handoffs: list[HandoffEvent] = []
        interrupted = False
        with scope:
            gateway_tracer = current_tracer()
            for spec in zones:
                workers[spec.zone_id] = ZoneWorker(
                    spec,
                    self.config,
                    fault_plan=(
                        slice_fault_plan(self.fault_plan, spec.zone_id)
                        if self.fault_plan is not None else None
                    ),
                    roaming_tags={
                        tag.label: spec.clamp_local(tag.position_at(0.0))
                        for tag in self.plan.roaming
                    },
                    checkpoint_path=self._checkpoint_path(spec.zone_id),
                    resume=resume,
                    perf_clock=self._perf_clock,
                    warmup_max_s=self.warmup_max_s,
                    query_schedule=(
                        self.query_schedules.get(spec.zone_id)
                        if self.query_schedules is not None else None
                    ),
                )
            log_event(
                self._logger, "gateway_serial_start",
                zones=len(zones), duration=duration_s,
                roaming=len(self.plan.roaming),
            )
            try:
                for worker in workers.values():
                    self._worker_scope(worker, tracer, worker.start, duration_s)

                # Initial routing: each roaming tag activates in (only)
                # the zone owning its t=0 position.
                for tag in sorted(self.plan.roaming, key=lambda t: t.label):
                    spec = self._owner_at(tag, 0.0)
                    owner[tag.label] = spec.zone_id
                    gpos = tag.position_at(0.0)
                    w = workers[spec.zone_id]
                    self._worker_scope(
                        w, tracer, w.move_tag,
                        tag.label, spec.clamp_local(gpos),
                    )
                    self._worker_scope(w, tracer, w.activate_tag, tag.label)
                    gateway_tracer.event(
                        "gateway.route",
                        tag=tag.label, zone=spec.zone_id,
                        x=float(gpos[0]), y=float(gpos[1]),
                    )

                exhausted = False
                while not exhausted:
                    tau += step
                    # Handoff protocol at the chunk boundary: ownership
                    # is re-evaluated *before* the chunk covering
                    # (τ-step, τ] is processed, in sorted tag order.
                    for tag in sorted(
                        self.plan.roaming, key=lambda t: t.label
                    ):
                        self._route_tag(
                            tag, tau, owner, workers, handoffs,
                            gateway_tracer, tracer,
                        )
                    for worker in workers.values():
                        served = self._worker_scope(
                            worker, tracer, worker.step
                        )
                        if served is None:
                            exhausted = True
            except KeyboardInterrupt:
                interrupted = True
                for worker in workers.values():
                    worker.interrupt()
                log_event(
                    self._logger, "gateway_interrupted",
                    tau=tau, zones=len(zones),
                )
            reports = {
                zid: self._worker_scope(workers[zid], tracer, workers[zid].finish)
                for zid in sorted(workers)
            }
        wall_s = self._perf_clock() - wall_start
        return self._assemble(
            reports, tuple(handoffs), wall_s, interrupted=interrupted
        )

    def _route_tag(
        self,
        tag: RoamingTag,
        tau: float,
        owner: dict[str, str],
        workers: dict[str, ZoneWorker],
        handoffs: list[HandoffEvent],
        gateway_tracer,
        tracer: Tracer | None,
    ) -> None:
        """Evaluate one roaming tag's ownership at τ; hand off if it moved."""
        gpos = tag.position_at(tau)
        new_spec = self.plan.detect_zone(gpos)
        old_id = owner[tag.label]
        new_id = new_spec.zone_id
        if new_id == old_id:
            # Owner unchanged: just track the motion inside the zone.
            w = workers[old_id]
            self._worker_scope(
                w, tracer, w.move_tag,
                tag.label, w.spec.clamp_local(gpos),
            )
            return
        old = workers[old_id]
        new = workers[new_id]
        with gateway_tracer.span(
            "gateway.handoff",
            tag=tag.label, t_rel_s=float(tau),
            from_zone=old_id, to_zone=new_id,
        ) as span:
            self._worker_scope(old, tracer, old.deactivate_tag, tag.label)
            carried_local = self._worker_scope(
                old, tracer, old.last_estimate, tag.label
            )
            carried_global = (
                None if carried_local is None
                else old.spec.to_global(carried_local)
            )
            local = new.spec.clamp_local(gpos)
            self._worker_scope(new, tracer, new.move_tag, tag.label, local)
            if carried_global is not None:
                self._worker_scope(
                    new, tracer, new.transfer_estimate,
                    tag.label, new.spec.to_local(carried_global),
                )
            self._worker_scope(new, tracer, new.activate_tag, tag.label)
            span.set("carried", carried_global is not None)
        owner[tag.label] = new_id
        handoffs.append(
            HandoffEvent(
                t_rel_s=float(tau),
                tag=tag.label,
                from_zone=old_id,
                to_zone=new_id,
                position=(float(gpos[0]), float(gpos[1])),
                carried_estimate=carried_global,
            )
        )
        log_event(
            self._logger, "gateway_handoff",
            tag=tag.label, tau=tau,
            from_zone=old_id, to_zone=new_id,
            carried=carried_global is not None,
        )

    # -- serial lockstep, supervised (failover) ----------------------------------

    def _run_serial_failover(
        self,
        duration_s: float,
        resume: bool,
        tracer: Tracer | None,
    ) -> MultiZoneReport:
        """The supervised lockstep loop: every worker behind a channel.

        Structure mirrors :meth:`_run_serial` exactly — same worker
        construction order, same τ accounting, same routing order —
        with every surface call journaled through a
        :class:`~repro.zones.failover.ZoneChannel` and every step call
        supervised. With an empty fault plan the two loops are
        bit-identical.
        """
        step = self.config.stream_step_s
        zones = sorted(self.plan.zones, key=lambda z: z.zone_id)
        wall_start = self._perf_clock()

        tau = 0.0
        if tracer is not None and tracer.clock is None:
            tracer.clock = lambda: tau
        scope = use_tracer(tracer) if tracer is not None else _null_scope()

        channels: dict[str, ZoneChannel] = {}
        owner: dict[str, str] = {}
        handoffs: list[HandoffEvent] = []
        interim: list[ServiceResult] = []
        interrupted = False
        down_ticks = 0
        zone_ticks = 0
        with scope:
            gateway_tracer = current_tracer()
            for spec in zones:
                channels[spec.zone_id] = ZoneChannel(
                    spec,
                    self.config,
                    policy=self.failover,
                    site_fault_plan=self.fault_plan,
                    roaming_tags={
                        tag.label: spec.clamp_local(tag.position_at(0.0))
                        for tag in self.plan.roaming
                    },
                    checkpoint_path=self._checkpoint_path(spec.zone_id),
                    resume=resume,
                    perf_clock=self._perf_clock,
                    warmup_max_s=self.warmup_max_s,
                    tracer=tracer,
                    sleep=self._sleep,
                    query_schedule=(
                        self.query_schedules.get(spec.zone_id)
                        if self.query_schedules is not None else None
                    ),
                )
            log_event(
                self._logger, "gateway_serial_start",
                zones=len(zones), duration=duration_s,
                roaming=len(self.plan.roaming), failover=1,
            )
            try:
                for channel in channels.values():
                    channel.start(duration_s)

                # Initial routing, journaled against the first chunk.
                for tag in sorted(self.plan.roaming, key=lambda t: t.label):
                    spec = self._owner_at(tag, 0.0)
                    owner[tag.label] = spec.zone_id
                    gpos = tag.position_at(0.0)
                    channel = channels[spec.zone_id]
                    channel.enqueue(
                        1, "move", tag.label, spec.clamp_local(gpos)
                    )
                    channel.enqueue(1, "activate", tag.label)
                    gateway_tracer.event(
                        "gateway.route",
                        tag=tag.label, zone=spec.zone_id,
                        x=float(gpos[0]), y=float(gpos[1]),
                    )

                k = 0
                exhausted = False
                while not exhausted:
                    k += 1
                    tau += step
                    for tag in sorted(
                        self.plan.roaming, key=lambda t: t.label
                    ):
                        self._route_tag_failover(
                            tag, k, tau, owner, channels, handoffs,
                            gateway_tracer,
                        )
                    for channel in channels.values():
                        served = channel.advance_to(k, tau)
                        if served is None:
                            exhausted = True
                    for channel in channels.values():
                        zone_ticks += 1
                        if channel.down:
                            down_ticks += 1
                            interim.extend(channel.interim_results(tau))
                    if (
                        all(c.down for c in channels.values())
                        and tau >= duration_s
                    ):
                        # No live zone left to exhaust the stream; the
                        # interim clock alone bounds the session.
                        exhausted = True
            except KeyboardInterrupt:
                interrupted = True
                for channel in channels.values():
                    channel.interrupt()
                log_event(
                    self._logger, "gateway_interrupted",
                    tau=tau, zones=len(zones),
                )
            reports = {
                zid: channels[zid].finish() for zid in sorted(channels)
            }
        wall_s = self._perf_clock() - wall_start
        availability = (
            1.0 if zone_ticks == 0
            else 1.0 - (down_ticks / zone_ticks)
        )
        return self._assemble(
            reports, tuple(handoffs), wall_s,
            interrupted=interrupted,
            interim=tuple(interim),
            channels=channels,
            availability=availability,
        )

    def _route_tag_failover(
        self,
        tag: RoamingTag,
        k: int,
        tau: float,
        owner: dict[str, str],
        channels: dict[str, ZoneChannel],
        handoffs: list[HandoffEvent],
        gateway_tracer,
    ) -> None:
        """Ownership at τ under failover: shedding-aware, never silent.

        Proximity still nominates the owner (:meth:`ZonePlan.rank_zones`
        — its first entry is exactly :meth:`ZonePlan.detect_zone`), but
        a handoff only lands on a zone that accepts it: down and
        saturated zones are skipped in rank order (cross-zone load
        shedding), the current owner is always an acceptable fallback,
        and a tag stranded in a permanently-down zone is explicitly
        rerouted to the nearest live neighbour with its last-known
        estimate carried from the gateway's cache.
        """
        gpos = tag.position_at(tau)
        old_id = owner[tag.label]
        old_ch = channels[old_id]
        ranked = self.plan.rank_zones(gpos)
        preferred = ranked[0]
        rerouted_from: str | None = None
        if preferred.zone_id == old_id and not old_ch.down:
            # Staying put. Saturation sheds *handoffs*, never evicts.
            target = preferred
        else:
            target: ZoneSpec | None = None
            for spec in ranked:
                if spec.zone_id == old_id and not old_ch.down:
                    target = spec  # keeping the current owner is free
                    break
                if channels[spec.zone_id].accepts_handoffs(tau):
                    target = spec
                    break
            if target is None:
                # Every zone is down or shedding: ownership cannot move.
                return
            if target.zone_id != preferred.zone_id:
                rerouted_from = preferred.zone_id

        new_id = target.zone_id
        if new_id == old_id:
            old_ch.enqueue(k, "move", tag.label, target.clamp_local(gpos))
            return
        new_ch = channels[new_id]
        with gateway_tracer.span(
            "gateway.handoff",
            tag=tag.label, t_rel_s=float(tau),
            from_zone=old_id, to_zone=new_id,
        ) as span:
            old_ch.enqueue(k, "deactivate", tag.label)
            carried_global = old_ch.last_estimate_site(tag.label)
            carried_source = (
                "cache" if (old_ch.down and carried_global is not None)
                else "live"
            )
            new_ch.enqueue(k, "move", tag.label, target.clamp_local(gpos))
            if carried_global is not None:
                new_ch.enqueue(
                    k, "transfer", tag.label, target.to_local(carried_global)
                )
            new_ch.enqueue(k, "activate", tag.label)
            span.set("carried", carried_global is not None)
            if rerouted_from is not None:
                span.set("rerouted_from", rerouted_from)
        old_ch.drop_interim_tag(tag.label)
        owner[tag.label] = new_id
        handoffs.append(
            HandoffEvent(
                t_rel_s=float(tau),
                tag=tag.label,
                from_zone=old_id,
                to_zone=new_id,
                position=(float(gpos[0]), float(gpos[1])),
                carried_estimate=carried_global,
                rerouted_from=rerouted_from,
                carried_source=carried_source,
            )
        )
        log_event(
            self._logger, "gateway_handoff",
            tag=tag.label, tau=tau,
            from_zone=old_id, to_zone=new_id,
            carried=carried_global is not None,
            rerouted=rerouted_from is not None,
        )

    @staticmethod
    def _worker_scope(worker: ZoneWorker, tracer: Tracer | None, fn, *args):
        """Call into a worker with the tracer clock on *its* sim timeline.

        Each zone has its own simulation clock; spans emitted inside a
        worker call (``zone.tick``, ``service.batch``, ...) must be
        stamped with that zone's time, while gateway spans between calls
        stay on the τ-clock. Swapping the shared tracer's clock around
        each call keeps both deterministic.
        """
        if tracer is None:
            return fn(*args)
        saved = tracer.clock
        tracer.clock = lambda: worker.simulator.now
        try:
            return fn(*args)
        finally:
            tracer.clock = saved

    # -- aggregation ---------------------------------------------------------------

    def _assemble(
        self,
        reports: Mapping[str, SessionReport],
        handoffs: tuple[HandoffEvent, ...],
        wall_s: float,
        *,
        interrupted: bool,
        interim: tuple[ServiceResult, ...] = (),
        channels: Mapping[str, "ZoneChannel"] | None = None,
        availability: float | None = None,
    ) -> MultiZoneReport:
        totals = {
            "zones": float(len(reports)),
            "handoffs": float(len(handoffs)),
            "wall_time_s": wall_s,
        }
        for key in (
            "requests", "results", "failed", "degraded",
            "records_streamed", "checkpoint_snapshots",
        ):
            total = sum(
                float(r.summary.get(key, 0.0)) for r in reports.values()
            )
            totals[key] = total
        totals["localizations_per_s"] = (
            totals["results"] / wall_s if wall_s > 0 else float("inf")
        )
        if interrupted:
            totals["interrupted"] = 1.0
        metrics: MetricsRegistry | None = None
        if channels is not None:
            metrics = self._gateway_metrics(
                channels, handoffs, interim, totals,
                availability if availability is not None else 1.0,
            )
        log_event(
            self._logger, "gateway_end",
            zones=len(reports), results=totals["results"],
            handoffs=len(handoffs), wall_s=wall_s,
            interrupted=interrupted,
        )
        return MultiZoneReport(
            zones={zid: reports[zid] for zid in sorted(reports)},
            handoffs=handoffs,
            summary=totals,
            interim=interim,
            metrics=metrics,
        )

    def _gateway_metrics(
        self,
        channels: Mapping[str, "ZoneChannel"],
        handoffs: tuple[HandoffEvent, ...],
        interim: tuple[ServiceResult, ...],
        totals: dict[str, float],
        availability: float,
    ) -> MetricsRegistry:
        """Fold per-channel supervision counters into gateway totals.

        Populates both the summary dict (``zone_crashes`` …) and a
        gateway-namespaced :class:`MetricsRegistry` whose samples render
        alongside the per-zone blocks in
        :meth:`MultiZoneReport.render_prometheus`.
        """
        agg = {
            "crashes": 0, "respawns": 0, "timeouts": 0, "retries": 0,
            "link_failures": 0, "slow_ticks": 0, "down": 0,
            "admission_shed": 0,
        }
        for zid in sorted(channels):
            counters = channels[zid].counters()
            for key in agg:
                agg[key] += counters[key]
        rerouted = sum(
            1 for h in handoffs if h.rerouted_from is not None
        )
        totals["zone_crashes"] = float(agg["crashes"])
        totals["zone_respawns"] = float(agg["respawns"])
        totals["zone_timeouts"] = float(agg["timeouts"])
        totals["zone_retries"] = float(agg["retries"])
        totals["zone_link_failures"] = float(agg["link_failures"])
        totals["zone_slow_ticks"] = float(agg["slow_ticks"])
        totals["zones_down"] = float(agg["down"])
        totals["requests_shed"] = float(agg["admission_shed"])
        totals["handoffs_rerouted"] = float(rerouted)
        totals["interim_results"] = float(len(interim))
        totals["availability"] = float(availability)

        metrics = MetricsRegistry(namespace="repro_gateway")
        for name, help_text, value in (
            ("zone_crashes_total",
             "Zone worker crashes observed by the gateway",
             agg["crashes"]),
            ("zone_respawns_total",
             "Zone workers respawned from their zone-identity checkpoint",
             agg["respawns"]),
            ("zone_timeouts_total",
             "Gateway-to-zone calls that exceeded the request deadline",
             agg["timeouts"]),
            ("zone_retries_total",
             "Gateway-to-zone call retries (bounded exponential backoff)",
             agg["retries"]),
            ("zone_link_failures_total",
             "Gateway-to-zone calls lost to link faults",
             agg["link_failures"]),
            ("requests_shed_total",
             "Localization queries shed by zone admission control",
             agg["admission_shed"]),
            ("handoffs_rerouted_total",
             "Roaming-tag handoffs rerouted away from their nearest zone",
             rerouted),
            ("interim_results_total",
             "Degraded interim answers served while a zone was down",
             len(interim)),
        ):
            counter = metrics.counter(name, help_text)
            if value:
                counter.inc(float(value))
        metrics.gauge(
            "zones_down",
            "Zones still marked down when the session ended",
        ).set(float(agg["down"]))
        metrics.gauge(
            "availability",
            "Fraction of zone-ticks served by a live zone worker",
        ).set(float(availability))
        return metrics


def _null_scope():
    from contextlib import nullcontext

    return nullcontext()
