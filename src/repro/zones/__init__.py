"""``repro.zones`` — shared-nothing multi-zone scale-out behind one gateway.

A large deployment is partitioned into *zones*: each zone is the paper's
testbed (reference lattice, corner readers, tracking tags) in its own
local coordinate frame, with its own seeded world, estimator,
interpolation cache, circuit breakers, fault-plan slice and checkpoint
file. Zones share nothing at runtime; a single :class:`ZoneGateway`
routes tags to zones by reader-set proximity, aggregates per-zone
metrics and witnesses, and executes the deterministic tag-handoff
protocol when a roaming tag crosses a zone boundary.

Safety rail: a single-zone :class:`ZonePlan` run through the gateway is
bitwise identical (determinism witness) to today's
:class:`~repro.service.session.LocalizationService`.

See ``docs/ZONES.md`` for the architecture, the handoff protocol and the
multi-zone determinism witness.
"""

from .failover import (
    INTERIM_ESTIMATOR,
    ZONE_DOWN_REASON,
    AdmissionPolicy,
    TokenBucket,
    ZoneChannel,
    ZoneFailoverPolicy,
)
from .gateway import HandoffEvent, MultiZoneReport, ZoneGateway
from .spec import (
    ZONE_PITCH_M,
    RoamingTag,
    ZonePlan,
    ZoneSpec,
    monolithic_site_plan,
    scaled_site_plan,
    single_zone_plan,
    slice_fault_plan,
    zone_seed,
)
from .worker import ZoneTask, ZoneWorker, run_zone

__all__ = [
    # spec
    "ZONE_PITCH_M", "ZoneSpec", "RoamingTag", "ZonePlan", "zone_seed",
    "slice_fault_plan", "single_zone_plan", "scaled_site_plan",
    "monolithic_site_plan",
    # worker
    "ZoneWorker", "ZoneTask", "run_zone",
    # gateway
    "HandoffEvent", "MultiZoneReport", "ZoneGateway",
    # failover
    "ZONE_DOWN_REASON", "INTERIM_ESTIMATOR", "AdmissionPolicy",
    "TokenBucket", "ZoneChannel", "ZoneFailoverPolicy",
]
