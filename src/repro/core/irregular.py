"""Irregular (per-cell) virtual granularity (paper §6 future work).

"Then we can construct a virtual grid for each real grid cell with
different granularity to potentially achieve a better accuracy." — e.g.
finer subdivision near obstacles, coarse elsewhere to save computation.

With non-uniform granularity the virtual tags no longer form a regular
lattice, so this variant works on a *point set*: each physical cell
contributes its own local lattice of virtual tags, deduplicated along
shared edges. Interpolation evaluates the bilinear patch of the owning
cell at each point; elimination thresholds the per-point deviations; the
w2 cluster factor generalizes from lattice connected-components to
connected components of a radius graph over the surviving points.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
from scipy import sparse
from scipy.sparse.csgraph import connected_components as sparse_components
from scipy.spatial import cKDTree

from ..baselines.landmarc import LandmarcEstimator
from ..exceptions import ConfigurationError, EstimationError, ReadingError
from ..geometry.grid import ReferenceGrid
from ..types import EstimateResult, TrackingReading
from .threshold import minimal_feasible_threshold

__all__ = ["IrregularVirtualGrid", "IrregularVIREEstimator", "bilinear_at_points"]


def bilinear_at_points(
    lattice: np.ndarray, grid: ReferenceGrid, points: np.ndarray
) -> np.ndarray:
    """Evaluate the per-cell bilinear RSSI surface at arbitrary points.

    Points outside the grid are extrapolated from the nearest edge cell
    (consistent with :class:`~repro.core.interpolation.BilinearInterpolator`).
    """
    arr = np.asarray(lattice, dtype=np.float64)
    if arr.shape != (grid.rows, grid.cols):
        raise ConfigurationError(
            f"lattice shape {arr.shape} mismatches grid {grid.rows}x{grid.cols}"
        )
    pts = np.asarray(points, dtype=np.float64)
    ox, oy = grid.origin
    fj = (pts[:, 0] - ox) / grid.spacing_x
    fi = (pts[:, 1] - oy) / grid.spacing_y
    a = np.clip(np.floor(fi).astype(np.intp), 0, grid.rows - 2)
    b = np.clip(np.floor(fj).astype(np.intp), 0, grid.cols - 2)
    fy = fi - a
    fx = fj - b
    sw = arr[a, b]
    se = arr[a, b + 1]
    nw = arr[a + 1, b]
    ne = arr[a + 1, b + 1]
    return (
        (1 - fy) * (1 - fx) * sw
        + (1 - fy) * fx * se
        + fy * (1 - fx) * nw
        + fy * fx * ne
    )


class IrregularVirtualGrid:
    """Virtual tags with per-physical-cell subdivision counts.

    Parameters
    ----------
    grid:
        The real reference grid.
    default_subdivisions:
        ``n`` for cells not listed in ``cell_subdivisions``.
    cell_subdivisions:
        Mapping ``(cell_row, cell_col) -> n`` overriding specific cells;
        cell indices run 0..rows-2 / 0..cols-2.
    """

    def __init__(
        self,
        grid: ReferenceGrid,
        default_subdivisions: int = 4,
        cell_subdivisions: Mapping[tuple[int, int], int] | None = None,
    ):
        if default_subdivisions < 1:
            raise ConfigurationError(
                f"default_subdivisions must be >= 1, got {default_subdivisions}"
            )
        self.grid = grid
        self.default_subdivisions = int(default_subdivisions)
        overrides = dict(cell_subdivisions or {})
        for (cr, cc), n in overrides.items():
            if not (0 <= cr < grid.rows - 1 and 0 <= cc < grid.cols - 1):
                raise ConfigurationError(
                    f"cell index ({cr}, {cc}) outside "
                    f"{grid.rows-1}x{grid.cols-1} cells"
                )
            if n < 1:
                raise ConfigurationError(f"subdivision for cell ({cr},{cc}) must be >= 1")
        self.cell_subdivisions = overrides
        self._positions, self._link_radius = self._build_points()

    def subdivisions_of(self, cell_row: int, cell_col: int) -> int:
        return self.cell_subdivisions.get(
            (cell_row, cell_col), self.default_subdivisions
        )

    def _build_points(self) -> tuple[np.ndarray, float]:
        grid = self.grid
        ox, oy = grid.origin
        chunks = []
        max_pitch = 0.0
        for cr in range(grid.rows - 1):
            for cc in range(grid.cols - 1):
                n = self.subdivisions_of(cr, cc)
                xs = ox + (cc + np.arange(n + 1) / n) * grid.spacing_x
                ys = oy + (cr + np.arange(n + 1) / n) * grid.spacing_y
                xx, yy = np.meshgrid(xs, ys)
                chunks.append(np.column_stack([xx.ravel(), yy.ravel()]))
                max_pitch = max(
                    max_pitch, grid.spacing_x / n, grid.spacing_y / n
                )
        pts = np.vstack(chunks)
        # Deduplicate points shared along cell borders (round to 1e-9 m).
        keys = np.round(pts / 1e-9).astype(np.int64)
        _, unique_idx = np.unique(keys, axis=0, return_index=True)
        pts = pts[np.sort(unique_idx)]
        # Neighbour linking distance: slightly beyond the coarsest pitch so
        # clusters spanning cells of different granularity stay connected.
        return pts, 1.1 * max_pitch

    @property
    def positions(self) -> np.ndarray:
        """All virtual tag coordinates, shape ``(P, 2)``."""
        return self._positions

    @property
    def total_tags(self) -> int:
        return int(self._positions.shape[0])

    @property
    def link_radius_m(self) -> float:
        """Radius used to connect surviving points into clusters."""
        return self._link_radius

    def interpolate(self, lattice: np.ndarray) -> np.ndarray:
        """Bilinear RSSI of every virtual point, shape ``(P,)``."""
        return bilinear_at_points(lattice, self.grid, self._positions)


class IrregularVIREEstimator:
    """VIRE over an irregular virtual point set.

    Same pipeline as :class:`~repro.core.estimator.VIREEstimator` —
    interpolate, adaptive threshold, eliminate, weight — with lattice
    operations replaced by point-set equivalents.
    """

    name = "VIRE-irregular"

    def __init__(
        self,
        virtual_grid: IrregularVirtualGrid,
        *,
        min_cells: int = 1,
        w1_mode: str = "inverse",
        use_w2: bool = True,
    ):
        if min_cells < 1:
            raise ConfigurationError(f"min_cells must be >= 1, got {min_cells}")
        if w1_mode not in ("inverse", "uniform"):
            raise ConfigurationError(
                f"w1_mode must be 'inverse' or 'uniform', got {w1_mode!r}"
            )
        self.virtual_grid = virtual_grid
        self.min_cells = int(min_cells)
        self.w1_mode = w1_mode
        self.use_w2 = bool(use_w2)
        self._tree = cKDTree(virtual_grid.positions)
        self._fallback = LandmarcEstimator()

    def _check_layout(self, reading: TrackingReading) -> None:
        expected = self.virtual_grid.grid.tag_positions()
        if reading.reference_positions.shape != expected.shape or not np.allclose(
            reading.reference_positions, expected, atol=1e-9
        ):
            raise ReadingError(
                "reading's reference positions do not match the estimator grid"
            )

    def estimate(self, reading: TrackingReading) -> EstimateResult:
        self._check_layout(reading)
        grid = self.virtual_grid.grid
        k = reading.n_readers
        pts = self.virtual_grid.positions
        dev = np.empty((k, pts.shape[0]))
        for i in range(k):
            lattice = grid.lattice_from_flat(reading.reference_rssi[i])
            virtual = self.virtual_grid.interpolate(lattice)
            dev[i] = np.abs(virtual - reading.tracking_rssi[i])

        threshold = minimal_feasible_threshold(
            dev[:, :, np.newaxis], min_cells=self.min_cells
        )
        selected = (dev <= threshold).all(axis=0)
        idx = np.flatnonzero(selected)
        if idx.size == 0:
            raise EstimationError("elimination left no candidate points")

        if self.w1_mode == "inverse":
            w1 = 1.0 / (dev[:, idx].mean(axis=0) + 1e-6)
        else:
            w1 = np.ones(idx.size)

        if self.use_w2 and idx.size > 1:
            sub = pts[idx]
            pairs = cKDTree(sub).query_pairs(
                self.virtual_grid.link_radius_m, output_type="ndarray"
            )
            if pairs.size:
                adj = sparse.coo_matrix(
                    (np.ones(pairs.shape[0]), (pairs[:, 0], pairs[:, 1])),
                    shape=(idx.size, idx.size),
                )
                n_comp, labels = sparse_components(adj, directed=False)
            else:
                n_comp, labels = idx.size, np.arange(idx.size)
            sizes = np.bincount(labels, minlength=n_comp)
            w2 = sizes[labels].astype(np.float64)
        else:
            w2 = np.ones(idx.size)

        w = w1 * w2
        w = w / w.sum()
        xy = w @ pts[idx]
        return EstimateResult(
            position=(float(xy[0]), float(xy[1])),
            estimator=self.name,
            diagnostics={
                "threshold_db": float(threshold),
                "n_selected": int(idx.size),
                "total_virtual_tags": self.virtual_grid.total_tags,
            },
        )

    def __repr__(self) -> str:
        return (
            f"IrregularVIREEstimator(points={self.virtual_grid.total_tags}, "
            f"min_cells={self.min_cells})"
        )
