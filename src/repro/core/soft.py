"""Soft VIRE: likelihood weighting instead of hard elimination.

A natural evolution of VIRE's threshold-and-intersect step (and a bridge
to modern probabilistic fingerprinting): instead of marking cells in/out
per reader and intersecting, weight every virtual cell by a Gaussian
likelihood of the observed deviations,

``w_i ∝ exp( - sum_k dev_k,i² / (2 sigma²) )``

The product over readers plays the role of the intersection (a cell must
match *every* reader to keep weight), and ``sigma`` plays the role of the
threshold — but the transition is smooth, so there is no empty-
intersection failure mode and no threshold-selection step at all.

``sigma`` should match the channel's per-reader effective RSSI
uncertainty (reading noise + interpolation error), 1.5-3 dB in the Env
presets. The ablation bench compares soft vs classic VIRE.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ReadingError
from ..geometry.grid import ReferenceGrid
from ..types import EstimateResult, TrackingReading
from ..utils.validation import ensure_positive
from .interpolation import make_interpolator
from .proximity import rssi_deviations
from .virtual_grid import VirtualGrid

__all__ = ["SoftVIREEstimator"]


class SoftVIREEstimator:
    """Gaussian-likelihood weighting over the virtual lattice.

    Parameters
    ----------
    grid:
        The real reference grid.
    sigma_db:
        Per-reader RSSI uncertainty scale (the soft "threshold").
    subdivisions / target_total_tags:
        Virtual lattice sizing, as in :class:`~repro.core.config.VIREConfig`.
    interpolation:
        Interpolation scheme for the virtual RSSI values.
    """

    name = "SoftVIRE"

    def __init__(
        self,
        grid: ReferenceGrid,
        *,
        sigma_db: float = 2.0,
        subdivisions: int = 10,
        target_total_tags: int | None = 900,
        interpolation: str = "linear",
    ):
        self.grid = grid
        self.sigma_db = ensure_positive(sigma_db, "sigma_db")
        if target_total_tags is not None:
            self.virtual_grid = VirtualGrid.for_target_count(
                grid, target_total_tags
            )
        else:
            self.virtual_grid = VirtualGrid(grid, subdivisions)
        self._interpolator = make_interpolator(interpolation)
        self._positions = self.virtual_grid.positions()

    def _check_layout(self, reading: TrackingReading) -> None:
        expected = self.grid.tag_positions()
        if reading.reference_positions.shape != expected.shape or not np.allclose(
            reading.reference_positions, expected, atol=1e-9
        ):
            raise ReadingError(
                "reading's reference positions do not match this estimator's "
                "grid layout"
            )

    def estimate(self, reading: TrackingReading) -> EstimateResult:
        self._check_layout(reading)
        k = reading.n_readers
        virtual = np.empty((k, *self.virtual_grid.shape))
        for i in range(k):
            lattice = self.grid.lattice_from_flat(reading.reference_rssi[i])
            virtual[i] = self._interpolator.interpolate(lattice, self.virtual_grid)
        dev = rssi_deviations(virtual, reading.tracking_rssi)

        # Log-likelihood per cell; subtract the max before exponentiating.
        log_w = -np.sum(dev**2, axis=0) / (2.0 * self.sigma_db**2)
        log_w -= log_w.max()
        w = np.exp(log_w)
        w /= w.sum()
        xy = w.ravel() @ self._positions

        effective_support = float(1.0 / np.sum(w**2))
        return EstimateResult(
            position=(float(xy[0]), float(xy[1])),
            estimator=self.name,
            diagnostics={
                "sigma_db": self.sigma_db,
                "effective_support_cells": effective_support,
                "total_virtual_tags": self.virtual_grid.total_tags,
            },
        )

    def __repr__(self) -> str:
        return (
            f"SoftVIREEstimator(sigma_db={self.sigma_db}, "
            f"total_tags={self.virtual_grid.total_tags})"
        )
