"""Adaptive threshold selection (paper §4.3).

The paper's informal three-step procedure — start from a generous
threshold, then shrink the largest-area reader's threshold step by step
while "that particular area is reserved", repeating until "at the last,
the same threshold will be selected" — converges to a simple closed
form when every reader shares the final threshold:

For candidate cell ``c`` to survive the intersection at threshold ``t``,
it needs ``deviation[k, c] <= t`` for *every* reader ``k``, i.e.
``t >= max_k deviation[k, c]``. The smallest ``t`` keeping at least
``min_cells`` cells alive is therefore the ``min_cells``-th smallest
value of the per-cell maximum deviation.

:func:`minimal_feasible_threshold` computes that closed form in one
vectorized pass. :class:`AdaptiveThresholdSelector` additionally provides
the paper-faithful *iterative* procedure (largest-area reader first,
fixed step) — the unit tests verify both land on the same answer within
one step size, documenting that the closed form is a legitimate
implementation of §4.3 and not a different algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["minimal_feasible_threshold", "AdaptiveThresholdSelector"]


def _check_deviations(deviations: np.ndarray) -> np.ndarray:
    dev = np.asarray(deviations, dtype=np.float64)
    if dev.ndim != 3 or dev.shape[0] < 1:
        raise ConfigurationError(
            f"deviations must have shape (K, v_rows, v_cols), got {dev.shape}"
        )
    # NaN marks an unknown deviation (masked/degraded input) and is
    # tolerated — such cells simply can never be selected. Infinities and
    # negative values are corrupt data either way.
    finite = np.isfinite(dev)
    if np.any(np.isinf(dev)) or np.any(dev[finite] < 0):
        raise ConfigurationError("deviations must be non-negative (NaN = unknown)")
    return dev


def minimal_feasible_threshold(
    deviations: np.ndarray, *, min_cells: int = 1
) -> float:
    """Smallest shared threshold keeping >= ``min_cells`` cells selected.

    Parameters
    ----------
    deviations:
        ``(K, v_rows, v_cols)`` tensor of |virtual - tracking| RSSI.
    min_cells:
        Required surviving-intersection size.
    """
    dev = _check_deviations(deviations)
    if min_cells < 1:
        raise ConfigurationError(f"min_cells must be >= 1, got {min_cells}")
    worst_per_cell = dev.max(axis=0).ravel()
    if min_cells > worst_per_cell.size:
        raise ConfigurationError(
            f"min_cells={min_cells} exceeds the {worst_per_cell.size} lattice cells"
        )
    # Cells with any unknown (NaN) deviation cannot be guaranteed to
    # survive at any threshold: exclude them from the feasible set.
    nan_cells = np.isnan(worst_per_cell)
    if nan_cells.any():
        worst_per_cell = np.where(nan_cells, np.inf, worst_per_cell)
    # k-th smallest of the per-cell maxima.
    idx = min_cells - 1
    result = float(np.partition(worst_per_cell, idx)[idx])
    if not np.isfinite(result):
        raise ConfigurationError(
            f"fewer than min_cells={min_cells} cells have fully known "
            "deviations; no feasible shared threshold exists"
        )
    return result


@dataclass(frozen=True)
class AdaptiveThresholdSelector:
    """Paper-faithful iterative threshold reduction.

    Parameters
    ----------
    step_db:
        Reduction step size.
    min_cells:
        Stop shrinking before the intersection would fall below this.
    max_iterations:
        Safety bound on the reduction loop.
    """

    step_db: float = 0.05
    min_cells: int = 1
    max_iterations: int = 10_000

    def __post_init__(self) -> None:
        if self.step_db <= 0:
            raise ConfigurationError(f"step_db must be positive, got {self.step_db}")
        if self.min_cells < 1:
            raise ConfigurationError(f"min_cells must be >= 1, got {self.min_cells}")
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")

    def closed_form(self, deviations: np.ndarray) -> float:
        """The vectorized equivalent (see module docstring)."""
        return minimal_feasible_threshold(deviations, min_cells=self.min_cells)

    def iterative(self, deviations: np.ndarray) -> float:
        """Step-by-step reduction as described in §4.3.

        The paper initializes from "the largest area in the proximity
        map" and reduces step by step while the candidate area survives,
        noting that "at the last, the same threshold will be selected"
        for every reader. We therefore descend one *shared* threshold:
        start at the value where every reader's map covers the whole
        lattice, and keep subtracting ``step_db`` while the K-map
        intersection retains at least ``min_cells`` cells. (Descending
        per-reader thresholds largest-area-first converges to the same
        shared value, but a naive greedy per-reader descent can lock onto
        a lexicographically-minimal cell instead of the min-max cell —
        the shared descent is the unambiguous reading.)

        Agreement with :meth:`closed_form` within one ``step_db`` is a
        unit-tested invariant.

        The descent is *clamped* by the closed-form lower bound: a naive
        step-by-step walk from the widest threshold needs
        ``(max - minimal) / step_db`` iterations, which on wide deviation
        ranges (strong interference, masked inputs with a few dominant
        finite cells) used to exhaust ``max_iterations`` and return a
        threshold far above the feasible minimum. We first jump straight
        to the last step above the closed-form bound, then settle with at
        most a couple of ordinary descent steps — O(1) iterations
        regardless of the range, same grid of candidate thresholds
        (``start - m * step_db``) as the naive walk. NaN deviations
        (masked inputs) are tolerated: the start point is the largest
        *finite* deviation, and NaN cells never join the intersection.
        """
        dev = _check_deviations(deviations)
        # Raises ConfigurationError when no feasible threshold exists
        # (fewer than min_cells fully-known cells) — same contract as the
        # closed form.
        lower = minimal_feasible_threshold(dev, min_cells=self.min_cells)
        finite = np.isfinite(dev)
        threshold = float(dev[finite].max())

        def intersection_size(t: float) -> int:
            # NaN <= t is False, so unknown cells never count.
            with np.errstate(invalid="ignore"):
                return int((dev <= t).all(axis=0).sum())

        if intersection_size(threshold) < self.min_cells:
            raise ConfigurationError(
                f"even the widest threshold keeps fewer than "
                f"{self.min_cells} cells"
            )
        # Jump to the last grid point at or above the closed-form bound.
        if threshold > lower:
            steps = int((threshold - lower) // self.step_db)
            if steps > 0:
                jumped = threshold - steps * self.step_db
                # Guard float rounding: never jump below feasibility.
                while (
                    jumped < lower
                    or jumped < 0
                    or intersection_size(jumped) < self.min_cells
                ):
                    jumped += self.step_db
                threshold = jumped
        # Settle with the ordinary descent (at most a couple of steps).
        for _ in range(self.max_iterations):
            trial = threshold - self.step_db
            if trial < 0 or intersection_size(trial) < self.min_cells:
                break
            threshold = trial
        return threshold
