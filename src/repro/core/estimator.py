"""The VIRE estimator: interpolate, eliminate, weight (paper §4).

:class:`VIREEstimator` is constructed with the real reference grid (it
must know the lattice structure behind the flat reference-tag list) and a
:class:`~repro.core.config.VIREConfig`; it then consumes the same
:class:`~repro.types.TrackingReading` snapshots as LANDMARC, so the two
are drop-in comparable in every experiment.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..baselines.landmarc import LandmarcEstimator
from ..exceptions import EstimationError, ReadingError
from ..geometry.grid import ReferenceGrid
from ..obs import current_tracer
from ..types import EstimateResult, TrackingReading
from .config import VIREConfig
from .elimination import eliminate
from .interpolation import fill_masked_lattice, make_interpolator
from .proximity import build_proximity_maps, rssi_deviations
from .quorum import QuorumDecision, QuorumPolicy
from .threshold import minimal_feasible_threshold
from .virtual_grid import VirtualGrid
from .weighting import combine_weights, compute_w1, compute_w2

__all__ = ["VIREEstimator", "LatticeCache"]


@runtime_checkable
class LatticeCache(Protocol):
    """Protocol of the interpolation cache an estimator may be given.

    Implemented by :class:`repro.service.cache.InterpolationCache`; kept
    as a protocol here so ``core`` never imports ``service`` (the service
    layer sits *above* the algorithm layer).
    """

    def get_or_compute(
        self,
        lattice: np.ndarray,
        virtual_grid: VirtualGrid,
        interpolator,
    ) -> np.ndarray:
        """Return the interpolated virtual surface for ``lattice``."""
        ...


class VIREEstimator:
    """Virtual Reference Elimination.

    Parameters
    ----------
    grid:
        The real reference grid; ``reading.reference_positions`` must
        match ``grid.tag_positions()`` row-for-row (checked per estimate).
    config:
        Algorithm parameters; defaults to the paper's operating point
        with n=10 subdivisions.
    interpolation_cache:
        Optional :class:`LatticeCache` consulted per reader lattice in
        :meth:`interpolate_reading`. ``None`` (the default) recomputes
        every interpolation — bit-identical behaviour to the cacheless
        estimator. The streaming service injects
        :class:`repro.service.cache.InterpolationCache` here.
    quorum:
        :class:`~repro.core.quorum.QuorumPolicy` applied to *masked*
        readings (degraded deployments): readers with too little
        reference coverage are excluded, and the estimate is refused
        (:class:`~repro.exceptions.EstimationError`) when too few
        readers survive. Defaults to ``QuorumPolicy()``. Strict
        (unmasked) readings never touch this path, so healthy behaviour
        is bit-identical to earlier versions.

    Notes
    -----
    The per-estimate cost is O(K · N²) vectorized numpy work for N² total
    virtual tags (interpolation, deviation tensor, threshold, masks) plus
    one connected-component labelling — the paper's claimed O(N²)
    interpolation complexity with an honest accounting of the
    elimination.
    """

    name = "VIRE"

    def __init__(
        self,
        grid: ReferenceGrid,
        config: VIREConfig | None = None,
        *,
        interpolation_cache: LatticeCache | None = None,
        quorum: QuorumPolicy | None = None,
    ):
        self.grid = grid
        self.config = config or VIREConfig()
        self.interpolation_cache = interpolation_cache
        self.quorum = quorum or QuorumPolicy()
        if self.config.target_total_tags is not None:
            self.virtual_grid = VirtualGrid.for_target_count(
                grid,
                self.config.target_total_tags,
                extension_cells=self.config.boundary_extension_cells,
            )
        else:
            self.virtual_grid = VirtualGrid(
                grid,
                self.config.subdivisions,
                extension_cells=self.config.boundary_extension_cells,
            )
        self._interpolator = make_interpolator(self.config.interpolation)
        self._positions = self.virtual_grid.positions()  # (V, 2)
        self._fallback_landmarc = LandmarcEstimator()

    # -- pipeline pieces (exposed for tests/diagnostics) --------------------

    def _check_layout(self, reading: TrackingReading) -> None:
        expected = self.grid.tag_positions()
        got = reading.reference_positions
        if got.shape != expected.shape or not np.allclose(
            got, expected, atol=1e-9
        ):
            raise ReadingError(
                "reading's reference positions do not match this estimator's "
                f"{self.grid.rows}x{self.grid.cols} grid layout"
            )

    def interpolate_reading(self, reading: TrackingReading) -> np.ndarray:
        """Per-reader virtual RSSI tensor ``(K, v_rows, v_cols)``.

        Masked readings get their NaN lattice holes imputed
        (:func:`~repro.core.interpolation.fill_masked_lattice`) before
        interpolation, so the interpolators — and the interpolation
        cache, which keys on lattice bytes — only ever see finite
        lattices. Fully finite lattices pass through the fill untouched.
        """
        self._check_layout(reading)
        k = reading.n_readers
        cache = self.interpolation_cache
        out = np.empty((k, *self.virtual_grid.shape))
        for i in range(k):
            lattice = self.grid.lattice_from_flat(reading.reference_rssi[i])
            if reading.masked:
                lattice = fill_masked_lattice(lattice)
            if cache is not None:
                out[i] = cache.get_or_compute(
                    lattice, self.virtual_grid, self._interpolator
                )
            else:
                out[i] = self._interpolator.interpolate(lattice, self.virtual_grid)
        return out

    def select_threshold(self, deviations: np.ndarray) -> float:
        """Threshold per the configured mode.

        Adaptive mode uses the minimal feasible threshold (the closed
        form of §4.3's reduction algorithm) plus the configured margin;
        see :class:`~repro.core.config.VIREConfig`.
        """
        if self.config.threshold_mode == "adaptive":
            return (
                minimal_feasible_threshold(
                    deviations, min_cells=self.config.min_cells
                )
                + self.config.threshold_margin_db
            )
        return self.config.fixed_threshold_db

    # -- the estimate --------------------------------------------------------

    def estimate(self, reading: TrackingReading) -> EstimateResult:
        tracer = current_tracer()
        with tracer.span(
            "vire.estimate",
            tag=reading.tag_id,
            masked=bool(reading.masked),
        ) as root:
            decision: QuorumDecision | None = None
            min_votes = self.config.min_votes
            if reading.masked:
                # Degraded input: enforce the quorum, trim to survivors.
                # Raises EstimationError when too few readers remain — the
                # service layer catches that and falls down its ladder.
                with tracer.span("vire.quorum") as qsp:
                    decision = self.quorum.apply(reading)
                    reading = decision.reading
                    qsp.set("readers", reading.n_readers)
                # A surviving subset may have fewer readers than an explicit
                # vote count; intersecting over all survivors is the honest
                # maximum evidence available. (None already means "all
                # readers" and adapts to the subset by itself.)
                if min_votes is not None:
                    min_votes = min(min_votes, reading.n_readers)
            quorum_diag = decision.diagnostics() if decision is not None else {}

            with tracer.span("vire.interpolate", readers=reading.n_readers):
                virtual = self.interpolate_reading(reading)
            with tracer.span(
                "vire.threshold", mode=self.config.threshold_mode
            ) as tsp:
                deviations = rssi_deviations(virtual, reading.tracking_rssi)
                threshold = self.select_threshold(deviations)
                tsp.set("threshold_db", float(threshold))
            with tracer.span("vire.eliminate") as esp:
                maps = build_proximity_maps(deviations, threshold)
                selected = eliminate(maps, min_votes=min_votes)

                fallback_used = None
                if not selected.any():
                    esp.set("empty_intersection", True)
                    if self.config.empty_fallback == "error":
                        raise EstimationError(
                            f"elimination left no candidate regions at "
                            f"threshold {threshold:.3f} dB"
                        )
                    if self.config.empty_fallback == "landmarc":
                        esp.set("fallback", "landmarc")
                        base = self._fallback_landmarc.estimate(reading)
                        root.update(fallback="landmarc", n_selected=0)
                        return EstimateResult(
                            position=base.position,
                            estimator=self.name,
                            diagnostics={
                                "fallback": "landmarc",
                                "threshold_db": threshold,
                                "n_selected": 0,
                                **quorum_diag,
                            },
                        )
                    # "relax": locally raise the threshold to the minimal
                    # feasible value for this reading (always non-empty by
                    # construction).
                    fallback_used = "relax"
                    esp.set("fallback", "relax")
                    threshold = minimal_feasible_threshold(
                        deviations, min_cells=self.config.min_cells
                    )
                    maps = build_proximity_maps(deviations, threshold)
                    selected = eliminate(maps, min_votes=min_votes)
                esp.set("n_selected", int(selected.sum()))

            with tracer.span(
                "vire.weighting", w1_mode=self.config.w1_mode,
                use_w2=self.config.use_w2,
            ):
                w1 = compute_w1(
                    deviations,
                    selected,
                    mode=self.config.w1_mode,
                    virtual_rssi=(
                        virtual if self.config.w1_mode == "paper-literal"
                        else None
                    ),
                )
                w2 = (
                    compute_w2(selected, connectivity=self.config.connectivity)
                    if self.config.use_w2
                    else None
                )
                weights = combine_weights(w1, w2)
                xy = weights.ravel() @ self._positions

            n_selected = int(selected.sum())
            root.update(
                threshold_db=float(threshold),
                n_selected=n_selected,
                fallback=fallback_used,
            )
            return EstimateResult(
                position=(float(xy[0]), float(xy[1])),
                estimator=self.name,
                diagnostics={
                    "threshold_db": float(threshold),
                    "threshold_mode": self.config.threshold_mode,
                    "n_selected": n_selected,
                    "selected_fraction": n_selected / selected.size,
                    "map_areas": [m.area for m in maps],
                    "fallback": fallback_used,
                    "total_virtual_tags": self.virtual_grid.total_tags,
                    **quorum_diag,
                },
            )

    # -- batched estimation ---------------------------------------------------

    @property
    def _engine(self):
        """Lazily constructed :class:`repro.engine.batch.BatchEngine`.

        Imported on first use: ``core`` must not import ``engine`` at
        module load (the engine sits above the algorithm layer).
        """
        engine = self.__dict__.get("_engine_instance")
        if engine is None:
            from ..engine.batch import BatchEngine

            engine = BatchEngine(self)
            self.__dict__["_engine_instance"] = engine
        return engine

    def estimate_batch(self, readings) -> list[EstimateResult]:
        """Localize a batch of readings with the vectorized engine.

        Bitwise identical to ``[self.estimate(r) for r in readings]``,
        including raising the first error a sequential loop would hit.
        Shared interpolation work (tags observed against the same
        reference lattices) is computed once for the whole batch — see
        :mod:`repro.engine` and ``docs/ENGINE.md``.
        """
        return self._engine.estimate_batch(readings)

    def estimate_outcomes(self, readings):
        """Per-reading results *or* errors (no raise) — the service form.

        See :meth:`repro.engine.batch.BatchEngine.estimate_outcomes`.
        """
        return self._engine.estimate_outcomes(readings)

    def selection_mask(self, reading: TrackingReading) -> np.ndarray:
        """The surviving-cell mask for one reading (for visualization)."""
        min_votes = self.config.min_votes
        if reading.masked:
            reading = self.quorum.apply(reading).reading
            if min_votes is not None:
                min_votes = min(min_votes, reading.n_readers)
        virtual = self.interpolate_reading(reading)
        deviations = rssi_deviations(virtual, reading.tracking_rssi)
        threshold = self.select_threshold(deviations)
        maps = build_proximity_maps(deviations, threshold)
        return eliminate(maps, min_votes=min_votes)

    def __repr__(self) -> str:
        return (
            f"VIREEstimator(n={self.virtual_grid.subdivisions}, "
            f"total_tags={self.virtual_grid.total_tags}, "
            f"interpolation={self.config.interpolation!r}, "
            f"threshold={self.config.threshold_mode!r})"
        )
