"""RSSI interpolation onto the virtual lattice (paper §4.2 and §6).

Given one reader's RSSI at the real reference tags — a ``(rows, cols)``
lattice — produce RSSI values for every virtual tag. Three schemes:

* :class:`BilinearInterpolator` — the paper's linear interpolation. The
  paper interpolates along horizontal then vertical lines; composed, that
  is exactly separable bilinear interpolation over each physical cell,
  which is how we implement it (vectorized in one shot).
* :class:`PolynomialInterpolator` — §6's "polynomial relation" future
  work: a separable global polynomial through all the row/column samples
  (Newton/Vandermonde form). Exact at the real tags; prone to Runge
  oscillation on large grids, which is precisely the §6 caveat —
  the ablation bench quantifies it.
* :class:`SplineInterpolator` — the practical nonlinear variant: a
  :class:`scipy.interpolate.RectBivariateSpline` (cubic where the grid
  permits), exact at the real tags, without the Runge pathology.

All interpolators share the signature
``interpolate(lattice, virtual_grid) -> (v_rows, v_cols) array`` and are
exact at virtual positions that coincide with real tags. Outside the real
grid (``extension_cells > 0``) they extrapolate — linearly for the
bilinear scheme (edge-cell gradients), natively for the others.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np
from scipy.interpolate import RectBivariateSpline

from ..exceptions import ConfigurationError
from .virtual_grid import VirtualGrid

__all__ = [
    "GridInterpolator",
    "BilinearInterpolator",
    "PolynomialInterpolator",
    "SplineInterpolator",
    "SparseBilinearOperator",
    "make_interpolator",
    "fill_masked_lattice",
    "check_lattice",
]


def fill_masked_lattice(
    lattice: np.ndarray,
    *,
    min_coverage: float = 0.25,
) -> np.ndarray:
    """Impute NaN holes in an RSSI lattice from surviving real tags.

    Degraded deployments (dead reference tags, lossy reader links)
    produce lattices with missing entries; the interpolators require
    finite input, so masked estimation first *fills* the holes: missing
    cells adjacent (4-neighbourhood) to known cells take the mean of
    their known neighbours, then the frontier advances until the lattice
    is full. The fill is deterministic (Jacobi-style synchronous sweeps:
    each wave is computed from the previous wave only, so fill order
    cannot matter) and exact at every surviving real tag.

    Parameters
    ----------
    lattice:
        ``(rows, cols)`` RSSI lattice, NaN where the value is missing.
    min_coverage:
        Minimum fraction of present values required; below this the
        surface is guesswork and a
        :class:`~repro.exceptions.ConfigurationError` is raised.

    Returns
    -------
    A fully finite lattice. Already-finite input is returned unchanged
    (same object), preserving bit-identical behaviour on healthy data.
    """
    arr = np.asarray(lattice, dtype=np.float64)
    if arr.ndim != 2:
        raise ConfigurationError(
            f"lattice must be 2-D, got shape {arr.shape}"
        )
    finite = np.isfinite(arr)
    if finite.all():
        return arr
    coverage = float(finite.mean())
    if coverage < min_coverage:
        raise ConfigurationError(
            f"masked lattice coverage {coverage:.2f} below the "
            f"{min_coverage:.2f} floor — too few surviving reference tags"
        )
    filled = np.where(finite, arr, 0.0)
    known = finite.copy()
    while not known.all():
        # One synchronous wave: neighbour sums/counts over *known* cells.
        padded_vals = np.pad(np.where(known, filled, 0.0), 1)
        padded_known = np.pad(known.astype(np.float64), 1)
        neighbour_sum = (
            padded_vals[:-2, 1:-1]
            + padded_vals[2:, 1:-1]
            + padded_vals[1:-1, :-2]
            + padded_vals[1:-1, 2:]
        )
        neighbour_cnt = (
            padded_known[:-2, 1:-1]
            + padded_known[2:, 1:-1]
            + padded_known[1:-1, :-2]
            + padded_known[1:-1, 2:]
        )
        frontier = (~known) & (neighbour_cnt > 0)
        if not frontier.any():  # pragma: no cover - disconnected lattice
            raise ConfigurationError("masked lattice fill cannot progress")
        filled[frontier] = neighbour_sum[frontier] / neighbour_cnt[frontier]
        known |= frontier
    return filled


@runtime_checkable
class GridInterpolator(Protocol):
    """Maps a real-tag RSSI lattice to the virtual lattice."""

    def interpolate(
        self, lattice: np.ndarray, virtual_grid: VirtualGrid
    ) -> np.ndarray:
        """Return virtual RSSI values with shape ``virtual_grid.shape``."""
        ...


def check_lattice(lattice: np.ndarray, virtual_grid: VirtualGrid) -> np.ndarray:
    """Validate an interpolation input lattice (shape + finiteness).

    Every interpolator runs this first; the batch engine's grouped path
    runs it per *unique* lattice so its rejections carry exactly the
    errors the scalar interpolators would raise.
    """
    grid = virtual_grid.grid
    arr = np.asarray(lattice, dtype=np.float64)
    if arr.shape != (grid.rows, grid.cols):
        raise ConfigurationError(
            f"lattice shape {arr.shape} mismatches grid {grid.rows}x{grid.cols}"
        )
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError("RSSI lattice contains non-finite values")
    return arr


_check_lattice = check_lattice


class BilinearInterpolator:
    """The paper's linear interpolation, vectorized as bilinear patches.

    Inside each physical cell, the virtual tag at fractional offset
    ``(p/n, q/n)`` from the cell's SW corner takes

    ``S = (1-fy)(1-fx) S_sw + (1-fy)fx S_se + fy(1-fx) S_nw + fy fx S_ne``

    which reduces to the paper's two 1-D formulas along the lattice lines.
    Beyond the real grid it continues the edge cell's plane (linear
    extrapolation).
    """

    name = "linear"

    def interpolate(
        self, lattice: np.ndarray, virtual_grid: VirtualGrid
    ) -> np.ndarray:
        arr = _check_lattice(lattice, virtual_grid)
        grid = virtual_grid.grid
        fi, fj = virtual_grid.fractional_indices()
        # Base cell indices, clamped so extension cells reuse (extrapolate)
        # the outermost physical cell.
        a = np.clip(np.floor(fi).astype(np.intp), 0, grid.rows - 2)
        b = np.clip(np.floor(fj).astype(np.intp), 0, grid.cols - 2)
        fy = (fi - a)[:, np.newaxis]  # may lie outside [0,1] in the extension
        fx = (fj - b)[np.newaxis, :]
        aa = a[:, np.newaxis]
        bb = b[np.newaxis, :]
        sw = arr[aa, bb]
        se = arr[aa, bb + 1]
        nw = arr[aa + 1, bb]
        ne = arr[aa + 1, bb + 1]
        return (
            (1.0 - fy) * (1.0 - fx) * sw
            + (1.0 - fy) * fx * se
            + fy * (1.0 - fx) * nw
            + fy * fx * ne
        )


class SparseBilinearOperator:
    """:class:`BilinearInterpolator` extracted as a precomputed sparse map.

    Bilinear interpolation is *linear in the lattice*: every virtual tag
    is a fixed convex (inside the grid) combination of its cell's four
    corner tags. For a fixed ``(grid, virtual_grid)`` pair the whole
    interpolation is therefore one sparse ``(V, rows*cols)`` matrix with
    exactly four non-zeros per row — corner indices and corner weights —
    that never changes across readings. This class precomputes that
    operator once and applies it to a whole *stack* of lattices in one
    vectorized gather + multiply-add, which is how the batch engine's
    grouped path amortizes interpolation on independent-path batches
    (every reading its own lattice).

    **Bitwise contract**: ``apply(stack)[m]`` is bit-for-bit equal to
    ``BilinearInterpolator().interpolate(stack[m], virtual_grid)``. The
    weight planes are computed with the very expressions the scalar
    interpolator uses (``(1-fy)*(1-fx)`` …), and the four-term
    combination is evaluated elementwise with the same left-to-right
    association, so every IEEE-754 operation matches the scalar path
    operand-for-operand. Enforced by ``tests/test_engine_grouping.py``.
    """

    def __init__(self, virtual_grid: VirtualGrid):
        grid = virtual_grid.grid
        if grid.rows < 2 or grid.cols < 2:
            raise ConfigurationError(
                "bilinear operator extraction needs a >=2x2 reference grid, "
                f"got {grid.rows}x{grid.cols}"
            )
        self.virtual_grid = virtual_grid
        fi, fj = virtual_grid.fractional_indices()
        a = np.clip(np.floor(fi).astype(np.intp), 0, grid.rows - 2)
        b = np.clip(np.floor(fj).astype(np.intp), 0, grid.cols - 2)
        fy = (fi - a)[:, np.newaxis]
        fx = (fj - b)[np.newaxis, :]
        # The scalar interpolator evaluates e.g. ``(1-fy)*(1-fx)*sw`` as
        # ``((1-fy)*(1-fx)) * sw`` — the weight product is a standalone
        # subexpression, so precomputing it preserves bitwise identity.
        self._weights = np.stack(
            [
                (1.0 - fy) * (1.0 - fx),
                (1.0 - fy) * fx,
                fy * (1.0 - fx),
                fy * fx,
            ]
        )  # (4, v_rows, v_cols)
        aa = a[:, np.newaxis]
        bb = b[np.newaxis, :]
        self._indices = np.stack(
            [
                aa * grid.cols + bb,
                aa * grid.cols + (bb + 1),
                (aa + 1) * grid.cols + bb,
                (aa + 1) * grid.cols + (bb + 1),
            ]
        )  # (4, v_rows, v_cols) flat lattice indices

    @property
    def nnz_per_row(self) -> int:
        """Non-zeros per operator row (the four cell corners)."""
        return 4

    def apply(self, stack: np.ndarray, *, dtype=np.float64) -> np.ndarray:
        """Interpolate ``M`` lattices at once.

        Parameters
        ----------
        stack:
            ``(M, rows, cols)`` or ``(M, rows*cols)`` finite lattices.
        dtype:
            ``np.float64`` (default) computes exactly the scalar
            interpolator's bits; ``np.float32`` is the relaxed tier —
            inputs and weights are cast down and the combination runs in
            single precision.

        Returns
        -------
        ``(M, v_rows, v_cols)`` virtual surfaces.
        """
        arr = np.asarray(stack, dtype=dtype)
        m = arr.shape[0]
        flat = arr.reshape(m, -1)
        grid = self.virtual_grid.grid
        if flat.shape[1] != grid.rows * grid.cols:
            raise ConfigurationError(
                f"lattice stack shape {arr.shape} mismatches grid "
                f"{grid.rows}x{grid.cols}"
            )
        w = self._weights
        if dtype is not np.float64:
            w = w.astype(dtype)
        # One gather for all four corners: (M, 4, v_rows, v_cols), then
        # scale the gathered block in place and accumulate the corner
        # terms left-to-right. Finite IEEE-754 multiplication is
        # bitwise commutative, so ``g * w`` equals the scalar's
        # ``weight * corner`` term for term, and the in-place adds keep
        # the scalar's left association ``((t0+t1)+t2)+t3`` — only the
        # temporary-array traffic changes.
        g = flat[:, self._indices]
        np.multiply(g, w[np.newaxis], out=g)
        out = g[:, 0] + g[:, 1]
        out += g[:, 2]
        out += g[:, 3]
        return out

    def to_scipy_csr(self):
        """The operator as an explicit ``(V, rows*cols)`` CSR matrix.

        For inspection and cross-validation only — ``apply`` keeps the
        gather form because a generic sparse matvec does not guarantee
        the scalar path's summation order.
        """
        from scipy import sparse

        v_rows, v_cols = self.virtual_grid.shape
        n_out = v_rows * v_cols
        rows = np.repeat(np.arange(n_out), 4)
        cols = self._indices.reshape(4, -1).T.ravel()
        data = self._weights.reshape(4, -1).T.ravel()
        grid = self.virtual_grid.grid
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(n_out, grid.rows * grid.cols)
        )


class PolynomialInterpolator:
    """Separable global polynomial interpolation (degree rows-1 x cols-1).

    Fits, per axis, the unique polynomial through all samples using a
    Vandermonde solve in normalized coordinates (for conditioning), then
    evaluates the tensor product on the virtual lattice. On the paper's
    4x4 grid this is a bicubic surface.
    """

    name = "polynomial"

    #: Refuse plainly ill-conditioned fits; a 1e8 condition number on a
    #: Vandermonde matrix already means meaningless oscillation.
    MAX_GRID_POINTS_PER_AXIS = 12

    def interpolate(
        self, lattice: np.ndarray, virtual_grid: VirtualGrid
    ) -> np.ndarray:
        arr = _check_lattice(lattice, virtual_grid)
        grid = virtual_grid.grid
        if max(grid.rows, grid.cols) > self.MAX_GRID_POINTS_PER_AXIS:
            raise ConfigurationError(
                "global polynomial interpolation is numerically unusable "
                f"beyond {self.MAX_GRID_POINTS_PER_AXIS} points per axis "
                f"(grid is {grid.rows}x{grid.cols}); use 'spline'"
            )
        fi, fj = virtual_grid.fractional_indices()

        # Normalized sample coordinates in [-1, 1] per axis.
        def norm(idx: np.ndarray, count: int) -> np.ndarray:
            half = (count - 1) / 2.0
            return (idx - half) / max(half, 1.0)

        rows_t = norm(np.arange(grid.rows, dtype=np.float64), grid.rows)
        cols_t = norm(np.arange(grid.cols, dtype=np.float64), grid.cols)
        vi_t = norm(fi, grid.rows)
        vj_t = norm(fj, grid.cols)

        # Columns direction first: coefficients per row polynomial.
        v_cols_mat = np.vander(cols_t, N=grid.cols, increasing=True)
        coef_rows = np.linalg.solve(v_cols_mat, arr.T).T  # (rows, cols)
        eval_cols = np.vander(vj_t, N=grid.cols, increasing=True)
        rows_on_vcols = coef_rows @ eval_cols.T  # (rows, v_cols)

        # Then rows direction.
        v_rows_mat = np.vander(rows_t, N=grid.rows, increasing=True)
        coef_cols = np.linalg.solve(v_rows_mat, rows_on_vcols)  # (rows, v_cols)
        eval_rows = np.vander(vi_t, N=grid.rows, increasing=True)
        return eval_rows @ coef_cols  # (v_rows, v_cols)


class SplineInterpolator:
    """Bivariate spline interpolation (cubic where the grid permits).

    Uses :class:`scipy.interpolate.RectBivariateSpline` with smoothing 0
    so it passes exactly through the real tag values. Degree is capped by
    the available points per axis (a 2-point axis degrades to linear).
    """

    name = "spline"

    def __init__(self, degree: int = 3):
        if not (1 <= degree <= 5):
            raise ConfigurationError(f"degree must be in 1..5, got {degree}")
        self.degree = int(degree)

    def interpolate(
        self, lattice: np.ndarray, virtual_grid: VirtualGrid
    ) -> np.ndarray:
        arr = _check_lattice(lattice, virtual_grid)
        grid = virtual_grid.grid
        fi, fj = virtual_grid.fractional_indices()
        kx = min(self.degree, grid.rows - 1)
        ky = min(self.degree, grid.cols - 1)
        spline = RectBivariateSpline(
            np.arange(grid.rows, dtype=np.float64),
            np.arange(grid.cols, dtype=np.float64),
            arr,
            kx=kx,
            ky=ky,
            s=0,
        )
        return spline(fi, fj)


def make_interpolator(kind: str) -> GridInterpolator:
    """Factory keyed by the config string ("linear"/"polynomial"/"spline")."""
    if kind == "linear":
        return BilinearInterpolator()
    if kind == "polynomial":
        return PolynomialInterpolator()
    if kind == "spline":
        return SplineInterpolator()
    raise ConfigurationError(
        f"unknown interpolation kind {kind!r}; "
        "expected 'linear', 'polynomial' or 'spline'"
    )
