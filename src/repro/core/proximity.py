"""Per-reader proximity maps (paper §4.3).

A proximity map divides the sensing area into regions centred on the
virtual reference tags; a region is marked (``1``) when the absolute
difference between its interpolated RSSI and the tracking tag's RSSI at
that reader is below the threshold. "Each reader will maintain its own
proximity map."

Masked inputs: deviation tensors may contain NaN where a virtual RSSI
value is unknown (degraded deployments). A NaN deviation is *never* a
candidate — unknown signal strength cannot place the tag — and the
comparison is computed only over finite entries so no floating-point
warnings leak. On fully finite input the masks are bit-identical to the
naive ``dev <= threshold``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["ProximityMap", "build_proximity_maps", "rssi_deviations"]


@dataclass(frozen=True)
class ProximityMap:
    """One reader's boolean candidate map over the virtual lattice.

    Attributes
    ----------
    mask:
        Boolean ``(v_rows, v_cols)`` array; True = candidate region.
    threshold_db:
        Threshold used to build the mask.
    reader_index:
        Which reader this map belongs to.
    """

    mask: np.ndarray
    threshold_db: float
    reader_index: int

    def __post_init__(self) -> None:
        mask = np.asarray(self.mask, dtype=bool)
        if mask.ndim != 2:
            raise ConfigurationError(f"mask must be 2-D, got shape {mask.shape}")
        object.__setattr__(self, "mask", mask)
        if self.threshold_db < 0:
            raise ConfigurationError(
                f"threshold_db must be >= 0, got {self.threshold_db}"
            )

    @property
    def area(self) -> int:
        """Number of candidate regions (the paper's map 'area')."""
        return int(self.mask.sum())

    @property
    def fraction(self) -> float:
        """Candidate fraction of the whole sensing area."""
        return float(self.mask.mean())


def rssi_deviations(
    virtual_rssi: np.ndarray, tracking_rssi: Sequence[float]
) -> np.ndarray:
    """|virtual - tracking| per reader: shape ``(K, v_rows, v_cols)``.

    ``virtual_rssi`` is the stacked per-reader interpolation output
    ``(K, v_rows, v_cols)``; ``tracking_rssi`` the tracking tag's K
    readings. This deviation tensor is the single input of both the
    threshold selection and the map construction.
    """
    v = np.asarray(virtual_rssi, dtype=np.float64)
    t = np.asarray(tracking_rssi, dtype=np.float64)
    if v.ndim != 3:
        raise ConfigurationError(
            f"virtual_rssi must have shape (K, v_rows, v_cols), got {v.shape}"
        )
    if t.shape != (v.shape[0],):
        raise ConfigurationError(
            f"tracking_rssi shape {t.shape} mismatches {v.shape[0]} readers"
        )
    return np.abs(v - t[:, np.newaxis, np.newaxis])


def build_proximity_maps(
    deviations: np.ndarray, thresholds: Sequence[float] | float
) -> list[ProximityMap]:
    """Build one map per reader from the deviation tensor.

    ``thresholds`` may be a scalar (the paper ultimately uses one shared
    threshold) or one value per reader (intermediate stages of the
    adaptive reduction).
    """
    dev = np.asarray(deviations, dtype=np.float64)
    if dev.ndim != 3:
        raise ConfigurationError(
            f"deviations must have shape (K, v_rows, v_cols), got {dev.shape}"
        )
    k = dev.shape[0]
    thr = np.broadcast_to(np.asarray(thresholds, dtype=np.float64), (k,))
    if np.any(thr < 0):
        raise ConfigurationError("thresholds must be non-negative")
    finite = np.isfinite(dev)
    maps: list[ProximityMap] = []
    for i in range(k):
        if finite[i].all():
            mask = dev[i] <= thr[i]
        else:
            # Masked deviations: only finite entries can qualify.
            mask = np.zeros(dev.shape[1:], dtype=bool)
            sel = finite[i]
            mask[sel] = dev[i][sel] <= thr[i]
        maps.append(
            ProximityMap(mask=mask, threshold_db=float(thr[i]), reader_index=i)
        )
    return maps
