"""Weighting of surviving regions (paper §4.3).

Two factors combine into the final per-cell weight ``w_i = w1_i * w2_i``:

* ``w1`` reflects the RSSI discrepancy between the cell's virtual tag and
  the tracking tag — smaller discrepancy, larger weight. The paper's
  printed formula sums ``|S_k(T_i) - S_k(R)| / (K * S_k(T_i))`` which, for
  negative dBm values, is sign-broken and grows with discrepancy; we
  expose the evident intent as ``"inverse"`` (default) and the literal
  magnitude, inverted into a weight, as ``"paper-literal"`` (see
  DESIGN.md).
* ``w2`` reflects cluster density: "the densest area has the largest
  weight". Surviving cells are grouped into conjunctive regions
  (connected components, 4- or 8-neighbourhood) and each cell's w2 is its
  component's size, normalized.

The combined weights are normalized to sum to 1 over surviving cells, so
the final coordinate is a convex combination of virtual tag positions.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..exceptions import ConfigurationError, EstimationError

__all__ = ["compute_w1", "compute_w2", "combine_weights", "connected_components"]

_EPS_DB = 1e-6


def compute_w1(
    deviations: np.ndarray,
    selected: np.ndarray,
    *,
    mode: str = "inverse",
    virtual_rssi: np.ndarray | None = None,
) -> np.ndarray:
    """Per-cell discrepancy factor over the selected cells.

    Parameters
    ----------
    deviations:
        ``(K, v_rows, v_cols)`` |virtual - tracking| tensor.
    selected:
        Boolean ``(v_rows, v_cols)`` surviving mask.
    mode:
        ``"inverse"`` — ``w1 = 1 / (mean_k deviation + eps)``;
        ``"paper-literal"`` — the printed formula's magnitude
        ``mean_k deviation / |S_k(T_i)|``, inverted into a weight;
        ``"uniform"`` — all ones (ablation).
    virtual_rssi:
        Required for ``"paper-literal"``: the ``(K, v_rows, v_cols)``
        interpolated RSSI (denominator of the printed formula).

    Returns
    -------
    Non-negative ``(v_rows, v_cols)`` array, zero outside ``selected``
    (unnormalized — :func:`combine_weights` normalizes).
    """
    dev = np.asarray(deviations, dtype=np.float64)
    sel = np.asarray(selected, dtype=bool)
    if dev.ndim != 3 or dev.shape[1:] != sel.shape:
        raise ConfigurationError(
            f"deviations shape {dev.shape} mismatches selection {sel.shape}"
        )
    out = np.zeros(sel.shape)
    if mode == "uniform":
        out[sel] = 1.0
        return out
    if mode == "inverse":
        mean_dev = dev.mean(axis=0)
        out[sel] = 1.0 / (mean_dev[sel] + _EPS_DB)
        return out
    if mode == "paper-literal":
        if virtual_rssi is None:
            raise ConfigurationError(
                "paper-literal w1 requires the interpolated virtual_rssi"
            )
        v = np.asarray(virtual_rssi, dtype=np.float64)
        if v.shape != dev.shape:
            raise ConfigurationError(
                f"virtual_rssi shape {v.shape} mismatches deviations {dev.shape}"
            )
        literal = (dev / np.maximum(np.abs(v), _EPS_DB)).mean(axis=0)
        out[sel] = 1.0 / (literal[sel] + _EPS_DB)
        return out
    raise ConfigurationError(f"unknown w1 mode {mode!r}")


def connected_components(
    selected: np.ndarray, *, connectivity: int = 4
) -> tuple[np.ndarray, int]:
    """Label conjunctive regions of the surviving mask.

    Returns ``(labels, n_components)`` where ``labels`` assigns 1..n to
    surviving cells and 0 elsewhere.
    """
    sel = np.asarray(selected, dtype=bool)
    if sel.ndim != 2:
        raise ConfigurationError(f"selected must be 2-D, got shape {sel.shape}")
    if connectivity == 4:
        structure = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]])
    elif connectivity == 8:
        structure = np.ones((3, 3))
    else:
        raise ConfigurationError(f"connectivity must be 4 or 8, got {connectivity}")
    labels, n = ndimage.label(sel, structure=structure)
    return labels, int(n)


def compute_w2(selected: np.ndarray, *, connectivity: int = 4) -> np.ndarray:
    """Cluster-density factor: each surviving cell's component size.

    The paper's ``w2_i = n_ci / sum n_ci`` with ``n_ci`` the number of
    conjunctive regions in cell i's cluster. Returned unnormalized (the
    component size itself); :func:`combine_weights` normalizes the
    product.
    """
    labels, n = connected_components(selected, connectivity=connectivity)
    out = np.zeros(labels.shape)
    if n == 0:
        return out
    sizes = ndimage.sum_labels(
        np.ones_like(labels), labels, index=np.arange(1, n + 1)
    )
    mask = labels > 0
    out[mask] = sizes[labels[mask] - 1]
    return out


def combine_weights(w1: np.ndarray, w2: np.ndarray | None) -> np.ndarray:
    """Normalize ``w = w1 * w2`` to sum to 1 over its support.

    Raises :class:`~repro.exceptions.EstimationError` when the support is
    empty (no surviving cells) — the estimator's fallback policies handle
    that case upstream.
    """
    w1 = np.asarray(w1, dtype=np.float64)
    w = w1 if w2 is None else w1 * np.asarray(w2, dtype=np.float64)
    if np.any(w < 0):
        raise ConfigurationError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise EstimationError("no surviving cells to weight")
    return w / total
