"""Elimination of unlikely positions (paper §4.3).

"After obtaining K proximity maps from the K readers, an intersection
function is applied to indicate the most probable regions." Cells must
survive in every reader's map to remain candidates; everything else is
eliminated. ``min_votes`` relaxes the strict intersection to a majority
vote — useful when one reader is obstructed (failure injection) and as a
design-parameter ablation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .proximity import ProximityMap

__all__ = ["vote_map", "eliminate"]


def vote_map(maps: Sequence[ProximityMap]) -> np.ndarray:
    """Integer lattice counting in how many reader maps each cell survives."""
    if not maps:
        raise ConfigurationError("need at least one proximity map")
    shape = maps[0].mask.shape
    votes = np.zeros(shape, dtype=np.int64)
    for m in maps:
        if m.mask.shape != shape:
            raise ConfigurationError(
                f"proximity map shapes differ: {m.mask.shape} vs {shape}"
            )
        votes += m.mask
    return votes


def eliminate(
    maps: Sequence[ProximityMap], *, min_votes: int | None = None
) -> np.ndarray:
    """Intersect the proximity maps into the final candidate mask.

    Parameters
    ----------
    maps:
        One map per reader.
    min_votes:
        Cells surviving in at least this many maps are kept; ``None``
        (the paper) requires all K.

    Returns
    -------
    Boolean ``(v_rows, v_cols)`` mask of surviving regions. May be empty
    — callers implement the fallback policy.
    """
    k = len(maps)
    votes = vote_map(maps)
    needed = k if min_votes is None else min_votes
    if not (1 <= needed <= k):
        raise ConfigurationError(
            f"min_votes must be within 1..{k}, got {needed}"
        )
    return votes >= needed
