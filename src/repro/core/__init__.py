"""The VIRE algorithm (the paper's contribution) and its extensions.

Pipeline (paper §4):

1. :mod:`~repro.core.virtual_grid` — densify the real reference grid
   with virtual reference tags (n x n per physical cell);
2. :mod:`~repro.core.interpolation` — per reader, interpolate the real
   tags' RSSI onto the virtual lattice (linear in the paper; polynomial
   and spline variants implement §6's future work);
3. :mod:`~repro.core.proximity` — per reader, mark virtual cells whose
   RSSI is within a threshold of the tracking tag's (the proximity map);
4. :mod:`~repro.core.elimination` — intersect the K maps, eliminating
   unlikely positions;
5. :mod:`~repro.core.threshold` — adaptively shrink the threshold to the
   smallest value that keeps the intersection alive;
6. :mod:`~repro.core.weighting` — weight surviving cells by RSSI
   discrepancy (w1) and cluster density (w2);
7. :class:`~repro.core.estimator.VIREEstimator` — the weighted centroid.

Extensions: :mod:`~repro.core.boundary` (boundary-tag detection and
compensation) and :mod:`~repro.core.irregular` (per-cell virtual
granularity), both sketched as future work in the paper's §6.
"""

from .config import VIREConfig
from .virtual_grid import VirtualGrid
from .interpolation import (
    BilinearInterpolator,
    PolynomialInterpolator,
    SplineInterpolator,
    fill_masked_lattice,
    make_interpolator,
)
from .proximity import ProximityMap, build_proximity_maps
from .quorum import QuorumDecision, QuorumPolicy
from .elimination import eliminate, vote_map
from .threshold import AdaptiveThresholdSelector, minimal_feasible_threshold
from .weighting import combine_weights, compute_w1, compute_w2
from .estimator import VIREEstimator, LatticeCache
from .soft import SoftVIREEstimator
from .boundary import BoundaryAwareEstimator, is_boundary_estimate
from .irregular import IrregularVirtualGrid, IrregularVIREEstimator

__all__ = [
    "VIREConfig",
    "VirtualGrid",
    "BilinearInterpolator",
    "PolynomialInterpolator",
    "SplineInterpolator",
    "make_interpolator",
    "fill_masked_lattice",
    "ProximityMap",
    "build_proximity_maps",
    "QuorumDecision",
    "QuorumPolicy",
    "eliminate",
    "vote_map",
    "AdaptiveThresholdSelector",
    "minimal_feasible_threshold",
    "compute_w1",
    "compute_w2",
    "combine_weights",
    "VIREEstimator",
    "LatticeCache",
    "SoftVIREEstimator",
    "BoundaryAwareEstimator",
    "is_boundary_estimate",
    "IrregularVirtualGrid",
    "IrregularVIREEstimator",
]
