"""Boundary-tag detection and compensation (paper §6 future work).

The paper: tags at the boundary of the sensing area suffer much larger
errors because reference coverage is one-sided, and Tag 9 (slightly
*outside* the grid) is worst. "If it is physically infeasible to put more
reference tags beyond the sensing area, it will be an interesting future
study to investigate how to identify such boundary tags and to compensate
their localization accuracy."

We implement both halves:

* :func:`is_boundary_estimate` — identify a boundary situation from the
  *selection mask*: when the surviving cells crowd the outer ring of the
  virtual lattice, the true position is likely at or beyond the edge
  (the interior of the grid explains the readings badly).
* :class:`BoundaryAwareEstimator` — a wrapper that runs plain VIRE first
  and, when the boundary detector fires, re-estimates on a virtual
  lattice extended beyond the real grid by linear extrapolation
  (``boundary_extension_cells``), letting the centroid move outside the
  convex hull of the real tags — which plain VIRE/LANDMARC structurally
  cannot do.
"""

from __future__ import annotations

import numpy as np

from ..geometry.grid import ReferenceGrid
from ..types import EstimateResult, TrackingReading
from .config import VIREConfig
from .estimator import VIREEstimator

__all__ = ["is_boundary_estimate", "BoundaryAwareEstimator"]


def is_boundary_estimate(
    selected: np.ndarray, *, ring_width: int = 1, crowding_threshold: float = 0.5
) -> bool:
    """Does the surviving mask crowd the lattice's outer ring?

    Parameters
    ----------
    selected:
        Boolean ``(v_rows, v_cols)`` surviving mask.
    ring_width:
        Thickness (in virtual cells) of the outer ring examined.
    crowding_threshold:
        Flag as boundary when at least this fraction of surviving cells
        lies in the ring.
    """
    sel = np.asarray(selected, dtype=bool)
    total = sel.sum()
    if total == 0:
        return False
    ring = np.zeros_like(sel)
    w = ring_width
    ring[:w, :] = True
    ring[-w:, :] = True
    ring[:, :w] = True
    ring[:, -w:] = True
    on_ring = (sel & ring).sum()
    return bool(on_ring / total >= crowding_threshold)


class BoundaryAwareEstimator:
    """VIRE with §6 boundary compensation.

    Parameters
    ----------
    grid:
        The real reference grid.
    config:
        Base VIRE configuration (its ``boundary_extension_cells`` is
        forced to 0 for the first pass).
    extension_cells:
        Physical cells of outward extrapolation used in the second pass.
    ring_width, crowding_threshold:
        Detector parameters (see :func:`is_boundary_estimate`).
    """

    name = "VIRE+boundary"

    def __init__(
        self,
        grid: ReferenceGrid,
        config: VIREConfig | None = None,
        *,
        extension_cells: int = 1,
        ring_width: int = 1,
        crowding_threshold: float = 0.5,
    ):
        base_config = (config or VIREConfig()).with_(boundary_extension_cells=0)
        self.inner = VIREEstimator(grid, base_config)
        self.extended = VIREEstimator(
            grid, base_config.with_(boundary_extension_cells=extension_cells)
        )
        self.ring_width = int(ring_width)
        self.crowding_threshold = float(crowding_threshold)

    def estimate(self, reading: TrackingReading) -> EstimateResult:
        mask = self.inner.selection_mask(reading)
        boundary = is_boundary_estimate(
            mask,
            ring_width=self.ring_width,
            crowding_threshold=self.crowding_threshold,
        )
        result = (self.extended if boundary else self.inner).estimate(reading)
        return EstimateResult(
            position=result.position,
            estimator=self.name,
            diagnostics={**dict(result.diagnostics), "boundary_detected": boundary},
        )

    def __repr__(self) -> str:
        return (
            f"BoundaryAwareEstimator(extension={self.extended.virtual_grid.extension_cells}, "
            f"ring={self.ring_width}, crowding={self.crowding_threshold})"
        )
