"""The virtual reference-tag lattice (paper §4.2).

Each physical cell bounded by four real reference tags is subdivided into
``n x n`` equal virtual cells, whose corners are virtual reference tags.
For a ``rows x cols`` real grid the virtual lattice therefore has

``v_rows = (rows - 1) * n + 1`` by ``v_cols = (cols - 1) * n + 1``

tags (the paper's count of (n+1)² - 4 *added* tags per cell refers to one
isolated cell; on the full grid shared edges make the lattice formula the
correct one). Optionally the lattice is extended ``extension_cells``
physical cells beyond every side of the real grid — virtual tags out
there take *extrapolated* RSSI values, the §6 idea for covering boundary
tracking tags.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..geometry.grid import ReferenceGrid
from ..utils.validation import ensure_positive_int

__all__ = ["VirtualGrid"]


@dataclass(frozen=True)
class VirtualGrid:
    """Geometry of the virtual lattice over a real reference grid.

    Parameters
    ----------
    grid:
        The real reference grid.
    subdivisions:
        ``n`` — virtual cells per physical cell edge (n=1 means the
        virtual lattice coincides with the real one).
    extension_cells:
        Physical cells of outward extension on every side (0 = paper).
    """

    grid: ReferenceGrid
    subdivisions: int = 10
    extension_cells: int = 0

    def __post_init__(self) -> None:
        ensure_positive_int(self.subdivisions, "subdivisions")
        if self.extension_cells < 0:
            raise ConfigurationError(
                f"extension_cells must be >= 0, got {self.extension_cells}"
            )

    # -- lattice shape -----------------------------------------------------

    @property
    def n(self) -> int:
        """Alias for ``subdivisions`` matching the paper's notation."""
        return self.subdivisions

    @property
    def v_rows(self) -> int:
        """Virtual lattice rows (including any extension)."""
        core = (self.grid.rows - 1) * self.n + 1
        return core + 2 * self.extension_cells * self.n

    @property
    def v_cols(self) -> int:
        """Virtual lattice columns (including any extension)."""
        core = (self.grid.cols - 1) * self.n + 1
        return core + 2 * self.extension_cells * self.n

    @property
    def shape(self) -> tuple[int, int]:
        return (self.v_rows, self.v_cols)

    @property
    def total_tags(self) -> int:
        """Total virtual+real tag count — the paper's N² axis (Fig. 7)."""
        return self.v_rows * self.v_cols

    @property
    def pitch(self) -> tuple[float, float]:
        """Spacing between adjacent virtual tags, (dy, dx) in metres."""
        return (
            self.grid.spacing_y / self.n,
            self.grid.spacing_x / self.n,
        )

    # -- coordinates ---------------------------------------------------------

    def axis_coordinates(self) -> tuple[np.ndarray, np.ndarray]:
        """``(ys, xs)`` 1-D coordinate arrays of the lattice axes."""
        dy, dx = self.pitch
        ox, oy = self.grid.origin
        ext = self.extension_cells * self.n
        ys = oy + (np.arange(self.v_rows) - ext) * dy
        xs = ox + (np.arange(self.v_cols) - ext) * dx
        return ys, xs

    def positions(self) -> np.ndarray:
        """All virtual tag coordinates, shape ``(v_rows * v_cols, 2)``,
        row-major (matching ``lattice.ravel()``)."""
        ys, xs = self.axis_coordinates()
        xx, yy = np.meshgrid(xs, ys)
        return np.column_stack([xx.ravel(), yy.ravel()])

    def fractional_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """Virtual lattice coordinates in units of *real* grid indices.

        Returns ``(fi, fj)`` 1-D arrays: ``fi[r]`` is the real-grid row
        coordinate (0 .. rows-1, outside that range in the extension) of
        virtual row ``r``; likewise ``fj`` for columns. Interpolators
        consume these.
        """
        ext = self.extension_cells * self.n
        fi = (np.arange(self.v_rows) - ext) / self.n
        fj = (np.arange(self.v_cols) - ext) / self.n
        return fi, fj

    def real_tag_mask(self) -> np.ndarray:
        """Boolean lattice mask marking positions shared with real tags."""
        fi, fj = self.fractional_indices()
        on_row = np.isclose(fi % 1.0, 0.0) & (fi >= -1e-9) & (fi <= self.grid.rows - 1 + 1e-9)
        on_col = np.isclose(fj % 1.0, 0.0) & (fj >= -1e-9) & (fj <= self.grid.cols - 1 + 1e-9)
        return on_row[:, np.newaxis] & on_col[np.newaxis, :]

    # -- construction helpers --------------------------------------------

    @staticmethod
    def for_target_count(
        grid: ReferenceGrid,
        target_total_tags: int,
        *,
        extension_cells: int = 0,
        max_subdivisions: int = 64,
    ) -> "VirtualGrid":
        """Smallest ``n`` whose lattice reaches ``target_total_tags`` tags.

        Reproduces the paper's Fig. 7 x-axis: "the total number of real
        and virtual reference tags N²".
        """
        if target_total_tags < grid.n_tags:
            raise ConfigurationError(
                f"target_total_tags={target_total_tags} below the real tag "
                f"count {grid.n_tags}"
            )
        for n in range(1, max_subdivisions + 1):
            vg = VirtualGrid(grid, n, extension_cells=extension_cells)
            if vg.total_tags >= target_total_tags:
                return vg
        raise ConfigurationError(
            f"cannot reach {target_total_tags} tags with subdivisions "
            f"<= {max_subdivisions}"
        )
