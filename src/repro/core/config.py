"""Configuration of the VIRE estimator.

Collects every design parameter the paper discusses (subdivision density
§5.2, threshold §5.3, weighting §4.3) plus the documented deviations
(w1 mode, empty-intersection fallback) into one validated dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..exceptions import ConfigurationError

__all__ = ["VIREConfig"]

_INTERPOLATIONS = ("linear", "polynomial", "spline")
_THRESHOLD_MODES = ("adaptive", "fixed")
_W1_MODES = ("inverse", "paper-literal", "uniform")
_FALLBACKS = ("relax", "landmarc", "error")


@dataclass(frozen=True)
class VIREConfig:
    """All knobs of :class:`~repro.core.estimator.VIREEstimator`.

    Parameters
    ----------
    subdivisions:
        ``n`` — virtual cells per physical cell edge. The paper's
        preferred operating point N² ≈ 900 total virtual tags corresponds
        to n = 10 on the 4x4 grid (31 x 31 = 961 tags). Ignored when
        ``target_total_tags`` is set.
    target_total_tags:
        If set, choose the smallest ``n`` whose virtual lattice reaches at
        least this many total tags (the paper's N² axis in Fig. 7).
    interpolation:
        ``"linear"`` (the paper), ``"polynomial"`` or ``"spline"``
        (§6 future work).
    threshold_mode:
        ``"adaptive"`` (paper §4.3's reduction algorithm) or ``"fixed"``
        (the Fig. 8 sweep).
    fixed_threshold_db:
        Threshold used in ``"fixed"`` mode.
    min_cells:
        Adaptive mode keeps shrinking until fewer than this many cells
        would survive; 1 reproduces the paper's "smallest area".
    threshold_margin_db:
        Added on top of the minimal feasible threshold in adaptive mode.
        A bare minimal threshold keeps literally the single best cell,
        which makes the estimate track measurement noise; the margin
        widens the surviving region so the weighted centroid averages
        noise out. The paper's Fig. 8 sweet spot (threshold 1-1.5 while
        the minimal feasible value is near 0) indicates the original
        system also operated with such a margin.
    min_votes:
        Cells surviving in at least this many reader maps are kept.
        ``None`` means all K readers (the paper's strict intersection).
    w1_mode:
        ``"inverse"`` — weight 1/(mean |RSSI diff|) (the evident intent);
        ``"paper-literal"`` — the printed formula's magnitude, inverted;
        ``"uniform"`` — disable w1 (ablation).
    use_w2:
        Enable the cluster-density factor w2 (ablation switch).
    connectivity:
        4 or 8 — neighbourhood used for w2's conjunctive regions.
    empty_fallback:
        What to do if the intersection is empty in ``"fixed"`` mode:
        ``"relax"`` — locally relax the threshold to the minimal feasible
        value; ``"landmarc"`` — fall back to classic LANDMARC;
        ``"error"`` — raise :class:`~repro.exceptions.EstimationError`.
    boundary_extension_cells:
        Extend the virtual lattice this many *physical* cells beyond the
        real grid by linear extrapolation (§6: compensating boundary
        tags). 0 reproduces the paper.
    """

    subdivisions: int = 10
    target_total_tags: int | None = None
    interpolation: str = "linear"
    threshold_mode: str = "adaptive"
    fixed_threshold_db: float = 1.0
    min_cells: int = 1
    threshold_margin_db: float = 1.5
    min_votes: int | None = None
    w1_mode: str = "inverse"
    use_w2: bool = True
    connectivity: int = 4
    empty_fallback: str = "relax"
    boundary_extension_cells: int = 0

    def __post_init__(self) -> None:
        if self.subdivisions < 1:
            raise ConfigurationError(
                f"subdivisions must be >= 1, got {self.subdivisions}"
            )
        if self.target_total_tags is not None and self.target_total_tags < 4:
            raise ConfigurationError(
                f"target_total_tags must be >= 4, got {self.target_total_tags}"
            )
        if self.interpolation not in _INTERPOLATIONS:
            raise ConfigurationError(
                f"interpolation must be one of {_INTERPOLATIONS}, "
                f"got {self.interpolation!r}"
            )
        if self.threshold_mode not in _THRESHOLD_MODES:
            raise ConfigurationError(
                f"threshold_mode must be one of {_THRESHOLD_MODES}, "
                f"got {self.threshold_mode!r}"
            )
        if self.fixed_threshold_db <= 0:
            raise ConfigurationError(
                f"fixed_threshold_db must be positive, got {self.fixed_threshold_db}"
            )
        if self.min_cells < 1:
            raise ConfigurationError(f"min_cells must be >= 1, got {self.min_cells}")
        if self.threshold_margin_db < 0:
            raise ConfigurationError(
                f"threshold_margin_db must be >= 0, got {self.threshold_margin_db}"
            )
        if self.min_votes is not None and self.min_votes < 1:
            raise ConfigurationError(
                f"min_votes must be >= 1 or None, got {self.min_votes}"
            )
        if self.w1_mode not in _W1_MODES:
            raise ConfigurationError(
                f"w1_mode must be one of {_W1_MODES}, got {self.w1_mode!r}"
            )
        if self.connectivity not in (4, 8):
            raise ConfigurationError(
                f"connectivity must be 4 or 8, got {self.connectivity}"
            )
        if self.empty_fallback not in _FALLBACKS:
            raise ConfigurationError(
                f"empty_fallback must be one of {_FALLBACKS}, "
                f"got {self.empty_fallback!r}"
            )
        if self.boundary_extension_cells < 0:
            raise ConfigurationError(
                "boundary_extension_cells must be >= 0, got "
                f"{self.boundary_extension_cells}"
            )

    def with_(self, **changes) -> "VIREConfig":
        """Return a modified copy (thin wrapper over dataclasses.replace)."""
        return replace(self, **changes)

    @staticmethod
    def paper_operating_point() -> "VIREConfig":
        """The configuration the paper settles on: N² ≈ 900, adaptive
        threshold, linear interpolation."""
        return VIREConfig(target_total_tags=900)
