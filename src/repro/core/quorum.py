"""Quorum policy for degraded-mode localization.

When readers fail (outage, burst loss) or reference tags die, the
middleware can still assemble a *partial* snapshot
(``MiddlewareServer.snapshot(..., allow_partial=True)``): some readers
absent, some reference columns NaN. :class:`QuorumPolicy` decides
whether that partial reading is still good enough to run VIRE on, and
trims it to the surviving-reader subset:

* every surviving reader must know at least
  ``min_reference_coverage`` of the reference lattice (otherwise its
  interpolated surface is guesswork and it is excluded), and
* at least ``min_readers`` readers must survive the coverage cut
  (a single reader cannot disambiguate position in 2-D).

``apply`` is a pure function of the reading — no state, no randomness —
so the degraded-mode pipeline stays as deterministic as the healthy one.
Complete readings pass through untouched (same object), preserving
bit-identical behaviour on healthy data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..exceptions import ConfigurationError, EstimationError
from ..types import TrackingReading

__all__ = ["QuorumPolicy", "QuorumDecision"]


@dataclass(frozen=True)
class QuorumDecision:
    """Outcome of one quorum evaluation (diagnostics for the service layer).

    Attributes
    ----------
    reading:
        The (possibly reader-subset) reading to estimate from.
    surviving_readers:
        Indices *into the input reading* of the readers kept.
    excluded_readers:
        Indices of readers dropped for insufficient reference coverage.
    coverage:
        Per-input-reader fraction of present reference values.
    degraded:
        True when the decision dropped readers or the reading is masked.
    """

    reading: TrackingReading
    surviving_readers: tuple[int, ...]
    excluded_readers: tuple[int, ...]
    coverage: tuple[float, ...]
    degraded: bool

    def diagnostics(self) -> dict[str, Any]:
        """Flat dict for :class:`~repro.types.EstimateResult` diagnostics."""
        return {
            "quorum_surviving_readers": list(self.surviving_readers),
            "quorum_excluded_readers": list(self.excluded_readers),
            "quorum_coverage": [round(c, 6) for c in self.coverage],
            "quorum_degraded": self.degraded,
        }


@dataclass(frozen=True)
class QuorumPolicy:
    """Minimum evidence required to attempt VIRE on a degraded reading.

    Parameters
    ----------
    min_readers:
        Fewest readers that must survive the coverage cut. The paper's
        elimination intersects per-reader maps; below two readers the
        intersection carries no cross-bearing information.
    min_reference_coverage:
        Per-reader floor on the fraction of reference tags with a
        present (finite) RSSI value. Readers below the floor are
        excluded rather than interpolated from thin air.
    """

    min_readers: int = 2
    min_reference_coverage: float = 0.5

    def __post_init__(self) -> None:
        if self.min_readers < 1:
            raise ConfigurationError(
                f"min_readers must be >= 1, got {self.min_readers}"
            )
        if not (0.0 < self.min_reference_coverage <= 1.0):
            raise ConfigurationError(
                "min_reference_coverage must be in (0, 1], got "
                f"{self.min_reference_coverage}"
            )

    def apply(self, reading: TrackingReading) -> QuorumDecision:
        """Evaluate the quorum; raise :class:`EstimationError` if unmet.

        Complete readings (``masked=False`` or all values present) are
        returned unchanged. Masked readings are trimmed to the readers
        meeting the coverage floor; if fewer than ``min_readers``
        survive, an :class:`~repro.exceptions.EstimationError` is raised
        so the caller can fall down the degradation ladder.
        """
        coverage = tuple(
            float(c) for c in reading.reader_reference_coverage
        )
        if not reading.masked or reading.is_complete:
            return QuorumDecision(
                reading=reading,
                surviving_readers=tuple(range(reading.n_readers)),
                excluded_readers=(),
                coverage=coverage,
                degraded=bool(reading.masked),
            )

        surviving = tuple(
            i
            for i, c in enumerate(coverage)
            if c >= self.min_reference_coverage
        )
        excluded = tuple(
            i for i in range(reading.n_readers) if i not in surviving
        )
        if len(surviving) < self.min_readers:
            raise EstimationError(
                f"quorum unmet: {len(surviving)} reader(s) with reference "
                f"coverage >= {self.min_reference_coverage:.2f} "
                f"(need {self.min_readers}); coverage="
                + "/".join(f"{c:.2f}" for c in coverage)
            )
        if not excluded:
            trimmed = reading
        else:
            trimmed = reading.subset_readers(np.asarray(surviving))
        return QuorumDecision(
            reading=trimmed,
            surviving_readers=surviving,
            excluded_readers=excluded,
            coverage=coverage,
            degraded=True,
        )
