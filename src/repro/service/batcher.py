"""Micro-batching of pending tag-localization requests.

One VIRE estimate amortizes poorly at batch size 1: every request pays
snapshot assembly plus the fixed numpy dispatch overhead of the
interpolation/elimination pipeline, and — with the interpolation cache —
requests that share a middleware snapshot share *all* their
reference-lattice interpolations. The batcher therefore holds requests
briefly and flushes them together, with the classic two-trigger policy:

* **size** — the batch reached ``max_batch_size``;
* **deadline** — the *oldest* pending request has waited
  ``max_latency_s`` (per-request latency is bounded regardless of
  traffic level);
* **drain** — the session is shutting down and flushes what remains.

The batcher is clock-agnostic: callers pass ``now`` explicitly (the
session facade feeds it the seeded service clock), which keeps every
flush decision deterministic and unit-testable without sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..exceptions import ConfigurationError
from .metrics import MetricsRegistry, get_service_logger, log_event

__all__ = ["LocalizationRequest", "Batch", "MicroBatcher"]


@dataclass(frozen=True)
class LocalizationRequest:
    """One pending "where is this tag?" query.

    Attributes
    ----------
    tag_id:
        Tracking tag to localize.
    enqueued_at_s:
        Service-clock time the request entered the batcher.
    deadline_s:
        Absolute service-clock time after which the result is late; the
        pipeline degrades (rather than drops) requests past it.
    """

    tag_id: str
    enqueued_at_s: float
    deadline_s: float | None = None


@dataclass(frozen=True)
class Batch:
    """A flushed group of requests plus why/when it was flushed."""

    requests: tuple[LocalizationRequest, ...]
    reason: str  # "size" | "deadline" | "drain"
    formed_at_s: float

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[LocalizationRequest]:
        return iter(self.requests)


class MicroBatcher:
    """Accumulates localization requests; flushes on size or deadline.

    Parameters
    ----------
    max_batch_size:
        Flush as soon as this many requests are pending.
    max_latency_s:
        Flush as soon as the oldest pending request is this old, even if
        the batch is not full.
    """

    def __init__(
        self,
        max_batch_size: int = 8,
        max_latency_s: float = 0.25,
        *,
        metrics: MetricsRegistry | None = None,
    ):
        if max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if max_latency_s <= 0:
            raise ConfigurationError(
                f"max_latency_s must be positive, got {max_latency_s}"
            )
        self.max_batch_size = int(max_batch_size)
        self.max_latency_s = float(max_latency_s)
        self._pending: list[LocalizationRequest] = []
        self._submitted = 0
        self._flushed_by_reason = {"size": 0, "deadline": 0, "drain": 0}
        self._logger = get_service_logger()
        self._metrics = metrics
        if metrics is not None:
            self._c_submitted = metrics.counter(
                "batcher_requests_total", "Localization requests submitted"
            )
            self._c_flushes = {
                reason: metrics.counter(
                    f"batcher_flushes_{reason}_total",
                    f"Batches flushed by the {reason} trigger",
                )
                for reason in ("size", "deadline", "drain")
            }
            self._g_pending = metrics.gauge(
                "batcher_pending_requests", "Requests currently pending"
            )
            self._h_batch = metrics.histogram(
                "batcher_batch_size_requests",
                "Flushed batch sizes",
                buckets=tuple(float(b) for b in (1, 2, 4, 8, 16, 32, 64, 128)),
            )

    # -- submission ----------------------------------------------------------

    def submit(self, request: LocalizationRequest) -> None:
        """Add one request to the pending set."""
        self._pending.append(request)
        self._submitted += 1
        if self._metrics is not None:
            self._c_submitted.inc()
            self._g_pending.set(len(self._pending))

    # -- flush triggers ------------------------------------------------------

    def next_deadline(self) -> float | None:
        """Service-clock time at which a deadline flush becomes due."""
        if not self._pending:
            return None
        return self._pending[0].enqueued_at_s + self.max_latency_s

    def _cut(self, count: int, reason: str, now_s: float) -> Batch:
        requests, self._pending[:count] = tuple(self._pending[:count]), []
        batch = Batch(requests=requests, reason=reason, formed_at_s=now_s)
        self._flushed_by_reason[reason] += 1
        if self._metrics is not None:
            self._c_flushes[reason].inc()
            self._g_pending.set(len(self._pending))
            self._h_batch.observe(len(batch))
        log_event(
            self._logger, "batch_flush",
            reason=reason, size=len(batch), pending=len(self._pending),
            t=now_s,
        )
        return batch

    def poll(
        self, now_s: float, *, max_batches: int | None = None
    ) -> list[Batch]:
        """Return every batch due at ``now_s`` (possibly none).

        Size flushes cut full batches first; a deadline flush then takes
        whatever remains if the oldest leftover request has aged out.

        ``max_batches`` caps how many batches one poll may cut — the
        executor-capacity knob of the load harness. An uncapped poll
        always clears its backlog, which silently models an infinitely
        fast estimator; with a cap, excess requests stay pending and
        their queue wait (sim-clock) grows until the deadline ladder
        takes over — overload becomes measurable instead of absorbed.
        A capped poll also never cuts an oversized deadline batch: the
        deadline flush only fires once the backlog has shrunk below one
        full batch. ``None`` (the default) is bit-identical to the
        historical unbounded behaviour.
        """
        batches: list[Batch] = []

        def within_limit() -> bool:
            return max_batches is None or len(batches) < max_batches

        while len(self._pending) >= self.max_batch_size and within_limit():
            batches.append(self._cut(self.max_batch_size, "size", now_s))
        if within_limit() and len(self._pending) < self.max_batch_size:
            deadline = self.next_deadline()
            if deadline is not None and now_s >= deadline:
                batches.append(
                    self._cut(len(self._pending), "deadline", now_s)
                )
        return batches

    def drain(self, now_s: float) -> list[Batch]:
        """Force-flush everything (session shutdown)."""
        batches = []
        while len(self._pending) >= self.max_batch_size:
            batches.append(self._cut(self.max_batch_size, "size", now_s))
        if self._pending:
            batches.append(self._cut(len(self._pending), "drain", now_s))
        return batches

    # -- accounting ----------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._pending)

    @property
    def submitted(self) -> int:
        return self._submitted

    @property
    def batches_flushed(self) -> int:
        return sum(self._flushed_by_reason.values())

    @property
    def flushes_by_reason(self) -> dict[str, int]:
        return dict(self._flushed_by_reason)

    def __repr__(self) -> str:
        return (
            f"MicroBatcher(pending={len(self._pending)}, "
            f"max_size={self.max_batch_size}, "
            f"max_latency={self.max_latency_s:g}s, "
            f"flushed={self.batches_flushed})"
        )
