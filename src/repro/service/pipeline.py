"""The service orchestrator: snapshots → batches → estimates, degraded
gracefully, measured always.

:class:`ServicePipeline` wires the streaming stack together:

.. code-block:: text

    readers ──> BoundedRecordQueue ──> MiddlewareServer
                   (ingest.py)              │ snapshot(tag, now)
                                            v
    queries ──> MicroBatcher ──> estimator workers ──> ServiceResult
                 (batcher.py)    VIRE ──degrade──> LANDMARC

Graceful degradation is a four-level ladder (never an exception on the
serving path); each level is attempted only when the one above fails:

1. **full VIRE** — a complete snapshot, the primary path.
2. **VIRE on the surviving subset** — with ``allow_partial`` (the
   default) the middleware assembles a *masked* snapshot under degraded
   input (readers absent, reference columns NaN); readers whose circuit
   breaker is open are excluded up front; the estimator's
   :class:`~repro.core.quorum.QuorumPolicy` trims low-coverage readers
   and still answers with VIRE (``degraded=True``,
   ``reason="partial_readers"``).
3. **LANDMARC** — when VIRE refuses (empty intersection on a healthy
   reading: ``reason="empty_intersection"``; quorum unmet on a masked
   one: ``reason="quorum_unmet"``; or the request is past its deadline:
   ``reason="deadline"``), the NaN-aware LANDMARC fallback answers.
4. **last known** — when even a snapshot cannot be assembled (or
   LANDMARC itself has nothing to rank), the pipeline answers with the
   tag's last known estimate if one exists (``reason="no_reading"``);
   only a tag that has *never* been localized yields no result, counted
   in ``service_requests_failed_total``.

Reader health: a :class:`~repro.service.health.ReaderHealthTracker`
observes per-reader middleware freshness every batch and drives one
circuit breaker per reader (open after consecutive staleness, half-open
probe after the recovery timeout). Open readers are dropped from partial
snapshots before estimation, so a flapping reader cannot poison the
subset path. All breaker state changes are structured-logged and
counted.

Every stage updates the shared :class:`MetricsRegistry`; nothing in this
module sleeps or reads wall-clock time except through the injectable
``perf_clock`` (so tests can fake latency deterministically).
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from ..baselines.landmarc import LandmarcEstimator
from ..core.config import VIREConfig
from ..core.estimator import VIREEstimator
from ..core.quorum import QuorumPolicy
from ..engine import EngineConfig
from ..engine.batch import BatchEngine, BatchLandmarc, Outcome
from ..engine.sharding import compute_shards
from ..exceptions import (
    ConfigurationError,
    EstimationError,
    ReadingError,
    ReproError,
)
from ..calibration import CalibrationPolicy, DriftCorrector
from ..geometry.grid import ReferenceGrid
from ..hardware.middleware import MiddlewareServer
from ..obs import current_tracer
from ..runtime.policy import RuntimePolicy
from ..runtime.supervisor import run_shard_with_salvage
from ..types import TrackingReading
from .batcher import Batch, LocalizationRequest, MicroBatcher
from .cache import InterpolationCache
from .health import BreakerPolicy, ReaderHealthTracker
from .ingest import BoundedRecordQueue, IngestionLoop
from .metrics import MetricsRegistry, get_service_logger, log_event

__all__ = ["ServiceConfig", "ServiceResult", "ServicePipeline"]


@dataclass(frozen=True)
class ServiceConfig:
    """All knobs of the streaming localization service.

    Parameters
    ----------
    queue_capacity:
        Bound of the ingestion queue.
    queue_overflow:
        Overflow policy of the ingestion queue: ``"drop_oldest"``
        (default — stalest record shed, perishable-stream stance) or
        ``"shed_newest"`` (incoming record refused, admission-control
        stance). See :data:`~repro.service.ingest.OVERFLOW_POLICIES`.
    max_batch_size / max_latency_s:
        Micro-batcher flush triggers (see :class:`MicroBatcher`).
    max_batches_per_tick:
        Executor capacity: how many batches one :meth:`process_due`
        call may execute (``None`` = unbounded, the historical
        behaviour). The load-test harness sets this to model a finite
        estimator budget per tick, so sustained overload surfaces as
        growing sim-clock queue wait and deadline ladder descent
        instead of being absorbed by an implicitly infinite executor.
    request_deadline_s:
        Per-request deadline, in service-clock seconds from submission;
        requests older than this at execution time degrade to LANDMARC.
        ``None`` disables deadline degradation.
    query_interval_s:
        How often the session submits a localization query per tracking
        tag.
    stream_step_s:
        Simulation-time granularity of the record stream.
    cache_enabled / cache_max_entries / cache_quantization_db:
        Interpolation cache wiring (see :class:`InterpolationCache`).
    vire:
        Algorithm configuration of the primary estimator. Its
        ``empty_fallback`` is forced to ``"error"`` internally — the
        *pipeline* owns degradation, so an empty intersection is always
        recorded as a degraded result rather than silently relaxed.
    allow_partial:
        Serve from *partial* middleware snapshots when complete ones are
        unavailable (degraded deployments). When every series is fresh a
        partial snapshot equals the strict one, so healthy runs are
        unaffected. ``False`` restores the strict-only pre-faults
        behaviour (any gap ⇒ last-known).
    quorum_min_readers / quorum_min_reference_coverage:
        The estimator's :class:`~repro.core.quorum.QuorumPolicy` for
        masked readings (see that class).
    breaker_failure_threshold / breaker_recovery_timeout_s:
        Per-reader circuit-breaker tuning (see
        :class:`~repro.service.health.BreakerPolicy`).
    calibration:
        Optional :class:`~repro.calibration.CalibrationPolicy` enabling
        the self-healing calibration loop: per-reader drift corrections
        estimated online from reference-tag residuals and applied to
        every snapshot before estimation, plus a reference-tag
        quarantine state machine excising anomalous tags from the
        interpolation lattice (docs/CALIBRATION.md). ``None`` (the
        default) disables the loop entirely — the pipeline is then
        bit-identical to a build without it.
    health_freshness_floor:
        Per-reader middleware freshness below which a batch counts as a
        breaker failure for that reader.
    engine:
        :class:`~repro.engine.EngineConfig` scheduling the batch
        estimation passes. On the serving path only ``shard_size``
        applies (it bounds the per-pass tensor size — memory control for
        huge micro-batches); ``n_jobs`` is for multi-snapshot sweeps and
        is ignored here because the in-process middleware and estimators
        are not picklable. Whatever the knobs, answers are bitwise
        identical to serving requests one by one.
    runtime:
        :class:`~repro.runtime.policy.RuntimePolicy` of the serving
        path. With ``supervised=True`` each engine pass is *salvaged*:
        an unexpected shard failure is retried item by item and the
        items that still fail degrade through the ladder (an
        :class:`~repro.exceptions.EstimationError` is a refusal, never
        a crash of the whole batch). ``checkpoint_interval_s`` paces the
        session's write-ahead snapshots when a checkpoint is attached.
        The default policy is unsupervised — behaviour is bit-identical
        to the pre-runtime service.
    """

    queue_capacity: int = 4096
    queue_overflow: str = "drop_oldest"
    max_batch_size: int = 8
    max_latency_s: float = 1.0
    max_batches_per_tick: int | None = None
    request_deadline_s: float | None = 5.0
    query_interval_s: float = 2.0
    stream_step_s: float = 0.5
    cache_enabled: bool = True
    cache_max_entries: int = 256
    cache_quantization_db: float = 0.0
    vire: VIREConfig = field(
        default_factory=lambda: VIREConfig(target_total_tags=900)
    )
    allow_partial: bool = True
    quorum_min_readers: int = 2
    quorum_min_reference_coverage: float = 0.5
    breaker_failure_threshold: int = 3
    breaker_recovery_timeout_s: float = 10.0
    health_freshness_floor: float = 0.5
    calibration: CalibrationPolicy | None = None
    engine: EngineConfig = field(default_factory=EngineConfig)
    runtime: RuntimePolicy = field(default_factory=RuntimePolicy)

    def __post_init__(self) -> None:
        if not isinstance(self.runtime, RuntimePolicy):
            raise ConfigurationError(
                f"runtime must be a RuntimePolicy, "
                f"got {type(self.runtime).__name__}"
            )
        if self.request_deadline_s is not None and self.request_deadline_s <= 0:
            raise ConfigurationError(
                f"request_deadline_s must be positive or None, "
                f"got {self.request_deadline_s}"
            )
        if self.query_interval_s <= 0:
            raise ConfigurationError(
                f"query_interval_s must be positive, got {self.query_interval_s}"
            )
        if (
            self.max_batches_per_tick is not None
            and self.max_batches_per_tick < 1
        ):
            raise ConfigurationError(
                f"max_batches_per_tick must be >= 1 or None, "
                f"got {self.max_batches_per_tick}"
            )
        if self.stream_step_s <= 0:
            raise ConfigurationError(
                f"stream_step_s must be positive, got {self.stream_step_s}"
            )
        if not (0.0 < self.health_freshness_floor <= 1.0):
            raise ConfigurationError(
                f"health_freshness_floor must be in (0, 1], "
                f"got {self.health_freshness_floor}"
            )
        if self.calibration is not None and not isinstance(
            self.calibration, CalibrationPolicy
        ):
            raise ConfigurationError(
                f"calibration must be a CalibrationPolicy or None, "
                f"got {type(self.calibration).__name__}"
            )
        # Remaining fields are validated by the components they configure
        # (QuorumPolicy, BreakerPolicy, the queue, the batcher, ...).

    def with_(self, **changes) -> "ServiceConfig":
        """Modified copy (thin wrapper over dataclasses.replace)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ServiceResult:
    """One served localization answer.

    ``degraded`` results are still answers — the position comes from the
    LANDMARC fallback (or the last known estimate); ``reason`` says why
    the primary path was not used.
    """

    tag_id: str
    position: tuple[float, float]
    estimator: str
    degraded: bool
    reason: str | None
    requested_at_s: float
    completed_at_s: float
    processing_latency_s: float
    diagnostics: Mapping[str, Any] = field(default_factory=dict)

    @property
    def queue_wait_s(self) -> float:
        """Service-clock time spent waiting between submit and execute."""
        return self.completed_at_s - self.requested_at_s


class ServicePipeline:
    """Orchestrates ingest → batch → estimate with graceful degradation.

    Parameters
    ----------
    grid:
        The real reference grid of the deployment being served.
    middleware:
        The middleware the ingestion loop fills and snapshots come from.
    config:
        Service knobs.
    metrics:
        Optional shared registry; created on demand.
    perf_clock:
        Monotonic wall-clock used for processing-latency measurement
        (injectable for deterministic tests).
    """

    def __init__(
        self,
        grid: ReferenceGrid,
        middleware: MiddlewareServer,
        config: ServiceConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        perf_clock: Callable[[], float] = time.perf_counter,
    ):
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        self.middleware = middleware
        self._perf_clock = perf_clock
        self._logger = get_service_logger()

        self.cache: InterpolationCache | None = None
        if self.config.cache_enabled:
            self.cache = InterpolationCache(
                max_entries=self.config.cache_max_entries,
                quantization_db=self.config.cache_quantization_db,
            )
        self.vire = VIREEstimator(
            grid,
            self.config.vire.with_(empty_fallback="error"),
            interpolation_cache=self.cache,
            quorum=QuorumPolicy(
                min_readers=self.config.quorum_min_readers,
                min_reference_coverage=self.config.quorum_min_reference_coverage,
            ),
        )
        self.fallback = LandmarcEstimator()
        self._batch_fallback = BatchLandmarc(self.fallback)
        # The engine the micro-batcher routes through. Exact precision
        # uses the estimator's own lazy engine (the grouped path); the
        # relaxed tier substitutes the opt-in float32 engine behind the
        # same seam (the LANDMARC fallback stays exact — ladder
        # decisions must not move with the tier).
        self._batch_vire = (
            None
            if self.config.engine.precision == "exact"
            else BatchEngine(
                self.vire, precision=self.config.engine.precision
            )
        )
        self.health = ReaderHealthTracker(
            list(middleware.reader_ids),
            policy=BreakerPolicy(
                failure_threshold=self.config.breaker_failure_threshold,
                recovery_timeout_s=self.config.breaker_recovery_timeout_s,
            ),
            freshness_floor=self.config.health_freshness_floor,
            metrics=self.metrics,
        )
        self.calibration: DriftCorrector | None = None
        if self.config.calibration is not None:
            self.calibration = DriftCorrector(
                middleware.reader_ids,
                middleware.reference_ids,
                self.config.calibration,
                metrics=self.metrics,
            )
        self.queue = BoundedRecordQueue(
            self.config.queue_capacity, overflow=self.config.queue_overflow
        )
        self.ingest = IngestionLoop(self.queue, middleware, metrics=self.metrics)
        self.batcher = MicroBatcher(
            self.config.max_batch_size,
            self.config.max_latency_s,
            metrics=self.metrics,
        )

        m = self.metrics
        self._c_requests = m.counter(
            "service_requests_total", "Localization requests accepted"
        )
        self._c_results = m.counter(
            "service_results_total", "Localization results served"
        )
        self._c_degraded = m.counter(
            "service_degraded_total", "Results served by a degraded path"
        )
        self._c_degraded_reason = {
            reason: m.counter(
                f"service_degraded_{reason}_total",
                f"Results degraded because of {reason}",
            )
            for reason in (
                "empty_intersection",
                "deadline",
                "no_reading",
                "partial_readers",
                "quorum_unmet",
            )
        }
        self._c_frames_received = m.counter(
            "service_frames_received_total",
            "Reader frames received across all readers",
        )
        self._c_frames_dropped = m.counter(
            "service_frames_dropped_total",
            "Reader frames dropped at the detection floor",
        )
        self._c_frames_per_reader: dict[str, Any] = {}
        self._c_failed = m.counter(
            "service_requests_failed_total",
            "Requests with no answer at all (no reading, no last estimate)",
        )
        self._h_latency = m.histogram(
            "service_localization_latency_seconds",
            "Wall-clock estimator processing latency per request",
        )
        self._g_cache_hit_ratio = m.gauge(
            "service_cache_hit_ratio", "Interpolation cache hit fraction"
        )
        self._c_cache_hits = m.counter(
            "service_cache_hits_total", "Interpolation cache hits"
        )
        self._c_cache_misses = m.counter(
            "service_cache_misses_total", "Interpolation cache misses"
        )
        self._last_estimate: dict[str, tuple[float, float]] = {}
        self._results: list[ServiceResult] = []
        self._replaying = False

    # -- request intake ------------------------------------------------------

    def submit_request(self, tag_id: str, now_s: float) -> LocalizationRequest:
        """Accept one localization query at service-clock time ``now_s``."""
        deadline = None
        if self.config.request_deadline_s is not None:
            deadline = now_s + self.config.request_deadline_s
        request = LocalizationRequest(
            tag_id=str(tag_id), enqueued_at_s=float(now_s), deadline_s=deadline
        )
        self.batcher.submit(request)
        self._c_requests.inc()
        return request

    # -- calibration loop ----------------------------------------------------

    def arm_calibration(self, now_s: float) -> None:
        """Capture the corrector's clean baseline (end of warm-up).

        Sessions call this after warm-up completes and *before* the
        fault injector attaches, so the baseline is trustworthy by
        construction. A no-op when the loop is disabled. Runs on resumed
        sessions too — warm-up is replayed identically, so the baseline
        (and everything the corrector derives from it) reconstructs
        bit-exactly.
        """
        if self.calibration is None:
            return
        with current_tracer().span("calibration.arm") as sp:
            self.calibration.arm(
                self.middleware.reference_matrix(now_s), now_s
            )
            sp.set("t", float(now_s))
            sp.set("references", len(self.calibration.reference_ids))

    def _observe_calibration(self, now_s: float) -> None:
        """One residual-window tick; runs in live *and* replay batches."""
        if self.calibration is None or not self.calibration.armed:
            return
        with current_tracer().span("calibration.observe") as sp:
            self.calibration.observe(
                self.middleware.reference_matrix(now_s), now_s
            )
            excised = self.calibration.excised_tags()
            sp.set("quarantined", len(excised))
            if excised:
                sp.set("excised_tags", list(excised))

    # -- batch execution -----------------------------------------------------

    def process_due(
        self, now_s: float, max_batches: int | None = None
    ) -> list[ServiceResult]:
        """Execute every batch due at ``now_s``; returns their results.

        ``max_batches`` caps the executor's work for this tick; when
        omitted the config's ``max_batches_per_tick`` applies (default
        unbounded). See :meth:`MicroBatcher.poll`.
        """
        limit = (
            max_batches
            if max_batches is not None
            else self.config.max_batches_per_tick
        )
        results: list[ServiceResult] = []
        for batch in self.batcher.poll(now_s, max_batches=limit):
            results.extend(self._execute_batch(batch, now_s))
        return results

    def drain(self, now_s: float) -> list[ServiceResult]:
        """Flush and execute everything still pending (shutdown)."""
        results: list[ServiceResult] = []
        for batch in self.batcher.drain(now_s):
            results.extend(self._execute_batch(batch, now_s))
        return results

    def _execute_batch(self, batch: Batch, now_s: float) -> list[ServiceResult]:
        tracer = current_tracer()
        cache_hits0 = self.cache.hits if self.cache else 0
        cache_misses0 = self.cache.misses if self.cache else 0
        with tracer.span(
            "service.batch",
            batch_size=len(batch),
            replay=bool(self._replaying),
        ) as bsp:
            # Records buffered in the ingest queue become visible to every
            # request in the batch at once — one delivery per batch is what
            # batching buys on the middleware side. With the middleware state
            # frozen for the whole batch, snapshot(tag, now_s) is a pure
            # function of the tag, so duplicate-tag requests (bursty load,
            # several clients asking about one popular tag) share a single
            # snapshot assembly.
            with tracer.span("service.ingest") as isp:
                delivered = self.ingest.deliver_pending()
                isp.set("delivered", int(delivered or 0))

            if self._replaying:
                # Checkpoint replay: drive exactly the *stateful inputs* a
                # live batch would have driven — record delivery (queue
                # drops, middleware series) and the health tracker (breaker
                # transitions) — but skip estimation and serving; the served
                # results up to the cut were restored from the checkpoint.
                # Every input here is a pure function of the seeded stream,
                # so the reconstructed state is bit-identical to the state
                # of the crashed run at the snapshot cut.
                self.health.observe(
                    self.middleware.reader_freshness(now_s), now_s
                )
                self.health.allowed_readers(now_s)
                # The corrector is replay-reconstructed state too: its
                # residual window, bias estimates and quarantine
                # machines are pure functions of the stream.
                self._observe_calibration(now_s)
                return []

            # Health first: with the middleware state frozen for the batch,
            # one freshness observation per batch drives the breakers, and
            # open readers are excluded from every snapshot in the batch.
            self.health.observe(self.middleware.reader_freshness(now_s), now_s)
            allowed = set(self.health.allowed_readers(now_s))
            blocked = frozenset(self.middleware.reader_ids) - allowed
            if blocked:
                bsp.set("blocked_readers", sorted(str(r) for r in blocked))
            self._observe_calibration(now_s)

            snapshots: dict[str, Any] = {}
            allow_partial = self.config.allow_partial
            corrected_tags: set[str] = set()

            def fetch(tag_id: str):
                if tag_id not in snapshots:
                    try:
                        reading = self.middleware.snapshot(
                            tag_id, now_s, allow_partial=allow_partial
                        )
                        if allow_partial and blocked:
                            reading = self._exclude_readers(reading, blocked)
                        if reading is not None and self.calibration is not None:
                            corrected = self.calibration.correct_reading(
                                reading
                            )
                            if corrected is not reading:
                                corrected_tags.add(tag_id)
                            reading = corrected
                        snapshots[tag_id] = reading
                    except ReadingError:
                        snapshots[tag_id] = None
                return snapshots[tag_id]

            # The whole batch is localized in two vectorized passes through
            # the batch engine — one primary VIRE pass, then one LANDMARC
            # pass over exactly the requests the scalar ladder would have
            # sent there (past-deadline requests and VIRE refusals). Answers
            # are bitwise identical to serving requests one at a time; only
            # the wall-clock cost is amortized. Pass latency is attributed
            # evenly across the participating requests so the per-request
            # histogram keeps measuring real work.
            requests = list(batch)
            with tracer.span("service.snapshot") as ssp:
                readings = [fetch(r.tag_id) for r in requests]
                ssp.set("unique_tags", len(snapshots))
                ssp.set(
                    "missing", sum(1 for r in readings if r is None)
                )

            primary: list[int] = []
            deadline_first: list[int] = []
            for i, (request, reading) in enumerate(zip(requests, readings)):
                if reading is None:
                    continue
                past = (
                    request.deadline_s is not None
                    and now_s > request.deadline_s
                )
                (deadline_first if past else primary).append(i)

            vire_outcomes: dict[int, Outcome] = {}
            vire_share = 0.0
            if primary:
                with tracer.span(
                    "service.vire_pass", n_requests=len(primary)
                ):
                    t0 = self._perf_clock()
                    vire_engine = (
                        self.vire
                        if self._batch_vire is None
                        else self._batch_vire
                    )
                    outs = self._sharded_outcomes(
                        vire_engine.estimate_outcomes,
                        [readings[i] for i in primary],
                    )
                    vire_share = (self._perf_clock() - t0) / len(primary)
                    vire_outcomes = dict(zip(primary, outs))

            needs_fallback = deadline_first + [
                i for i in primary
                if isinstance(vire_outcomes[i], EstimationError)
            ]
            lm_outcomes: dict[int, Outcome] = {}
            lm_share = 0.0
            if needs_fallback:
                with tracer.span(
                    "service.landmarc_pass", n_requests=len(needs_fallback)
                ):
                    t0 = self._perf_clock()
                    outs = self._sharded_outcomes(
                        self._batch_fallback.estimate_outcomes,
                        [readings[i] for i in needs_fallback],
                    )
                    lm_share = (
                        self._perf_clock() - t0
                    ) / len(needs_fallback)
                    lm_outcomes = dict(zip(needs_fallback, outs))

            results = []
            for i, request in enumerate(requests):
                share = (vire_share if i in vire_outcomes else 0.0) + (
                    lm_share if i in lm_outcomes else 0.0
                )
                result = self._serve_one(
                    request,
                    now_s,
                    readings[i],
                    vire_outcomes.get(i),
                    lm_outcomes.get(i),
                    share,
                )
                if result is not None:
                    results.append(result)
            self._sync_cache_metrics()
            self._sync_frame_metrics()
            if corrected_tags:
                # Ladder annotation: which answers in this batch were
                # served from calibration-corrected (or quarantine-
                # excised) snapshots. The ladder levels themselves are
                # untouched — correction happens *before* the ladder.
                bsp.set("calibration_corrected_tags", sorted(corrected_tags))
            if self.cache is not None:
                # Per-batch cache deltas: the trace-summary ladder
                # breakdown sums these (deterministic under seeded runs).
                bsp.set("cache_hits", int(self.cache.hits - cache_hits0))
                bsp.set(
                    "cache_misses", int(self.cache.misses - cache_misses0)
                )
            return results

    def _sharded_outcomes(self, fn, readings: list) -> list[Outcome]:
        """Run one engine pass, split into ``engine.shard_size`` shards.

        Sharding only bounds the tensor size of each pass (memory
        control); results are identical however the batch is split.

        Under a supervised :class:`~repro.runtime.policy.RuntimePolicy`
        each shard is *salvaged*: an unexpected failure of the whole
        shard is retried item by item in-process, and an item that still
        fails is substituted with an :class:`EstimationError` — which the
        degradation ladder treats as a per-request refusal. A bug (or
        resource fault) in one estimator pass therefore degrades one
        answer, never the batch.
        """
        out: list[Outcome] = []
        supervised = self.config.runtime.supervised
        for shard in compute_shards(len(readings), self.config.engine):
            shard_readings = [readings[i] for i in shard]
            if supervised:
                out.extend(
                    run_shard_with_salvage(
                        fn,
                        shard_readings,
                        error_factory=lambda item, exc: EstimationError(
                            f"engine pass failed: "
                            f"{type(exc).__name__}: {exc}"
                        ),
                        metrics=self.metrics,
                    )
                )
            else:
                out.extend(fn(shard_readings))
        return out

    @staticmethod
    def _exclude_readers(
        reading: TrackingReading, blocked: frozenset
    ) -> TrackingReading | None:
        """Drop open-breaker readers from a (partial) snapshot.

        Returns ``None`` when no trusted reader remains — the caller
        then falls to the last-known level of the ladder. The trimmed
        reading is forced ``masked=True`` so the estimator routes it
        through the quorum, even when the surviving rows are finite.
        """
        if reading.reader_ids is None:
            return reading
        keep = [
            i for i, rid in enumerate(reading.reader_ids) if rid not in blocked
        ]
        if len(keep) == len(reading.reader_ids):
            return reading
        if not keep:
            return None
        return replace(reading.subset_readers(keep), masked=True)

    def _serve_one(
        self,
        request: LocalizationRequest,
        now_s: float,
        reading: Any,
        vire_outcome: Outcome | None,
        lm_outcome: Outcome | None,
        batch_share_s: float = 0.0,
    ) -> ServiceResult | None:
        """Assemble one answer from the precomputed batch outcomes.

        The degradation ladder is decided here exactly as it was when the
        estimators ran inline; the heavy passes simply happened earlier,
        vectorized over the whole batch. ``vire_outcome``/``lm_outcome``
        are the per-reading results (or the errors the scalar calls would
        have raised); ``batch_share_s`` is this request's even share of
        the batched passes' wall-clock, folded into its latency.

        Every serve decision is traced as one ``service.serve`` span with
        the ladder outcome as attributes (``level``/``reason``/
        ``estimator``/``degraded`` — or ``failed`` when even level 4 has
        nothing). ``repro trace summary`` aggregates exactly these.
        """
        with current_tracer().span(
            "service.serve", tag=request.tag_id
        ) as span:
            return self._serve_one_traced(
                span, request, now_s, reading,
                vire_outcome, lm_outcome, batch_share_s,
            )

    def _serve_one_traced(
        self,
        span,
        request: LocalizationRequest,
        now_s: float,
        reading: Any,
        vire_outcome: Outcome | None,
        lm_outcome: Outcome | None,
        batch_share_s: float,
    ) -> ServiceResult | None:
        t0 = self._perf_clock()
        estimator_name = self.vire.name
        degraded = False
        reason: str | None = None
        diagnostics: Mapping[str, Any] = {}
        position: tuple[float, float] | None = None

        past_deadline = (
            request.deadline_s is not None and now_s > request.deadline_s
        )

        def consume(outcome: Outcome | None):
            # An EstimationError means "this ladder level refused" (the
            # scalar path caught exactly that); any other ReproError is a
            # real fault the scalar path would have propagated.
            if isinstance(outcome, EstimationError):
                return None
            if isinstance(outcome, ReproError):
                raise outcome
            return outcome

        if reading is None:
            position = self._last_estimate.get(request.tag_id)
            degraded, reason = True, "no_reading"
            estimator_name = "last-known"
            if position is None:
                self._c_failed.inc()
                span.update(failed=True, reason="no_reading")
                log_event(
                    self._logger, "request_failed",
                    tag=request.tag_id, t=now_s, reason="no_reading",
                )
                return None
        elif past_deadline:
            # Too late for the expensive path: serve the cheap estimate.
            base = consume(lm_outcome)
            if base is None:
                position = self._last_estimate.get(request.tag_id)
                degraded, reason = True, "no_reading"
                estimator_name = "last-known"
                if position is None:
                    self._c_failed.inc()
                    span.update(failed=True, reason="no_reading")
                    log_event(
                        self._logger, "request_failed",
                        tag=request.tag_id, t=now_s, reason="no_reading",
                    )
                    return None
            else:
                position = base.position
                degraded, reason = True, "deadline"
                estimator_name = self.fallback.name
                diagnostics = dict(base.diagnostics)
        else:
            # Ladder levels 1 and 2: full VIRE, or — for a masked
            # snapshot — VIRE on the quorum-surviving reader subset.
            est = consume(vire_outcome)
            if est is not None:
                position = est.position
                diagnostics = dict(est.diagnostics)
                if reading.masked:
                    degraded, reason = True, "partial_readers"
            else:
                # Level 3: NaN-aware LANDMARC. "empty_intersection" on a
                # healthy reading; "quorum_unmet" when the masked subset
                # was too thin for VIRE.
                fallback_reason = (
                    "quorum_unmet" if reading.masked else "empty_intersection"
                )
                base = consume(lm_outcome)
                if base is None:
                    # Level 4: not even LANDMARC can rank neighbours.
                    position = self._last_estimate.get(request.tag_id)
                    degraded, reason = True, "no_reading"
                    estimator_name = "last-known"
                    if position is None:
                        self._c_failed.inc()
                        span.update(failed=True, reason="no_reading")
                        log_event(
                            self._logger, "request_failed",
                            tag=request.tag_id, t=now_s, reason="no_reading",
                        )
                        return None
                else:
                    position = base.position
                    degraded, reason = True, fallback_reason
                    estimator_name = self.fallback.name
                    diagnostics = dict(base.diagnostics)

        if estimator_name == "last-known":
            level = 4
        elif estimator_name == self.fallback.name:
            level = 3
        elif degraded:
            level = 2
        else:
            level = 1
        span.update(level=level, estimator=estimator_name, degraded=degraded)
        if reason is not None:
            span.set("reason", reason)
        latency = self._perf_clock() - t0 + batch_share_s
        self._h_latency.observe(latency)
        self._c_results.inc()
        if degraded:
            self._c_degraded.inc()
            self._c_degraded_reason[reason].inc()
            log_event(
                self._logger, "request_degraded",
                tag=request.tag_id, t=now_s, reason=reason,
            )
        self._last_estimate[request.tag_id] = position
        result = ServiceResult(
            tag_id=request.tag_id,
            position=position,
            estimator=estimator_name,
            degraded=degraded,
            reason=reason,
            requested_at_s=request.enqueued_at_s,
            completed_at_s=now_s,
            processing_latency_s=latency,
            diagnostics=diagnostics,
        )
        self._results.append(result)
        return result

    def _sync_cache_metrics(self) -> None:
        if self.cache is None:
            return
        self._g_cache_hit_ratio.set(self.cache.hit_rate)
        # Counters mirror the cache's monotone totals.
        self._c_cache_hits.inc(self.cache.hits - self._c_cache_hits.value)
        self._c_cache_misses.inc(self.cache.misses - self._c_cache_misses.value)

    def _sync_frame_metrics(self) -> None:
        """Mirror per-reader frame accounting into the registry.

        Satellite of the faults work: readers already count frames
        received vs dropped at the detection floor; the middleware
        exposes them (:meth:`MiddlewareServer.frame_stats`) and the
        service republishes them as monotone counters — per reader and in
        total — so a chaos run's frame loss is visible next to the
        degradation counters. (These were once gauges holding cumulative
        counts; they are counters now, named ``*_total`` per convention.)
        """
        stats = self.middleware.frame_stats()
        if not stats:
            return
        total_received = 0
        total_dropped = 0
        for reader_id, st in stats.items():
            total_received += st["received"]
            total_dropped += st["dropped"]
            safe = re.sub(r"[^a-zA-Z0-9_:]", "_", str(reader_id))
            key_r = f"service_frames_received_{safe}_total"
            key_d = f"service_frames_dropped_{safe}_total"
            if key_r not in self._c_frames_per_reader:
                self._c_frames_per_reader[key_r] = self.metrics.counter(
                    key_r, f"Frames received by reader {reader_id}"
                )
                self._c_frames_per_reader[key_d] = self.metrics.counter(
                    key_d, f"Frames dropped by reader {reader_id}"
                )
            c_r = self._c_frames_per_reader[key_r]
            c_d = self._c_frames_per_reader[key_d]
            c_r.inc(float(st["received"]) - c_r.value)
            c_d.inc(float(st["dropped"]) - c_d.value)
        self._c_frames_received.inc(
            total_received - self._c_frames_received.value
        )
        self._c_frames_dropped.inc(total_dropped - self._c_frames_dropped.value)

    # -- checkpoint / replay -------------------------------------------------

    @property
    def replaying(self) -> bool:
        """Whether the pipeline is in checkpoint-replay mode."""
        return self._replaying

    def begin_replay(self) -> None:
        """Enter replay mode: ingest + health run, estimation is skipped.

        Used by session resume — ticks up to the checkpoint cut are
        replayed so the queue, middleware, breakers, batcher and fault
        counters converge to the crashed run's state, while the served
        results (already restored from the write-ahead log) are not
        recomputed.
        """
        self._replaying = True
        log_event(self._logger, "replay_begin")

    def end_replay(self) -> None:
        """Leave replay mode; subsequent batches estimate and serve."""
        self._replaying = False
        log_event(self._logger, "replay_end")

    def checkpoint_state(self) -> dict[str, Any]:
        """The pipeline state that must survive a crash.

        Only state *mutated by serving* is captured: the last-known
        estimates (level-4 ladder memory) and the serving counters.
        Everything else — queue contents, middleware series, breaker
        states, batcher counters, cache statistics — is a deterministic
        function of the seeded stream and is reconstructed by replay;
        the breaker states (and, when enabled, the calibration
        corrector's state) are still recorded so resume can *verify*
        the reconstruction (:meth:`verify_replay`).
        """
        state: dict[str, Any] = {
            "last_estimate": {
                tag: [float(p[0]), float(p[1])]
                for tag, p in sorted(self._last_estimate.items())
            },
            "counters": {
                "requests": self._c_requests.value,
                "results": self._c_results.value,
                "degraded": self._c_degraded.value,
                "failed": self._c_failed.value,
                **{
                    f"degraded_{reason}": counter.value
                    for reason, counter in self._c_degraded_reason.items()
                },
            },
            "breakers": {
                rid: {
                    "state": b.state,
                    "consecutive_failures": b.consecutive_failures,
                    "opened_at_s": b.opened_at_s,
                    "transitions": b.transitions,
                }
                for rid, b in sorted(self.health.breakers.items())
            },
        }
        if self.calibration is not None:
            # Replay-verified like the breakers; absent when the loop is
            # disabled so those checkpoints stay byte-identical to
            # pre-calibration builds.
            state["calibration"] = self.calibration.checkpoint_state()
        return state

    def restore_checkpoint_state(
        self,
        state: Mapping[str, Any],
        results: list[ServiceResult],
    ) -> None:
        """Restore the serving-side state from a checkpoint.

        ``results`` is the committed result log (decoded from the WAL);
        the counters restored here are exactly the ones ``_serve_one``
        increments. Counters owned by replayed components (requests,
        frames, batcher, queue, cache, faults) are **not** touched —
        replay reconstructs them, and force-setting the cache counters
        would fight :meth:`_sync_cache_metrics`'s delta mirroring.
        """
        self._results = list(results)
        self._last_estimate = {
            str(tag): (float(pos[0]), float(pos[1]))
            for tag, pos in state.get("last_estimate", {}).items()
        }
        counters = state.get("counters", {})
        self._c_results.inc(float(counters.get("results", 0)))
        self._c_degraded.inc(float(counters.get("degraded", 0)))
        self._c_failed.inc(float(counters.get("failed", 0)))
        for reason, counter in self._c_degraded_reason.items():
            counter.inc(float(counters.get(f"degraded_{reason}", 0)))
        log_event(
            self._logger, "checkpoint_restored",
            results=len(results),
            last_estimates=len(self._last_estimate),
        )

    def verify_replay(self, state: Mapping[str, Any]) -> None:
        """Check the replay-reconstructed state against the snapshot.

        Raises :class:`~repro.exceptions.CheckpointError` when the
        breaker states or the request counter reconstructed by replay
        disagree with what the crashed run checkpointed — the
        determinism contract of resume would be void.
        """
        from ..exceptions import CheckpointError

        expected = state.get("breakers", {})
        for rid, snap in expected.items():
            breaker = self.health.breakers.get(rid)
            if breaker is None:
                raise CheckpointError(
                    f"checkpointed breaker for unknown reader {rid!r}"
                )
            got = {
                "state": breaker.state,
                "consecutive_failures": breaker.consecutive_failures,
                "opened_at_s": breaker.opened_at_s,
                "transitions": breaker.transitions,
            }
            if got != dict(snap):
                raise CheckpointError(
                    f"replay diverged for reader {rid!r}: "
                    f"reconstructed {got}, checkpoint {dict(snap)}"
                )
        counters = state.get("counters", {})
        if "requests" in counters:
            got_requests = self._c_requests.value
            if got_requests != float(counters["requests"]):
                raise CheckpointError(
                    f"replay diverged on requests counter: reconstructed "
                    f"{got_requests}, checkpoint {counters['requests']}"
                )
        if "calibration" in state:
            from ..runtime.checkpoint import jsonable

            if self.calibration is None:
                raise CheckpointError(
                    "checkpoint was written with the calibration loop "
                    "enabled; this session has it disabled"
                )
            got_cal = jsonable(self.calibration.checkpoint_state())
            want_cal = jsonable(state["calibration"])
            if got_cal != want_cal:
                raise CheckpointError(
                    f"replay diverged on calibration state: reconstructed "
                    f"{got_cal}, checkpoint {want_cal}"
                )
        log_event(self._logger, "replay_verified")

    # -- zone handoff --------------------------------------------------------

    def last_estimate(self, tag_id: str) -> tuple[float, float] | None:
        """The tag's last served position (level-4 ladder memory), if any."""
        return self._last_estimate.get(str(tag_id))

    def transfer_last_estimate(
        self, tag_id: str, position: tuple[float, float]
    ) -> None:
        """Seed the level-4 ladder memory for ``tag_id`` from outside.

        Used by the zone gateway's handoff protocol: when a moving tag
        crosses a zone boundary, the receiving zone inherits the sending
        zone's last estimate (re-expressed in the receiver's frame) so a
        reading gap right after the crossing still answers from
        last-known instead of failing outright.
        """
        self._last_estimate[str(tag_id)] = (
            float(position[0]), float(position[1])
        )

    # -- reporting -----------------------------------------------------------

    @property
    def results(self) -> tuple[ServiceResult, ...]:
        """Every result served so far, in completion order."""
        return tuple(self._results)

    def calibration_events(self) -> tuple:
        """Quarantine/probation/readmit events (empty when disabled)."""
        if self.calibration is None:
            return ()
        return self.calibration.events

    def metrics_summary(self) -> dict[str, float]:
        """The headline numbers the ``serve`` command prints."""
        degraded = self._c_degraded.value
        served = self._c_results.value
        requests = self._c_requests.value
        summary = {
            "requests": requests,
            "results": served,
            "failed": self._c_failed.value,
            "degraded": degraded,
            "degraded_fraction": degraded / served if served else 0.0,
            "availability": served / requests if requests else 1.0,
            "degraded_partial_readers": self._c_degraded_reason[
                "partial_readers"
            ].value,
            "degraded_quorum_unmet": self._c_degraded_reason[
                "quorum_unmet"
            ].value,
            "breaker_transitions": float(self.health.transitions_total()),
            "open_readers": float(len(self.health.open_readers())),
            "frames_received": self._c_frames_received.value,
            "frames_dropped": self._c_frames_dropped.value,
            "batches_flushed": float(self.batcher.batches_flushed),
            "records_dropped": float(self.queue.dropped),
            "records_shed": float(self.queue.shed),
            "queue_high_watermark": float(self.queue.high_watermark),
            "cache_hit_rate": self.cache.hit_rate if self.cache else 0.0,
            "cache_hits": float(self.cache.hits) if self.cache else 0.0,
            "cache_misses": float(self.cache.misses) if self.cache else 0.0,
            "latency_p50_s": self._h_latency.quantile(0.50),
            "latency_p99_s": self._h_latency.quantile(0.99),
        }
        if self.calibration is not None:
            # calibration_* keys exist only when the loop is enabled —
            # a disabled pipeline's summary stays byte-identical to a
            # pre-calibration build's.
            summary.update(self.calibration.summary())
        return summary
