"""Per-reader health tracking with a circuit breaker (service layer).

The streaming pipeline needs to know which readers to *trust* before it
asks the middleware for a snapshot: a reader mid-outage still has stale
series in the middleware, and repeatedly attempting full-VIRE on stale
data wastes the tick deadline. Standard circuit-breaker mechanics:

* ``CLOSED`` — reader healthy; consecutive freshness failures count up.
* ``OPEN`` — after ``failure_threshold`` consecutive failures the
  breaker opens; the pipeline excludes the reader outright (no probe)
  until ``recovery_timeout_s`` of simulated time has passed.
* ``HALF_OPEN`` — after the timeout the next evaluation *probes* the
  reader: one success re-closes the breaker, one failure re-opens it
  (and restarts the timeout).

Time is the simulation clock passed in by the caller, never wall-clock,
so breaker transitions are exactly as deterministic as the fault plan
that causes them. Transitions are logged as structured events
(``breaker_open`` / ``breaker_half_open`` / ``breaker_close``) and
mirrored into the metrics registry when one is attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..exceptions import ConfigurationError
from ..utils.logging import get_structured_logger, log_event

if TYPE_CHECKING:  # avoid an import cycle at runtime (metrics is sibling)
    from .metrics import MetricsRegistry

__all__ = [
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "ReaderHealthTracker",
]

_LOGGER_NAME = "repro.service.health"


class BreakerState:
    """String constants for the breaker's three states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning knobs shared by all per-reader breakers.

    Parameters
    ----------
    failure_threshold:
        Consecutive freshness failures before the breaker opens.
    recovery_timeout_s:
        Simulated seconds an open breaker waits before allowing a
        half-open probe.
    """

    failure_threshold: int = 3
    recovery_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.recovery_timeout_s <= 0:
            raise ConfigurationError(
                f"recovery_timeout_s must be positive, got {self.recovery_timeout_s}"
            )


class CircuitBreaker:
    """One reader's breaker; driven by :class:`ReaderHealthTracker`."""

    def __init__(self, policy: BreakerPolicy):
        self.policy = policy
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_s: float | None = None
        self.transitions = 0

    def allows(self, now_s: float) -> bool:
        """Whether the reader may participate in the next estimate.

        An open breaker transitions to half-open (allowing one probe)
        once the recovery timeout has elapsed.
        """
        if self.state == BreakerState.OPEN:
            assert self.opened_at_s is not None
            if now_s - self.opened_at_s >= self.policy.recovery_timeout_s:
                self.state = BreakerState.HALF_OPEN
                self.transitions += 1
                return True
            return False
        return True

    def record_success(self) -> bool:
        """Register a fresh observation; returns True on a close transition."""
        closed = self.state == BreakerState.HALF_OPEN
        if closed:
            self.transitions += 1
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_s = None
        return closed

    def record_failure(self, now_s: float) -> bool:
        """Register a stale observation; returns True on an open transition."""
        if self.state == BreakerState.HALF_OPEN:
            # Failed probe: straight back to open, restart the timeout.
            self.state = BreakerState.OPEN
            self.opened_at_s = now_s
            self.transitions += 1
            return True
        self.consecutive_failures += 1
        if (
            self.state == BreakerState.CLOSED
            and self.consecutive_failures >= self.policy.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self.opened_at_s = now_s
            self.transitions += 1
            return True
        return False


class ReaderHealthTracker:
    """Tracks per-reader freshness and drives one breaker per reader.

    Parameters
    ----------
    reader_ids:
        The readers to track (middleware order).
    policy:
        Shared :class:`BreakerPolicy`.
    freshness_floor:
        Minimum fresh fraction (see
        :meth:`~repro.hardware.middleware.MiddlewareServer.reader_freshness`)
        counted as a healthy observation.
    metrics:
        Optional metrics registry; gauges ``service_reader_healthy`` (per
        reader, 1/0) and counter ``service_breaker_transitions_total``.
    """

    def __init__(
        self,
        reader_ids: list[str],
        *,
        policy: BreakerPolicy | None = None,
        freshness_floor: float = 0.5,
        metrics: "MetricsRegistry | None" = None,
    ):
        if not reader_ids:
            raise ConfigurationError("reader_ids must be non-empty")
        if not (0.0 < freshness_floor <= 1.0):
            raise ConfigurationError(
                f"freshness_floor must be in (0, 1], got {freshness_floor}"
            )
        self.policy = policy or BreakerPolicy()
        self.freshness_floor = float(freshness_floor)
        self.breakers: dict[str, CircuitBreaker] = {
            rid: CircuitBreaker(self.policy) for rid in reader_ids
        }
        self._logger = get_structured_logger(_LOGGER_NAME)
        self._metrics = metrics
        self._g_healthy = None
        self._c_transitions = None
        if metrics is not None:
            self._c_transitions = metrics.counter(
                "service_breaker_transitions_total",
                "Reader circuit-breaker state transitions",
            )

    # -- observation ---------------------------------------------------------

    def observe(self, freshness: Mapping[str, float], now_s: float) -> None:
        """Feed one freshness snapshot (reader_id -> fresh fraction).

        Readers missing from the mapping are treated as fully stale
        (freshness 0.0) — a reader that has vanished is the canonical
        failure.
        """
        for rid, breaker in self.breakers.items():
            value = float(freshness.get(rid, 0.0))
            before = breaker.state
            if value >= self.freshness_floor:
                transitioned = breaker.record_success()
                event = "breaker_close"
            else:
                transitioned = breaker.record_failure(now_s)
                event = "breaker_open"
            if transitioned:
                if self._c_transitions is not None:
                    self._c_transitions.inc()
                log_event(
                    self._logger,
                    event,
                    reader=rid,
                    t=now_s,
                    freshness=round(value, 4),
                    previous=before,
                )

    # -- queries -------------------------------------------------------------

    def allowed_readers(self, now_s: float) -> list[str]:
        """Readers whose breaker currently admits traffic (incl. probes).

        Calling this may flip open breakers to half-open (timeout
        elapsed), which is logged.
        """
        allowed = []
        for rid, breaker in self.breakers.items():
            before = breaker.state
            if breaker.allows(now_s):
                if before == BreakerState.OPEN:  # became half-open probe
                    if self._c_transitions is not None:
                        self._c_transitions.inc()
                    log_event(
                        self._logger,
                        "breaker_half_open",
                        reader=rid,
                        t=now_s,
                    )
                allowed.append(rid)
        return allowed

    def state(self) -> dict[str, str]:
        """Current breaker state per reader."""
        return {rid: b.state for rid, b in self.breakers.items()}

    def open_readers(self) -> list[str]:
        """Readers currently excluded (breaker open)."""
        return [
            rid
            for rid, b in self.breakers.items()
            if b.state == BreakerState.OPEN
        ]

    def transitions_total(self) -> int:
        """Total breaker transitions across all readers."""
        return sum(b.transitions for b in self.breakers.values())

    def __repr__(self) -> str:
        states = ", ".join(f"{rid}={b.state}" for rid, b in self.breakers.items())
        return f"ReaderHealthTracker({states})"
