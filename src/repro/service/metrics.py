"""Service metrics: counters, gauges, fixed-bucket latency histograms.

The streaming service is the first part of the codebase that runs as an
*online* system, so it is the first part that needs observability. This
module provides the three Prometheus primitive types the pipeline needs —
:class:`Counter`, :class:`Gauge` and :class:`Histogram` — collected in a
:class:`MetricsRegistry` that renders the standard text exposition format
(``# HELP`` / ``# TYPE`` / samples), plus a structured-logging hook so
every pipeline event can be traced as ``event=... key=value`` lines
through the stdlib :mod:`logging` machinery.

Design notes
------------
* Histograms keep both fixed cumulative buckets (for the exposition
  format) and the raw samples (for exact quantiles in reports and
  tests). At service scale — thousands of localizations per session —
  the raw samples are cheap; a production fork would drop them and read
  quantiles off the buckets — exactly what
  :meth:`Histogram.bucket_quantile` does (with within-bucket linear
  interpolation, so sparse tails do not snap to bucket upper bounds).
* Everything is synchronous and allocation-light; metrics are updated on
  the hot path of the pipeline.
* No global state: each pipeline owns its registry, so tests and
  benchmarks never interfere with each other.
"""

from __future__ import annotations

import bisect
import logging
import math
from typing import Iterable, Mapping, Sequence

from ..exceptions import ConfigurationError
from ..utils.logging import get_structured_logger, log_event

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "get_service_logger",
    "log_event",
]

#: Default latency buckets (seconds). Spans 0.1 ms .. 10 s, roughly
#: logarithmic — one VIRE estimate is a few ms of numpy, so the decade
#: around 1-100 ms carries the resolution.
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_METRIC_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _check_name(name: str) -> str:
    if not name or not set(name) <= _METRIC_NAME_OK or name[0].isdigit():
        raise ConfigurationError(f"invalid metric name {name!r}")
    return name


def _format_value(v: float) -> str:
    """Prometheus sample formatting: integers without trailing ``.0``."""
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    f = float(v)
    return str(int(f)) if f.is_integer() else repr(f)


class Counter:
    """Monotonically increasing count (requests served, cache hits, ...)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        self._value += amount

    def samples(self) -> list[tuple[str, float]]:
        return [(self.name, self._value)]

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value:g})"


class Gauge:
    """Point-in-time value (queue depth, cache size, ...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def samples(self) -> list[tuple[str, float]]:
        return [(self.name, self._value)]

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value:g})"


class Histogram:
    """Fixed-bucket histogram with exact quantiles from retained samples.

    Parameters
    ----------
    buckets:
        Strictly increasing upper bounds. A ``+Inf`` bucket is implicit.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ):
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram buckets must be strictly increasing, got {bounds}"
            )
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._samples: list[float] = []

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    def observe(self, value: float) -> None:
        v = float(value)
        if not math.isfinite(v):
            raise ConfigurationError(f"cannot observe non-finite value {value}")
        self._counts[bisect.bisect_left(self.buckets, v)] += 1
        self._sum += v
        self._samples.append(v)

    def quantile(self, q: float) -> float:
        """Exact quantile of the observed samples (nearest-rank).

        Returns ``nan`` when nothing has been observed.
        """
        if not (0.0 <= q <= 1.0):
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return math.nan
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def bucket_quantile(self, q: float) -> float:
        """Quantile estimated from the bucket counts alone.

        This is what a scrape-side ``histogram_quantile`` computes:
        find the bucket holding the ``q``-th observation and
        **linearly interpolate within it** (observations are assumed
        uniform inside a bucket). The interpolation matters for sparse
        buckets — a single sample in the (10 ms, 25 ms] bucket must not
        report p99 = 25 ms just because that is the bucket's upper
        bound.

        Returns ``nan`` when empty; observations in the ``+Inf``
        overflow bucket clamp to the highest finite bound (Prometheus
        convention — there is no upper edge to interpolate toward).
        """
        if not (0.0 <= q <= 1.0):
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            return math.nan
        rank = q * total
        cumulative = 0
        for i, n in enumerate(self._counts[:-1]):
            previous = cumulative
            cumulative += n
            if n and cumulative >= rank:
                upper = self.buckets[i]
                lower = self.buckets[i - 1] if i > 0 else min(0.0, upper)
                return lower + (upper - lower) * (rank - previous) / n
        return self.buckets[-1]

    def samples(self) -> list[tuple[str, float]]:
        out: list[tuple[str, float]] = []
        cumulative = 0
        for bound, n in zip(self.buckets, self._counts):
            cumulative += n
            out.append((f'{self.name}_bucket{{le="{_format_value(bound)}"}}',
                        float(cumulative)))
        out.append((f'{self.name}_bucket{{le="+Inf"}}', float(self.count)))
        out.append((f"{self.name}_sum", self._sum))
        out.append((f"{self.name}_count", float(self.count)))
        return out

    def __repr__(self) -> str:
        return f"Histogram({self.name}, count={self.count}, sum={self._sum:g})"


def _sanitize_zone(zone: str) -> str:
    """Zone identifiers become metric-name-safe label segments.

    Anything outside ``[a-zA-Z0-9_:]`` maps to ``_`` so a zone id like
    ``"floor-2/east"`` still yields a valid Prometheus name.
    """
    safe = "".join(c if c in _METRIC_NAME_OK else "_" for c in str(zone))
    if not safe:
        raise ConfigurationError(f"zone id {zone!r} sanitizes to nothing")
    return safe


class MetricsRegistry:
    """Owns a namespace of metrics and renders the text exposition.

    Metrics are created idempotently: asking twice for the same name
    returns the same object (with a type check), so pipeline components
    can each grab handles without coordinating construction order.

    ``zone`` widens the namespace to ``<namespace>_zone_<zone>`` so
    several zone workers co-resident in one process (or one merged
    exposition) can register the same logical metric without colliding:
    two zones' ``service_results_total`` render as
    ``repro_zone_a_service_results_total`` and
    ``repro_zone_b_service_results_total``.
    """

    def __init__(self, namespace: str = "repro", *, zone: str | None = None):
        base = _check_name(namespace) if namespace else ""
        self.zone = str(zone) if zone is not None else None
        if zone is not None:
            prefix = f"zone_{_sanitize_zone(zone)}"
            base = f"{base}_{prefix}" if base else prefix
        self.namespace = _check_name(base) if base else ""
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _full(self, name: str) -> str:
        """Apply the namespace prefix exactly once.

        Names that already carry the prefix (a component re-registering
        a metric it read back from the registry — e.g. on session
        resume) are left alone, so ``repro_repro_*`` duplicates cannot
        be minted.
        """
        if not self.namespace:
            return name
        if name.startswith(f"{self.namespace}_"):
            return name
        return f"{self.namespace}_{name}"

    def _get_or_make(self, cls, name: str, help: str, **kwargs):
        full = self._full(name)
        existing = self._metrics.get(full)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"metric {full!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(full, help, **kwargs)
        self._metrics[full] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_make(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_make(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> Histogram:
        return self._get_or_make(Histogram, name, help, buckets=buckets)

    def __iter__(self) -> Iterable[Counter | Gauge | Histogram]:
        return iter(self._metrics.values())

    def __contains__(self, name: str) -> bool:
        return self._full(name) in self._metrics or name in self._metrics

    def metrics(self) -> dict[str, "Counter | Gauge | Histogram"]:
        """Snapshot of every registered metric, keyed by full name."""
        return dict(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram:
        full = self._full(name)
        if full in self._metrics:
            return self._metrics[full]
        if name in self._metrics:
            return self._metrics[name]
        raise ConfigurationError(f"no metric named {name!r} registered")

    def render_prometheus(self) -> str:
        """The standard ``text/plain; version=0.0.4`` exposition."""
        lines: list[str] = []
        for metric in self._metrics.values():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample_name, value in metric.samples():
                lines.append(f"{sample_name} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict[str, float | Mapping[str, float]]:
        """Flat snapshot for JSON reports: histograms expose count/sum/p50/p99."""
        out: dict[str, float | Mapping[str, float]] = {}
        for metric in self._metrics.values():
            if isinstance(metric, Histogram):
                out[metric.name] = {
                    "count": float(metric.count),
                    "sum": metric.sum,
                    "p50": metric.quantile(0.50),
                    "p90": metric.quantile(0.90),
                    "p99": metric.quantile(0.99),
                }
            else:
                out[metric.name] = metric.value
        return out


# -- structured logging hook -------------------------------------------------
#
# The helpers themselves moved to :mod:`repro.utils.logging` so layers
# below the service (the fault-injection subsystem) can share the exact
# event discipline; this module keeps its historical exports.

_SERVICE_LOGGER_NAME = "repro.service"


def get_service_logger() -> logging.Logger:
    """The service's logger (``repro.service``), NullHandler'd by default.

    Library rule: never configure the root logger. Applications opt in
    with ``logging.basicConfig(level=logging.INFO)`` (or their own
    handlers) and immediately see the pipeline's structured events.
    """
    return get_structured_logger(_SERVICE_LOGGER_NAME)
