"""Content-keyed LRU cache for the virtual-grid interpolation step.

Interpolating one reader's reference-RSSI lattice onto the virtual grid
is the dominant per-estimate cost after elimination (O(N²) per reader,
repeated K times per localization). In a streaming deployment the
reference tags are *static* and deeply smoothed (§4.1), so consecutive
snapshots frequently carry identical — or nearly identical — reference
lattices per reader. ViFi (PAPERS.md) makes the same observation at the
fingerprint level: virtual reference maps are reusable across queries.

:class:`InterpolationCache` exploits this: the interpolated virtual
lattice is cached under a content key derived from the reader's
reference-RSSI vector, the interpolation scheme and the virtual-grid
geometry. Two keying modes:

* ``quantization_db = 0`` (exact): the key is the raw float64 bytes.
  A hit returns a result that is *bitwise identical* to recomputation.
* ``quantization_db > 0``: RSSI values are snapped to a grid of this
  resolution before keying, so snapshots whose reference readings moved
  less than the quantum collapse onto one entry. The returned surface
  then comes from the first lattice seen in the bucket — an approximation
  whose RSSI error is bounded by the quantum (the interpolators are
  convex combinations / bounded-gain maps of the inputs). Choose the
  quantum well below the channel's fading sigma and the approximation
  disappears into measurement noise.

The cache is injected into :class:`~repro.core.estimator.VIREEstimator`
(which only sees the small :class:`~repro.core.estimator.LatticeCache`
protocol — ``core`` never imports ``service``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.interpolation import GridInterpolator
    from ..core.virtual_grid import VirtualGrid

__all__ = ["InterpolationCache"]


class _Pending:
    """Placeholder occupying a cache slot until a batched compute lands.

    Batched lookups (:meth:`InterpolationCache.get_or_compute_many`)
    must reserve the entry at miss time so insertion order — and hence
    the LRU eviction sequence — matches the scalar call sequence
    exactly; the real surface replaces the placeholder in place once
    the vectorized compute returns (value replacement does not move an
    OrderedDict key).
    """

    __slots__ = ("uid",)

    def __init__(self, uid: int) -> None:
        self.uid = uid


class InterpolationCache:
    """Bounded LRU cache mapping reference lattices to virtual surfaces.

    Parameters
    ----------
    max_entries:
        Capacity; least-recently-used entries are evicted beyond it.
    quantization_db:
        Key quantization resolution in dB. ``0`` keys on exact bytes
        (hits are bitwise-identical to recomputation); positive values
        trade bounded approximation error for a higher hit rate on
        slowly-drifting reference readings.
    """

    def __init__(self, max_entries: int = 256, quantization_db: float = 0.0):
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        if quantization_db < 0:
            raise ConfigurationError(
                f"quantization_db must be >= 0, got {quantization_db}"
            )
        self.max_entries = int(max_entries)
        self.quantization_db = float(quantization_db)
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- keying --------------------------------------------------------------

    def _lattice_key(self, lattice: np.ndarray) -> bytes:
        arr = np.ascontiguousarray(lattice, dtype=np.float64)
        if self.quantization_db > 0.0:
            return np.rint(arr / self.quantization_db).astype(np.int64).tobytes()
        return arr.tobytes()

    @staticmethod
    def _grid_token(virtual_grid: "VirtualGrid", interpolator: "GridInterpolator") -> tuple:
        grid = virtual_grid.grid
        return (
            getattr(interpolator, "name", type(interpolator).__name__),
            virtual_grid.subdivisions,
            virtual_grid.shape,
            grid.rows,
            grid.cols,
            grid.spacing_x,
            grid.spacing_y,
            grid.origin,
        )

    # -- the cache operation -------------------------------------------------

    def get_or_compute(
        self,
        lattice: np.ndarray,
        virtual_grid: "VirtualGrid",
        interpolator: "GridInterpolator",
    ) -> np.ndarray:
        """Return the interpolated surface for ``lattice``, cached.

        This is the single entry point the estimator calls (it satisfies
        the ``LatticeCache`` protocol). The returned array is marked
        read-only; callers copy it into their own buffers.
        """
        key = (self._grid_token(virtual_grid, interpolator),
               lattice.shape, self._lattice_key(lattice))
        cached = self._entries.get(key)
        if cached is not None:
            self._hits += 1
            self._entries.move_to_end(key)
            return cached
        self._misses += 1
        surface = np.asarray(
            interpolator.interpolate(lattice, virtual_grid), dtype=np.float64
        )
        surface.setflags(write=False)
        self._entries[key] = surface
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1
        return surface

    def get_or_compute_many(
        self,
        segments,
        virtual_grid: "VirtualGrid",
        interpolator: "GridInterpolator",
        *,
        validate,
        compute_many,
    ) -> list:
        """Batched :meth:`get_or_compute` with scalar-exact accounting.

        ``segments`` is one list of lattices per reading, in reader
        order. Returns one entry per segment: the list of surfaces, or
        the error ``validate`` reported for the first failing lattice
        (the segment's remaining lookups are then skipped, exactly as
        the scalar loop stops that reading at the raise).

        The lookup sequence — hit/miss counts, LRU touch order, the
        eviction sequence, and which bucket a quantized key resolves to
        — is bitwise identical to calling :meth:`get_or_compute` per
        lattice in the same order. The only difference is *when* the
        missing surfaces are computed: all unique misses go to
        ``compute_many(lattices) -> surfaces`` in one call at the end,
        with :class:`_Pending` placeholders holding their cache slots
        (and their insertion order) in the interim.

        ``validate(lattice)`` must return the exception the scalar
        interpolation would raise for that lattice, or ``None``; it runs
        at miss time, *after* the miss is counted and *before* any store
        — matching the scalar path, where a failing interpolation counts
        its miss but never populates the cache.
        """
        grid_token = self._grid_token(virtual_grid, interpolator)
        unique: list[np.ndarray] = []
        results: list = [None] * len(segments)
        for s, lattices in enumerate(segments):
            refs: list = []
            error = None
            for lattice in lattices:
                key = (grid_token, lattice.shape, self._lattice_key(lattice))
                cached = self._entries.get(key)
                if cached is not None:
                    self._hits += 1
                    self._entries.move_to_end(key)
                    refs.append(cached)
                    continue
                self._misses += 1
                error = validate(lattice)
                if error is not None:
                    break
                # Every miss gets its own compute slot — a repeated key
                # can only miss again after its placeholder was evicted,
                # and there the scalar path recomputes from the *new*
                # lattice too (the distinction matters for quantized
                # buckets, where the new lattice may differ).
                uid = len(unique)
                unique.append(lattice)
                placeholder = _Pending(uid)
                self._entries[key] = placeholder
                if len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self._evictions += 1
                refs.append(placeholder)
            results[s] = error if error is not None else refs
        if unique:
            resolved = []
            for surface in compute_many(unique):
                arr = np.asarray(surface, dtype=np.float64)
                arr.setflags(write=False)
                resolved.append(arr)
            for key, value in self._entries.items():
                if isinstance(value, _Pending):
                    self._entries[key] = resolved[value.uid]
            for s, refs in enumerate(results):
                if isinstance(refs, list):
                    results[s] = [
                        resolved[r.uid] if isinstance(r, _Pending) else r
                        for r in refs
                    ]
        return results

    # -- accounting ----------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def lookups(self) -> int:
        return self._hits + self._misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction over all lookups (0.0 when never used)."""
        total = self.lookups
        return self._hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries (keeps the accounting counters)."""
        self._entries.clear()

    def stats(self) -> dict[str, float]:
        """Snapshot used by the pipeline's metrics mirror."""
        return {
            "hits": float(self._hits),
            "misses": float(self._misses),
            "evictions": float(self._evictions),
            "entries": float(len(self._entries)),
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"InterpolationCache(entries={len(self._entries)}/{self.max_entries}, "
            f"hits={self._hits}, misses={self._misses}, "
            f"q={self.quantization_db:g} dB)"
        )
