"""Real-time streaming localization service.

Turns the event-driven testbed into an online system: reader records
stream through a bounded ingestion queue into the middleware, pending
localization queries are micro-batched, the VIRE estimator runs behind a
content-keyed interpolation cache, and every request that cannot take
the primary path degrades gracefully down a four-level ladder
(full VIRE → VIRE on the quorum-surviving reader subset → LANDMARC →
last-known) instead of raising. Per-reader circuit breakers
(:mod:`~repro.service.health`) exclude readers the middleware reports
stale — e.g. mid-outage under an injected
:class:`~repro.faults.FaultPlan`. Counters, gauges and latency
histograms cover every stage, with a Prometheus-style text exposition.

Layering: ``service`` sits above ``core`` and ``hardware`` and is never
imported by them — the estimator only sees the tiny
:class:`~repro.core.estimator.LatticeCache` protocol.

Quickstart
----------
>>> from repro.service import LocalizationService, ServiceConfig
>>> report = LocalizationService(ServiceConfig(max_batch_size=4)).run(
...     "Env3", duration_s=10.0)
>>> report.summary["results"] > 0
True
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_LATENCY_BUCKETS_S,
    get_service_logger,
    log_event,
)
from .cache import InterpolationCache
from .health import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    ReaderHealthTracker,
)
from .ingest import BoundedRecordQueue, IngestionLoop
from .batcher import Batch, LocalizationRequest, MicroBatcher
from .pipeline import ServiceConfig, ServicePipeline, ServiceResult
from .session import (
    LocalizationService,
    SessionReport,
    result_from_doc,
    result_to_doc,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "get_service_logger",
    "log_event",
    "InterpolationCache",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "ReaderHealthTracker",
    "BoundedRecordQueue",
    "IngestionLoop",
    "Batch",
    "LocalizationRequest",
    "MicroBatcher",
    "ServiceConfig",
    "ServicePipeline",
    "ServiceResult",
    "LocalizationService",
    "SessionReport",
    "result_to_doc",
    "result_from_doc",
]
