"""Ingestion: bounded record queues with backpressure and drop-oldest.

The reader fleet produces a continuous stream of
:class:`~repro.hardware.readers.ReadingRecord`; the service must never
let a traffic burst (dense tag deployments beacon in near-synchronized
bursts) grow memory without bound or stall the estimator workers. The
ingestion stage therefore puts a *bounded* queue between the stream and
the middleware with a **drop-oldest** overflow policy: RSSI records are
perishable — the middleware's temporal smoothing means a fresh record is
strictly more valuable than a stale one — so under overload we shed the
oldest data first and count every drop.

Two layers:

* :class:`BoundedRecordQueue` — the synchronous core: ring-buffer
  semantics, overflow accounting, high-watermark tracking.
* :class:`IngestionLoop` — the asyncio pump: consumes an async record
  source (e.g. :meth:`SimulatorRecordStream.aiter_records`) into the
  queue, cooperatively yielding so the batcher/estimator stages
  interleave; delivery into the middleware happens in explicit
  :meth:`IngestionLoop.deliver_pending` calls so tests and the session
  facade control exactly when middleware state advances.
"""

from __future__ import annotations

from collections import deque
from typing import AsyncIterator, Iterable

from ..exceptions import ConfigurationError
from ..hardware.middleware import MiddlewareServer
from ..hardware.readers import ReadingRecord
from .metrics import MetricsRegistry, get_service_logger, log_event

__all__ = ["OVERFLOW_POLICIES", "BoundedRecordQueue", "IngestionLoop"]


#: Overflow policies of :class:`BoundedRecordQueue`. ``drop_oldest``
#: discards the stalest buffered record to admit the new one (counted in
#: :attr:`~BoundedRecordQueue.dropped`); ``shed_newest`` rejects the
#: *incoming* record instead (counted in
#: :attr:`~BoundedRecordQueue.shed`). Drop-oldest suits perishable RSSI
#: streams; shed-newest is the admission-control stance — once admitted,
#: work is never abandoned.
OVERFLOW_POLICIES = ("drop_oldest", "shed_newest")


class BoundedRecordQueue:
    """FIFO of reading records with a hard capacity and a named overflow policy.

    Parameters
    ----------
    capacity:
        Maximum number of buffered records.
    overflow:
        What to do when a record is offered to a full queue:
        ``"drop_oldest"`` (default) discards the oldest buffered record
        to make room; ``"shed_newest"`` refuses the incoming record.
        See :data:`OVERFLOW_POLICIES`.
    """

    def __init__(self, capacity: int = 4096, *, overflow: str = "drop_oldest"):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if overflow not in OVERFLOW_POLICIES:
            raise ConfigurationError(
                f"unknown overflow policy {overflow!r}; "
                f"expected one of {OVERFLOW_POLICIES}"
            )
        self.capacity = int(capacity)
        self.overflow = overflow
        self._items: deque[ReadingRecord] = deque()
        self._offered = 0
        self._dropped = 0
        self._shed = 0
        self._delivered = 0
        self._high_watermark = 0

    # -- producer side -------------------------------------------------------

    def offer(self, record: ReadingRecord) -> bool:
        """Enqueue ``record``; returns False when the offer overflowed.

        Under ``drop_oldest`` an overflow still admits ``record`` (the
        oldest buffered one is discarded); under ``shed_newest`` the
        overflow rejects ``record`` itself and the buffer is untouched.
        """
        self._offered += 1
        overflowed = len(self._items) >= self.capacity
        if overflowed:
            if self.overflow == "shed_newest":
                self._shed += 1
                return False
            self._items.popleft()
            self._dropped += 1
        self._items.append(record)
        if len(self._items) > self._high_watermark:
            self._high_watermark = len(self._items)
        return not overflowed

    def offer_many(self, records: Iterable[ReadingRecord]) -> int:
        """Offer a chunk; returns how many offers overflowed."""
        before = self._dropped + self._shed
        for record in records:
            self.offer(record)
        return (self._dropped + self._shed) - before

    # -- consumer side -------------------------------------------------------

    def drain(self, max_items: int | None = None) -> list[ReadingRecord]:
        """Dequeue up to ``max_items`` records (all pending by default)."""
        if max_items is not None and max_items < 0:
            raise ConfigurationError(
                f"max_items must be >= 0, got {max_items}"
            )
        n = len(self._items) if max_items is None else min(max_items, len(self._items))
        out = [self._items.popleft() for _ in range(n)]
        self._delivered += n
        return out

    # -- accounting ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    @property
    def offered(self) -> int:
        """Total records ever offered."""
        return self._offered

    @property
    def dropped(self) -> int:
        """Buffered records discarded by the drop-oldest overflow policy."""
        return self._dropped

    @property
    def shed(self) -> int:
        """Incoming records refused by the shed-newest overflow policy."""
        return self._shed

    @property
    def delivered(self) -> int:
        """Records drained by the consumer."""
        return self._delivered

    @property
    def high_watermark(self) -> int:
        """Deepest the queue has ever been."""
        return self._high_watermark

    def __repr__(self) -> str:
        return (
            f"BoundedRecordQueue(depth={len(self._items)}/{self.capacity}, "
            f"offered={self._offered}, dropped={self._dropped})"
        )


class IngestionLoop:
    """Pumps a record stream through a bounded queue into the middleware.

    Parameters
    ----------
    queue:
        The bounded buffer between producer and middleware.
    middleware:
        Destination of delivered records.
    metrics:
        Optional registry; the loop maintains
        ``ingest_records_offered/dropped/delivered_total`` counters and
        the ``ingest_queue_depth`` gauge.
    """

    def __init__(
        self,
        queue: BoundedRecordQueue,
        middleware: MiddlewareServer,
        *,
        metrics: MetricsRegistry | None = None,
    ):
        self.queue = queue
        self.middleware = middleware
        self._logger = get_service_logger()
        self._metrics = metrics
        if metrics is not None:
            self._c_offered = metrics.counter(
                "ingest_records_offered_total", "Records offered to the ingest queue"
            )
            self._c_dropped = metrics.counter(
                "ingest_records_dropped_total",
                "Buffered records discarded by the drop-oldest overflow policy",
            )
            self._c_shed = metrics.counter(
                "ingest_records_shed_total",
                "Incoming records refused by the shed-newest overflow policy",
            )
            self._c_delivered = metrics.counter(
                "ingest_records_delivered_total", "Records delivered to middleware"
            )
            self._g_depth = metrics.gauge(
                "ingest_queue_depth", "Current ingest queue depth"
            )

    # -- producer ------------------------------------------------------------

    def submit(self, records: Iterable[ReadingRecord]) -> int:
        """Offer a chunk of records; returns overflow drops/sheds caused."""
        records = list(records)
        dropped_before = self.queue.dropped
        shed_before = self.queue.shed
        overflows = self.queue.offer_many(records)
        if self._metrics is not None:
            self._c_offered.inc(len(records))
            dropped = self.queue.dropped - dropped_before
            shed = self.queue.shed - shed_before
            if dropped:
                self._c_dropped.inc(dropped)
            if shed:
                self._c_shed.inc(shed)
            self._g_depth.set(len(self.queue))
        if overflows:
            log_event(
                self._logger, "ingest_overflow",
                dropped=self.queue.dropped - dropped_before,
                shed=self.queue.shed - shed_before,
                depth=len(self.queue), capacity=self.queue.capacity,
            )
        return overflows

    async def run(self, source: AsyncIterator[ReadingRecord]) -> int:
        """Consume an async record source to exhaustion; returns count."""
        n = 0
        async for record in source:
            self.submit((record,))
            n += 1
        return n

    # -- consumer ------------------------------------------------------------

    def deliver_pending(self, max_items: int | None = None) -> int:
        """Drain queued records into the middleware; returns how many."""
        records = self.queue.drain(max_items)
        for record in records:
            self.middleware.ingest(record)
        if self._metrics is not None:
            self._c_delivered.inc(len(records))
            self._g_depth.set(len(self.queue))
        return len(records)
