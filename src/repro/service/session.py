"""Synchronous session facade over the streaming service.

:class:`LocalizationService` is what tests, benchmarks and the CLI call:
give it a :class:`~repro.experiments.scenarios.TestbedScenario` (or an
environment name) and a duration, and it builds the deployment, taps the
beacon stream, and drives the full asyncio pipeline to completion —
deterministically, because every clock involved is seeded: simulation
time doubles as the service clock, and the wall-clock used for latency
histograms is injectable.

Internally the session runs two cooperating asyncio tasks connected by a
bounded tick queue (backpressure included):

* the **producer** pulls record chunks off the simulator stream and
  offers them to the ingestion queue;
* the **dispatcher** wakes per tick, submits due localization queries to
  the micro-batcher, and executes due batches.

``asyncio.run`` hides all of that behind the synchronous
:meth:`LocalizationService.run`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from ..exceptions import SimulationError
from ..experiments.scenarios import TestbedScenario, paper_scenario
from ..hardware.deployment import Deployment, build_paper_deployment
from ..hardware.streams import SimulatorRecordStream
from ..types import estimation_error
from .metrics import MetricsRegistry, get_service_logger, log_event
from .pipeline import ServiceConfig, ServicePipeline, ServiceResult

if TYPE_CHECKING:  # runtime import is lazy (only when a plan is passed)
    from ..faults.plan import FaultPlan

__all__ = ["SessionReport", "LocalizationService"]


@dataclass(frozen=True)
class SessionReport:
    """Everything one streaming session produced.

    Attributes
    ----------
    results:
        Every served localization, in completion order.
    summary:
        The pipeline's headline numbers (cache hit rate, batches
        flushed, degraded count, latency quantiles, ...) plus session
        totals (duration, records streamed, throughput).
    metrics:
        The full registry, for Prometheus rendering or JSON dumps.
    errors_m:
        Per-result localization error in metres against the deployment's
        ground truth (same order as ``results``); empty when ground
        truth is unavailable for a tag.
    """

    results: tuple[ServiceResult, ...]
    summary: Mapping[str, float]
    metrics: MetricsRegistry
    errors_m: tuple[float, ...] = ()

    @property
    def mean_error_m(self) -> float:
        """Mean localization error over results with ground truth."""
        return sum(self.errors_m) / len(self.errors_m) if self.errors_m else float("nan")

    def render_prometheus(self) -> str:
        return self.metrics.render_prometheus()


class LocalizationService:
    """Drives the streaming pipeline over a seeded scenario.

    Parameters
    ----------
    config:
        Service knobs; defaults are sized for the paper's testbed.
    perf_clock:
        Monotonic clock used for latency measurement (injectable so a
        test can make latency deterministic).
    warmup_max_s:
        Cap on the reference-coverage warm-up phase before queries start.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        perf_clock: Callable[[], float] = time.perf_counter,
        warmup_max_s: float = 120.0,
    ):
        self.config = config or ServiceConfig()
        self._perf_clock = perf_clock
        self.warmup_max_s = float(warmup_max_s)
        self._logger = get_service_logger()

    # -- deployment assembly -------------------------------------------------

    def build_deployment(self, scenario: TestbedScenario) -> Deployment:
        """The event-driven testbed a session streams from."""
        tracking = {
            f"tag-{label}": pos for label, pos in scenario.tracking_tags.items()
        }
        return build_paper_deployment(
            scenario.environment,
            grid=scenario.grid,
            tracking_tags=tracking,
            seed=scenario.base_seed,
        )

    # -- the session ---------------------------------------------------------

    def run(
        self,
        scenario: TestbedScenario | str,
        duration_s: float,
        *,
        on_result: Callable[[ServiceResult], Any] | None = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> SessionReport:
        """Stream ``scenario`` for ``duration_s`` simulated seconds.

        ``scenario`` may be a full :class:`TestbedScenario` or an
        environment preset name (``"Env1"``/``"Env2"``/``"Env3"``).
        ``on_result`` fires synchronously per served result — the CLI's
        live table hook. ``fault_plan`` interposes a seeded
        :class:`~repro.faults.FaultInjector` on the simulator's record
        path *after* warm-up completes (warm-up cannot be starved by an
        injected outage; fault times are absolute simulation seconds);
        an empty plan is bit-identical to no plan at all. The injector's
        counters and fault-event trail are folded into the report
        summary.
        """
        if isinstance(scenario, str):
            scenario = paper_scenario(scenario, n_trials=1)
        deployment = self.build_deployment(scenario)
        simulator = deployment.simulator
        pipeline = ServicePipeline(
            deployment.grid,
            simulator.middleware,
            self.config,
            perf_clock=self._perf_clock,
        )
        injector = None
        if fault_plan is not None:
            from ..faults.injector import FaultInjector  # lazy: avoid cycle

            injector = FaultInjector(fault_plan, metrics=pipeline.metrics)
        tag_ids = sorted(f"tag-{label}" for label in scenario.tracking_tags)
        wall_start = self._perf_clock()

        with SimulatorRecordStream(
            simulator, step_s=self.config.stream_step_s
        ) as stream:
            self._warm_up(stream, pipeline)
            if injector is not None:
                simulator.set_fault_injector(injector)
            start_s = simulator.now
            log_event(
                self._logger, "session_start",
                tags=len(tag_ids), duration=duration_s, t=start_s,
                faults=len(fault_plan) if fault_plan is not None else 0,
            )
            asyncio.run(
                self._session(stream, pipeline, tag_ids, duration_s, on_result)
            )
            end_s = simulator.now
            for result in pipeline.drain(end_s):
                if on_result is not None:
                    on_result(result)

        wall_s = self._perf_clock() - wall_start
        summary = dict(pipeline.metrics_summary())
        summary["session_duration_s"] = end_s - start_s
        summary["records_streamed"] = float(stream.records_streamed)
        summary["wall_time_s"] = wall_s
        summary["localizations_per_s"] = (
            summary["results"] / wall_s if wall_s > 0 else float("inf")
        )
        if injector is not None:
            for key, value in injector.counters().items():
                summary[f"fault_records_{key}"] = float(value)
        errors = tuple(
            estimation_error(r.position, deployment.tracking_truth[r.tag_id])
            for r in pipeline.results
            if r.tag_id in deployment.tracking_truth
        )
        log_event(
            self._logger, "session_end",
            results=len(pipeline.results), wall_s=wall_s,
        )
        return SessionReport(
            results=pipeline.results,
            summary=summary,
            metrics=pipeline.metrics,
            errors_m=errors,
        )

    # -- internals -----------------------------------------------------------

    def _warm_up(
        self, stream: SimulatorRecordStream, pipeline: ServicePipeline
    ) -> float:
        """Stream until every reader covers the reference grid.

        Mirrors :meth:`TestbedSimulator.warm_up`, but routed through the
        service's own ingestion queue (the simulator's direct middleware
        path is disconnected while the stream taps the record sink).
        """
        simulator = stream.simulator
        deadline = simulator.now + self.warmup_max_s
        while simulator.now < deadline:
            records = stream.advance(min(2.0, deadline - simulator.now))
            pipeline.ingest.submit(records)
            pipeline.ingest.deliver_pending()
            coverage = pipeline.middleware.coverage(simulator.now)
            if all(c >= 1.0 for c in coverage.values()):
                return simulator.now
        raise SimulationError(
            f"reference coverage incomplete after {self.warmup_max_s}s of "
            f"warm-up: {pipeline.middleware.coverage(simulator.now)}"
        )

    async def _session(
        self,
        stream: SimulatorRecordStream,
        pipeline: ServicePipeline,
        tag_ids: list[str],
        duration_s: float,
        on_result: Callable[[ServiceResult], Any] | None,
    ) -> None:
        """Producer/dispatcher task pair around a bounded tick queue.

        Records travel *with* their tick rather than being offered to the
        ingestion queue by the producer: the producer may run several
        chunks of simulated time ahead of the dispatcher (up to the tick
        queue's bound), and offering early would let a batch executing at
        service time ``t`` observe readings stamped after ``t``. Keeping
        submission on the dispatcher side guarantees causality: the
        middleware never contains a record from the future.
        """
        ticks: asyncio.Queue[
            tuple[float, list] | None
        ] = asyncio.Queue(maxsize=8)
        next_query = {tag: stream.simulator.now for tag in tag_ids}
        interval = self.config.query_interval_s

        async def produce() -> None:
            for now_s, records in stream.iter_chunks(duration_s):
                await ticks.put((now_s, records))  # bounded: backpressure
            await ticks.put(None)

        async def dispatch() -> None:
            while True:
                tick = await ticks.get()
                if tick is None:
                    return
                now_s, records = tick
                pipeline.ingest.submit(records)
                for tag in tag_ids:
                    if now_s >= next_query[tag]:
                        pipeline.submit_request(tag, now_s)
                        next_query[tag] = now_s + interval
                for result in pipeline.process_due(now_s):
                    if on_result is not None:
                        on_result(result)

        await asyncio.gather(produce(), dispatch())
