"""Synchronous session facade over the streaming service.

:class:`LocalizationService` is what tests, benchmarks and the CLI call:
give it a :class:`~repro.experiments.scenarios.TestbedScenario` (or an
environment name) and a duration, and it builds the deployment, taps the
beacon stream, and drives the full asyncio pipeline to completion —
deterministically, because every clock involved is seeded: simulation
time doubles as the service clock, and the wall-clock used for latency
histograms is injectable.

Internally the session runs two cooperating asyncio tasks connected by a
bounded tick queue (backpressure included):

* the **producer** pulls record chunks off the simulator stream and
  offers them to the ingestion queue;
* the **dispatcher** wakes per tick, submits due localization queries to
  the micro-batcher, and executes due batches.

``asyncio.run`` hides all of that behind the synchronous
:meth:`LocalizationService.run`.
"""

from __future__ import annotations

import asyncio
import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from ..exceptions import CheckpointError, ConfigurationError, SimulationError
from ..experiments.scenarios import TestbedScenario, paper_scenario
from ..hardware.deployment import Deployment, build_paper_deployment
from ..hardware.streams import SimulatorRecordStream
from ..runtime.checkpoint import (
    CheckpointState,
    CheckpointWriter,
    jsonable,
    load_checkpoint,
    validate_header,
)
from ..obs import NULL_TRACER, Tracer, current_tracer, use_tracer
from ..types import estimation_error
from .metrics import MetricsRegistry, get_service_logger, log_event
from .pipeline import ServiceConfig, ServicePipeline, ServiceResult

if TYPE_CHECKING:  # runtime import is lazy (only when a plan is passed)
    from ..faults.crash import CrashPoint
    from ..faults.plan import FaultPlan

__all__ = [
    "SessionReport",
    "LocalizationService",
    "result_to_doc",
    "result_from_doc",
    "result_witness_entry",
]


def result_witness_entry(result: ServiceResult) -> dict[str, Any]:
    """One result's entry in a determinism witness document.

    Only the seed-deterministic fields: wall-clock latency and free-form
    diagnostics are excluded by design. Shared by
    :meth:`SessionReport.witness_document` and the zone gateway's
    interim-result witness
    (:meth:`~repro.zones.gateway.MultiZoneReport.witness_document`).
    """
    return {
        "tag_id": result.tag_id,
        "position": [float(result.position[0]), float(result.position[1])],
        "estimator": result.estimator,
        "degraded": bool(result.degraded),
        "reason": result.reason,
        "requested_at_s": float(result.requested_at_s),
        "completed_at_s": float(result.completed_at_s),
    }


def result_to_doc(result: ServiceResult) -> dict[str, Any]:
    """Serialize one :class:`ServiceResult` into a WAL result document."""
    return {
        "tag_id": result.tag_id,
        "position": [float(result.position[0]), float(result.position[1])],
        "estimator": result.estimator,
        "degraded": bool(result.degraded),
        "reason": result.reason,
        "requested_at_s": float(result.requested_at_s),
        "completed_at_s": float(result.completed_at_s),
        "processing_latency_s": float(result.processing_latency_s),
        "diagnostics": jsonable(dict(result.diagnostics)),
    }


def result_from_doc(doc: Mapping[str, Any]) -> ServiceResult:
    """Rebuild a :class:`ServiceResult` from a WAL result document.

    Deterministic fields round-trip exactly (JSON preserves float
    ``repr``); diagnostics come back as plain JSON types, which is why
    the determinism witness excludes them.
    """
    position = doc["position"]
    return ServiceResult(
        tag_id=str(doc["tag_id"]),
        position=(float(position[0]), float(position[1])),
        estimator=str(doc["estimator"]),
        degraded=bool(doc["degraded"]),
        reason=doc.get("reason"),
        requested_at_s=float(doc["requested_at_s"]),
        completed_at_s=float(doc["completed_at_s"]),
        processing_latency_s=float(doc["processing_latency_s"]),
        diagnostics=dict(doc.get("diagnostics") or {}),
    )


@dataclass(frozen=True)
class SessionReport:
    """Everything one streaming session produced.

    Attributes
    ----------
    results:
        Every served localization, in completion order.
    summary:
        The pipeline's headline numbers (cache hit rate, batches
        flushed, degraded count, latency quantiles, ...) plus session
        totals (duration, records streamed, throughput).
    metrics:
        The full registry, for Prometheus rendering or JSON dumps.
    errors_m:
        Per-result localization error in metres against the deployment's
        ground truth (same order as ``results``); empty when ground
        truth is unavailable for a tag.
    calibration_events:
        The drift corrector's quarantine/probation/readmit transitions,
        in occurrence order (empty when the calibration loop is
        disabled). JSON-native dicts; part of the determinism witness.
    """

    results: tuple[ServiceResult, ...]
    summary: Mapping[str, float]
    metrics: MetricsRegistry
    errors_m: tuple[float, ...] = ()
    calibration_events: tuple[Mapping[str, Any], ...] = ()

    @property
    def mean_error_m(self) -> float:
        """Mean localization error over results with ground truth."""
        return sum(self.errors_m) / len(self.errors_m) if self.errors_m else float("nan")

    def render_prometheus(self) -> str:
        return self.metrics.render_prometheus()

    def witness_document(self) -> dict[str, Any]:
        """The session's *deterministic* observable behaviour, as JSON types.

        This is the object the crash-recovery witness compares: a seeded
        session killed at an arbitrary tick and resumed must produce a
        byte-identical witness (``json.dumps(..., sort_keys=True)``) to
        the uninterrupted run. Only fields that are pure functions of
        the seed belong here — wall-clock latencies, cache hit rates
        (cold after a resume) and free-form diagnostics are excluded by
        design.
        """
        reasons: dict[str, int] = {}
        for r in self.results:
            if r.degraded and r.reason is not None:
                reasons[r.reason] = reasons.get(r.reason, 0) + 1
        doc = {
            "results": [result_witness_entry(r) for r in self.results],
            "errors_m": [float(e) for e in self.errors_m],
            "n_results": len(self.results),
            "degraded_reasons": {k: reasons[k] for k in sorted(reasons)},
        }
        if self.calibration_events:
            # Present only when the calibration loop produced events, so
            # pre-calibration witnesses stay byte-identical.
            doc["calibration_events"] = [
                dict(e) for e in self.calibration_events
            ]
        return doc


class LocalizationService:
    """Drives the streaming pipeline over a seeded scenario.

    Parameters
    ----------
    config:
        Service knobs; defaults are sized for the paper's testbed.
    perf_clock:
        Monotonic clock used for latency measurement (injectable so a
        test can make latency deterministic).
    warmup_max_s:
        Cap on the reference-coverage warm-up phase before queries start.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        perf_clock: Callable[[], float] = time.perf_counter,
        warmup_max_s: float = 120.0,
    ):
        self.config = config or ServiceConfig()
        self._perf_clock = perf_clock
        self.warmup_max_s = float(warmup_max_s)
        self._logger = get_service_logger()

    # -- deployment assembly -------------------------------------------------

    def build_deployment(self, scenario: TestbedScenario) -> Deployment:
        """The event-driven testbed a session streams from."""
        tracking = {
            f"tag-{label}": pos for label, pos in scenario.tracking_tags.items()
        }
        return build_paper_deployment(
            scenario.environment,
            grid=scenario.grid,
            tracking_tags=tracking,
            seed=scenario.base_seed,
        )

    # -- the session ---------------------------------------------------------

    def run(
        self,
        scenario: TestbedScenario | str,
        duration_s: float,
        *,
        on_result: Callable[[ServiceResult], Any] | None = None,
        fault_plan: "FaultPlan | None" = None,
        checkpoint_path: str | os.PathLike | None = None,
        resume: bool = False,
        crash_point: "CrashPoint | None" = None,
        tracer: Tracer | None = None,
    ) -> SessionReport:
        """Stream ``scenario`` for ``duration_s`` simulated seconds.

        ``scenario`` may be a full :class:`TestbedScenario` or an
        environment preset name (``"Env1"``/``"Env2"``/``"Env3"``).
        ``on_result`` fires synchronously per served result — the CLI's
        live table hook. ``fault_plan`` interposes a seeded
        :class:`~repro.faults.FaultInjector` on the simulator's record
        path *after* warm-up completes (warm-up cannot be starved by an
        injected outage; fault times are absolute simulation seconds);
        an empty plan is bit-identical to no plan at all. The injector's
        counters and fault-event trail are folded into the report
        summary.

        Crash safety (``docs/RUNTIME.md``):

        ``checkpoint_path``
            Attach an append-only JSONL write-ahead checkpoint: every
            served result is logged as served, and a consistency
            snapshot (pipeline state at simulated time *t*) is written
            every ``config.runtime.checkpoint_interval_s`` simulated
            seconds, after a graceful interrupt, and at session end.
        ``resume``
            Load the checkpoint's last committed cut, restore the served
            results and serving state from it, *replay* the seeded
            stream up to the cut with estimation skipped (reconstructing
            queue, middleware, breaker and batcher state bit-exactly —
            and verifying the reconstruction against the snapshot), then
            continue live. The resumed session's
            :meth:`SessionReport.witness_document` is byte-identical to
            an uninterrupted run's.
        ``crash_point``
            Test/benchmark hook: a :class:`~repro.faults.CrashPoint`
            that raises :class:`~repro.faults.SimulatedCrash` at the
            first live tick at or past its time — *without* draining or
            writing a final snapshot, exactly like ``kill -9``.

        A :class:`KeyboardInterrupt` (Ctrl-C / SIGTERM via the CLI) is a
        *graceful* shutdown: the batcher is drained, a final snapshot
        and an ``end`` marker are written, and the report carries
        ``summary["interrupted"] = 1.0``.

        ``tracer``
            Optional :class:`repro.obs.Tracer` installed as the ambient
            tracer for the whole session. Its deterministic clock is
            wired to the simulator (spans are stamped with simulation
            time), so the *logical* trace — span tree, attributes, sim
            timestamps — is a pure function of the seeded scenario;
            ``repro trace record`` relies on exactly that. ``None`` (the
            default) leaves the ambient tracer alone: normally the
            no-op, so instrumentation costs nothing.
        """
        from ..faults.crash import SimulatedCrash  # lazy: avoid cycle

        if isinstance(scenario, str):
            scenario = paper_scenario(scenario, n_trials=1)
        if resume and checkpoint_path is None:
            raise ConfigurationError("resume=True requires a checkpoint_path")
        if checkpoint_path is not None and (
            self.config.engine.precision != "exact"
        ):
            # Checkpoint resume replays the stream and verifies the
            # reconstruction byte-exactly; only the bitwise tier can
            # honour that witness.
            raise ConfigurationError(
                "checkpointed sessions require engine precision 'exact', "
                f"got {self.config.engine.precision!r}"
            )
        deployment = self.build_deployment(scenario)
        simulator = deployment.simulator
        pipeline = ServicePipeline(
            deployment.grid,
            simulator.middleware,
            self.config,
            perf_clock=self._perf_clock,
        )
        if tracer is not None and tracer.clock is None:
            # Deterministic span timestamps: simulation time, not wall.
            tracer.clock = lambda: simulator.now
        injector = None
        if fault_plan is not None:
            from ..faults.injector import FaultInjector  # lazy: avoid cycle

            injector = FaultInjector(fault_plan, metrics=pipeline.metrics)
        tag_ids = sorted(f"tag-{label}" for label in scenario.tracking_tags)

        header = self._checkpoint_header(scenario, tag_ids, duration_s)
        restored: CheckpointState | None = None
        if resume:
            restored = load_checkpoint(checkpoint_path)
            self._validate_header(restored, header)
        writer: CheckpointWriter | None = None
        if checkpoint_path is not None:
            writer = CheckpointWriter(checkpoint_path, append=resume)
            if resume:
                writer.write_marker("resume", t_cut=restored.t_cut)
            else:
                writer.write_header(**header)

        wall_start = self._perf_clock()
        interrupted = False
        tracer_scope = (
            use_tracer(tracer) if tracer is not None else nullcontext()
        )
        try:
            with tracer_scope, SimulatorRecordStream(
                simulator, step_s=self.config.stream_step_s
            ) as stream:
                with current_tracer().span("session.warmup") as wsp:
                    warmed_s = self._warm_up(stream, pipeline)
                    wsp.set("warmed_until_s", float(warmed_s))
                # Baseline capture must land between warm-up (coverage
                # complete, series clean) and the injector attaching.
                pipeline.arm_calibration(simulator.now)
                if injector is not None:
                    simulator.set_fault_injector(injector)
                if restored is not None:
                    pipeline.restore_checkpoint_state(
                        restored.snapshot["state"],
                        [result_from_doc(d) for d in restored.results],
                    )
                    pipeline.begin_replay()
                start_s = simulator.now
                log_event(
                    self._logger, "session_start",
                    tags=len(tag_ids), duration=duration_s, t=start_s,
                    faults=len(fault_plan) if fault_plan is not None else 0,
                    resumed=restored is not None,
                    checkpoint=writer is not None,
                )
                if writer is not None and restored is None:
                    # Initial snapshot: a crash *before* the first
                    # periodic snapshot must still be resumable (cut at
                    # session start, zero results).
                    writer.write_snapshot(
                        t=start_s,
                        results_count=0,
                        state=pipeline.checkpoint_state(),
                        records_dispatched=0,
                    )
                try:
                    interrupted = asyncio.run(
                        self._session(
                            stream, pipeline, tag_ids, duration_s, on_result,
                            writer=writer,
                            restored=restored,
                            crash_point=crash_point,
                        )
                    )
                except KeyboardInterrupt:
                    # Interrupt landed outside the dispatcher (e.g. in
                    # the event loop itself): still a graceful shutdown,
                    # resuming from the last periodic snapshot.
                    interrupted = True
                if interrupted:
                    log_event(
                        self._logger, "session_interrupted",
                        t=simulator.now, results=len(pipeline.results),
                    )
                if pipeline.replaying:
                    # Cut at (or past) the session end: the whole stream
                    # replayed; flip to live so the drain below estimates.
                    pipeline.end_replay()
                    if not interrupted:
                        pipeline.verify_replay(restored.snapshot["state"])
                end_s = simulator.now
                with current_tracer().span("service.drain") as dsp:
                    drained = pipeline.drain(end_s)
                    dsp.set("n_drained", len(drained))
                for result in drained:
                    if on_result is not None:
                        on_result(result)
                if writer is not None:
                    if not interrupted:
                        # Normal completion: commit the drained tail and
                        # seal the file with a final snapshot. (On an
                        # interrupt the dispatcher already wrote a
                        # consistent cut at its last complete tick; the
                        # early drain above is report-only — its results
                        # are served at the interrupt time, not their
                        # natural flush times, so committing them would
                        # poison a later resume.)
                        logged = writer.results_logged + (
                            len(restored.results)
                            if restored is not None else 0
                        )
                        all_results = pipeline.results
                        for i in range(logged, len(all_results)):
                            writer.append_result(
                                i, result_to_doc(all_results[i])
                            )
                        writer.write_snapshot(
                            t=end_s,
                            results_count=len(all_results),
                            state=pipeline.checkpoint_state(),
                        )
                    writer.write_marker(
                        "end", t=end_s, interrupted=interrupted
                    )
        except SimulatedCrash:
            # A simulated hard kill: close the file as-is — no drain, no
            # final snapshot. Whatever the WAL holds is what a real
            # crash would have left behind.
            if writer is not None:
                writer.close()
            raise
        finally:
            if writer is not None:
                writer.close()

        wall_s = self._perf_clock() - wall_start
        summary = dict(pipeline.metrics_summary())
        summary["session_duration_s"] = end_s - start_s
        summary["session_end_s"] = float(end_s)
        summary["records_streamed"] = float(stream.records_streamed)
        summary["wall_time_s"] = wall_s
        summary["localizations_per_s"] = (
            summary["results"] / wall_s if wall_s > 0 else float("inf")
        )
        if injector is not None:
            for key, value in injector.counters().items():
                summary[f"fault_records_{key}"] = float(value)
        if interrupted:
            summary["interrupted"] = 1.0
        if resume:
            summary["resumed"] = 1.0
            summary["resume_results_restored"] = float(len(restored.results))
        if writer is not None:
            summary["checkpoint_results_logged"] = float(writer.results_logged)
            summary["checkpoint_snapshots"] = float(writer.snapshots_written)
        errors = tuple(
            estimation_error(r.position, deployment.tracking_truth[r.tag_id])
            for r in pipeline.results
            if r.tag_id in deployment.tracking_truth
        )
        log_event(
            self._logger, "session_end",
            results=len(pipeline.results), wall_s=wall_s,
            interrupted=interrupted,
        )
        return SessionReport(
            results=pipeline.results,
            summary=summary,
            metrics=pipeline.metrics,
            errors_m=errors,
            calibration_events=pipeline.calibration_events(),
        )

    # -- checkpoint plumbing -------------------------------------------------

    def _checkpoint_header(
        self,
        scenario: TestbedScenario,
        tag_ids: list[str],
        duration_s: float,
    ) -> dict[str, Any]:
        """Scenario identity written to (and checked against) a checkpoint."""
        environment = getattr(scenario, "environment", None)
        header = {
            "scenario": getattr(scenario, "name", None),
            "environment": getattr(environment, "name", None),
            "seed": getattr(scenario, "base_seed", None),
            "zone": None,  # unzoned session; ZoneWorker writes its zone id
            "tags": list(tag_ids),
            "duration_s": float(duration_s),
            "query_interval_s": float(self.config.query_interval_s),
            "stream_step_s": float(self.config.stream_step_s),
        }
        if self.config.calibration is not None:
            # Identity key only when enabled: a calibrating session must
            # not resume a non-calibrating checkpoint (and vice versa),
            # while disabled sessions keep the pre-calibration header
            # byte-identical.
            header["calibration"] = True
        return header

    @staticmethod
    def _validate_header(
        restored: CheckpointState, header: Mapping[str, Any]
    ) -> None:
        """Refuse to resume a checkpoint against a different world.

        Thin alias of :func:`repro.runtime.checkpoint.validate_header`
        (kept for callers that monkeypatch or subclass the service).
        """
        validate_header(restored, header)

    # -- internals -----------------------------------------------------------

    def _warm_up(
        self, stream: SimulatorRecordStream, pipeline: ServicePipeline
    ) -> float:
        """Stream until every reader covers the reference grid.

        Mirrors :meth:`TestbedSimulator.warm_up`, but routed through the
        service's own ingestion queue (the simulator's direct middleware
        path is disconnected while the stream taps the record sink).
        """
        simulator = stream.simulator
        deadline = simulator.now + self.warmup_max_s
        while simulator.now < deadline:
            records = stream.advance(min(2.0, deadline - simulator.now))
            pipeline.ingest.submit(records)
            pipeline.ingest.deliver_pending()
            coverage = pipeline.middleware.coverage(simulator.now)
            if all(c >= 1.0 for c in coverage.values()):
                return simulator.now
        raise SimulationError(
            f"reference coverage incomplete after {self.warmup_max_s}s of "
            f"warm-up: {pipeline.middleware.coverage(simulator.now)}"
        )

    async def _session(
        self,
        stream: SimulatorRecordStream,
        pipeline: ServicePipeline,
        tag_ids: list[str],
        duration_s: float,
        on_result: Callable[[ServiceResult], Any] | None,
        *,
        writer: CheckpointWriter | None = None,
        restored: CheckpointState | None = None,
        crash_point: "CrashPoint | None" = None,
    ) -> bool:
        """Producer/dispatcher task pair around a bounded tick queue.

        Returns ``True`` when the session was gracefully interrupted
        (:class:`KeyboardInterrupt` inside the dispatcher — Ctrl-C or
        SIGTERM routed by the CLI), after sealing the WAL with the last
        complete tick's consistency cut.

        Records travel *with* their tick rather than being offered to the
        ingestion queue by the producer: the producer may run several
        chunks of simulated time ahead of the dispatcher (up to the tick
        queue's bound), and offering early would let a batch executing at
        service time ``t`` observe readings stamped after ``t``. Keeping
        submission on the dispatcher side guarantees causality: the
        middleware never contains a record from the future.

        Checkpointing rides on the dispatcher: each live tick's results
        are appended to the WAL as served, and a consistency snapshot is
        written once ``runtime.checkpoint_interval_s`` simulated seconds
        have passed since the last one. On a resumed session the
        dispatcher replays ticks up to the restored cut (estimation
        skipped, see :meth:`ServicePipeline.begin_replay`) and flips to
        live — verifying the reconstructed state — at the first tick
        past it. ``crash_point`` fires after a live tick's results are
        WAL-logged but before any further snapshot, simulating a hard
        kill mid-interval.
        """
        ticks: asyncio.Queue[
            tuple[float, list] | None
        ] = asyncio.Queue(maxsize=8)
        next_query = {tag: stream.simulator.now for tag in tag_ids}
        interval = self.config.query_interval_s
        cp_interval = self.config.runtime.checkpoint_interval_s
        replay_until = restored.t_cut if restored is not None else None
        records_dispatched = 0
        wal_index = len(pipeline.results)
        next_snapshot: float | None = None

        async def produce() -> None:
            for now_s, records in stream.iter_chunks(duration_s):
                await ticks.put((now_s, records))  # bounded: backpressure
            await ticks.put(None)

        def flip_to_live(now_s: float) -> None:
            pipeline.end_replay()
            pipeline.verify_replay(restored.snapshot["state"])
            snap_dispatched = restored.snapshot.get("records_dispatched")
            if (
                snap_dispatched is not None
                and records_dispatched != int(snap_dispatched)
            ):
                raise CheckpointError(
                    f"replay diverged on dispatched records: reconstructed "
                    f"{records_dispatched}, checkpoint {snap_dispatched}"
                )
            log_event(
                self._logger, "resume_live",
                t=now_s, records_replayed=records_dispatched,
                results_restored=wal_index,
            )

        last_cut: dict | None = None
        interrupted = False

        async def dispatch() -> None:
            nonlocal replay_until, records_dispatched, wal_index
            nonlocal next_snapshot, last_cut, interrupted
            try:
                tracer = current_tracer()
                while True:
                    tick = await ticks.get()
                    if tick is None:
                        return
                    now_s, records = tick
                    with tracer.span(
                        "service.tick",
                        tick_s=float(now_s),
                        replay=bool(pipeline.replaying),
                    ) as tsp:
                        if replay_until is not None and now_s > replay_until:
                            flip_to_live(now_s)
                            replay_until = None
                        pipeline.ingest.submit(records)
                        records_dispatched += len(records)
                        for tag in tag_ids:
                            if now_s >= next_query[tag]:
                                pipeline.submit_request(tag, now_s)
                                next_query[tag] = now_s + interval
                        served = pipeline.process_due(now_s)
                        tsp.update(
                            n_records=len(records), n_served=len(served)
                        )
                    if writer is not None and not pipeline.replaying:
                        # Write-ahead: results hit the log *before* any
                        # observer — a consumer can never have seen a
                        # result the checkpoint does not know about.
                        for result in served:
                            writer.append_result(
                                wal_index, result_to_doc(result)
                            )
                            wal_index += 1
                    for result in served:
                        if on_result is not None:
                            on_result(result)
                    if writer is not None and not pipeline.replaying:
                        # The consistency cut at this tick, captured
                        # eagerly: a graceful interrupt may land on a
                        # *later* tick mid-processing, and the snapshot
                        # it flushes must describe a tick boundary.
                        last_cut = {
                            "t": now_s,
                            "results_count": wal_index,
                            "state": pipeline.checkpoint_state(),
                            "records_dispatched": records_dispatched,
                        }
                        if next_snapshot is None:
                            next_snapshot = now_s + cp_interval
                        if now_s >= next_snapshot:
                            writer.write_snapshot(**last_cut)
                            next_snapshot = now_s + cp_interval
                    if (
                        crash_point is not None
                        and not pipeline.replaying
                        and crash_point.due(now_s)
                    ):
                        crash_point.fire(now_s)
            except KeyboardInterrupt:
                # Graceful shutdown: seal the WAL with the last complete
                # tick's cut — the session can then be resumed as if it
                # had crashed exactly at that boundary. Swallowing the
                # interrupt here (and reporting it via the return value)
                # keeps the event loop's teardown clean.
                if writer is not None and last_cut is not None:
                    writer.write_snapshot(**last_cut)
                interrupted = True

        producer = asyncio.ensure_future(produce())
        try:
            await dispatch()
        finally:
            producer.cancel()
            try:
                await producer
            except asyncio.CancelledError:
                pass
        return interrupted
