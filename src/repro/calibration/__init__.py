"""Self-healing calibration: drift correction + sensor-trust quarantine.

The closed loop over :mod:`repro.faults`' calibration failure modes —
per-reader RSSI drift and reference-tag battery decay. Residuals between
observed and expected reference-tag RSSI are decomposed (robust
median/MAD, NaN-safe) into per-reader bias corrections fed back into the
serving path and per-tag anomaly scores driving a quarantine/probation/
readmit state machine. See docs/CALIBRATION.md.
"""

from .corrector import CalibrationPolicy, DriftCorrector, TagTrust, TrustState
from .residuals import (
    ResidualWindow,
    decompose_residuals,
    nan_mad,
    nan_median,
)

__all__ = [
    "CalibrationPolicy",
    "DriftCorrector",
    "TagTrust",
    "TrustState",
    "ResidualWindow",
    "decompose_residuals",
    "nan_mad",
    "nan_median",
]
