"""Closed-loop drift correction and reference-tag trust quarantine.

VIRE interpolates its virtual lattice from real reference tags at known
positions — the algorithm is exactly as good as those tags and the
reader calibrations measuring them. The paper assumes both are
trustworthy; :mod:`repro.faults` injects per-reader calibration drift
and reference-tag battery decay that silently violate that assumption.
This module closes the loop:

* every batch tick, the pipeline feeds the corrector the middleware's
  smoothed reference matrix; residuals against a clean post-warm-up
  baseline go into a sim-clock sliding window
  (:class:`~repro.calibration.residuals.ResidualWindow`);
* a robust median/MAD decomposition
  (:func:`~repro.calibration.residuals.decompose_residuals`) splits the
  window into **per-reader bias** (row structure — receiver drift) and
  **per-reference-tag anomaly scores** (column structure — tag decay);
* bias estimates feed back as corrections subtracted from incoming
  readings *before* estimation (:meth:`DriftCorrector.correct_reading`);
* anomaly scores drive a quarantine → probation → readmit state machine
  per reference tag (the :class:`~repro.service.health.CircuitBreaker`
  pattern, generalized from readers to reference tags): a quarantined
  tag's lattice column is excised (NaN + ``masked=True``), and the
  estimator's deterministic masked-lattice fill rebuilds the
  interpolation lattice without it.

Determinism contract (see docs/CALIBRATION.md): the corrector holds no
RNG and no wall-clock — its entire state is a pure function of the
seeded record stream, so checkpoint replay reconstructs it bit-exactly,
the quarantine/readmit event log is part of the session witness, and a
*disabled* corrector (``ServiceConfig.calibration is None``) leaves the
pipeline bit-identical to a build without this module. With the
corrector enabled but zero injected drift, the deadband forces every
correction to exactly ``0.0`` and :meth:`DriftCorrector.correct_reading`
returns the original reading object — answers stay bitwise identical.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

import numpy as np

from ..exceptions import ConfigurationError
from ..types import TrackingReading
from ..utils.logging import get_structured_logger, log_event
from .residuals import ResidualWindow, decompose_residuals, nan_median

if TYPE_CHECKING:  # sibling-layer import kept out of runtime (no cycle)
    from ..service.metrics import MetricsRegistry

__all__ = [
    "CalibrationPolicy",
    "TrustState",
    "TagTrust",
    "DriftCorrector",
]

_LOGGER_NAME = "repro.calibration"


class TrustState:
    """String constants for a reference tag's trust state."""

    TRUSTED = "trusted"
    QUARANTINED = "quarantined"
    PROBATION = "probation"


@dataclass(frozen=True)
class CalibrationPolicy:
    """Tuning knobs of the self-healing calibration loop.

    Parameters
    ----------
    window_s:
        Sim-clock length of the residual sliding window.
    min_samples:
        Ticks the window must hold before any estimate applies —
        corrections stay ``0.0`` and no tag can be quarantined earlier.
    bias_deadband_db:
        Bias magnitudes below this are snapped to exactly ``0.0``. The
        deadband is what makes a zero-drift run *bitwise* answer-neutral
        (noise-level bias estimates never touch a reading). Ambient
        human-movement disturbance produces window-median excursions of
        up to ~1 dB per reader in the fault-free testbed; the default
        clears that with margin while real drift (several dB and
        growing) crosses it within a couple of ticks.
    max_correction_db:
        Clamp on the applied per-reader correction (a runaway estimate
        must not be able to invert a reading).
    anomaly_threshold_db:
        A tag whose bias-removed median residual magnitude reaches this
        is anomalous. The effective threshold adapts upward to
        ``anomaly_scale_gate`` robust sigmas when the whole field is
        noisy, so global disturbances do not quarantine everything. The
        default sits above the worst ambient excursion seen in the
        fault-free testbed (~3.5 dB under human-movement disturbance)
        and far below real fault signatures (a decaying battery sags
        tens of dB), so a zero-fault run never quarantines.
    anomaly_scale_gate:
        Multiplier on the MAD-derived scale for the adaptive threshold.
    quarantine_votes:
        Consecutive anomalous ticks before a trusted tag is quarantined
        (the breaker's ``failure_threshold``, per tag).
    probation_s:
        Sim-clock seconds a quarantined tag waits before one probation
        re-check (the breaker's ``recovery_timeout_s``).
    max_quarantined_fraction:
        Hard cap on the fraction of reference tags simultaneously
        excised — the lattice fill needs surviving anchors (its own
        floor is 25% coverage) and quorum needs reference coverage, so
        the corrector refuses to amputate past this point even when
        more tags look anomalous.
    """

    window_s: float = 6.0
    min_samples: int = 3
    bias_deadband_db: float = 1.5
    max_correction_db: float = 12.0
    anomaly_threshold_db: float = 4.5
    anomaly_scale_gate: float = 4.0
    quarantine_votes: int = 3
    probation_s: float = 6.0
    max_quarantined_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ConfigurationError(f"window_s must be positive, got {self.window_s}")
        if self.min_samples < 1:
            raise ConfigurationError(f"min_samples must be >= 1, got {self.min_samples}")
        if self.bias_deadband_db < 0:
            raise ConfigurationError(
                f"bias_deadband_db must be >= 0, got {self.bias_deadband_db}"
            )
        if self.max_correction_db <= 0:
            raise ConfigurationError(
                f"max_correction_db must be positive, got {self.max_correction_db}"
            )
        if self.anomaly_threshold_db <= 0:
            raise ConfigurationError(
                f"anomaly_threshold_db must be positive, got {self.anomaly_threshold_db}"
            )
        if self.anomaly_scale_gate < 0:
            raise ConfigurationError(
                f"anomaly_scale_gate must be >= 0, got {self.anomaly_scale_gate}"
            )
        if self.quarantine_votes < 1:
            raise ConfigurationError(
                f"quarantine_votes must be >= 1, got {self.quarantine_votes}"
            )
        if self.probation_s <= 0:
            raise ConfigurationError(
                f"probation_s must be positive, got {self.probation_s}"
            )
        if not (0.0 <= self.max_quarantined_fraction <= 1.0):
            raise ConfigurationError(
                f"max_quarantined_fraction must be in [0, 1], "
                f"got {self.max_quarantined_fraction}"
            )

    def with_(self, **changes) -> "CalibrationPolicy":
        """Modified copy (thin wrapper over dataclasses.replace)."""
        from dataclasses import replace

        return replace(self, **changes)


class TagTrust:
    """One reference tag's trust state machine.

    The :class:`~repro.service.health.CircuitBreaker` mechanics applied
    to a reference tag: consecutive anomalous ticks quarantine it, a
    sim-clock timeout grants one probation re-check, a clean probation
    tick readmits it and an anomalous one re-quarantines it (restarting
    the timeout). Driven exclusively by :class:`DriftCorrector`.
    """

    def __init__(self, policy: CalibrationPolicy):
        self.policy = policy
        self.state = TrustState.TRUSTED
        self.consecutive_anomalies = 0
        self.quarantined_at_s: float | None = None
        self.transitions = 0

    @property
    def excised(self) -> bool:
        """Whether the tag's lattice column is currently excluded."""
        return self.state != TrustState.TRUSTED

    def due_for_probation(self, now_s: float) -> bool:
        return (
            self.state == TrustState.QUARANTINED
            and self.quarantined_at_s is not None
            and now_s - self.quarantined_at_s >= self.policy.probation_s
        )

    def record_normal(self) -> str | None:
        """A clean tick; returns ``"readmit"`` on a probation readmit."""
        if self.state == TrustState.PROBATION:
            self.state = TrustState.TRUSTED
            self.consecutive_anomalies = 0
            self.quarantined_at_s = None
            self.transitions += 1
            return "readmit"
        if self.state == TrustState.TRUSTED:
            self.consecutive_anomalies = 0
        return None

    def record_anomaly(self, now_s: float, *, allow_quarantine: bool) -> str | None:
        """An anomalous tick; returns ``"quarantine"`` on a transition.

        ``allow_quarantine=False`` (the excision cap is full) leaves a
        trusted tag trusted with its vote counter saturated, so it
        quarantines on the first tick a slot frees up.
        """
        if self.state == TrustState.PROBATION:
            # Failed probe: straight back to quarantine, restart timer.
            self.state = TrustState.QUARANTINED
            self.quarantined_at_s = now_s
            self.transitions += 1
            return "quarantine"
        if self.state == TrustState.TRUSTED:
            self.consecutive_anomalies = min(
                self.consecutive_anomalies + 1, self.policy.quarantine_votes
            )
            if (
                self.consecutive_anomalies >= self.policy.quarantine_votes
                and allow_quarantine
            ):
                self.state = TrustState.QUARANTINED
                self.quarantined_at_s = now_s
                self.transitions += 1
                return "quarantine"
        return None

    def begin_probation(self) -> str:
        assert self.state == TrustState.QUARANTINED
        self.state = TrustState.PROBATION
        self.transitions += 1
        return "probation"


def _sanitize(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_:]", "_", str(name))


class DriftCorrector:
    """Online per-reader bias estimation + reference-tag quarantine.

    Parameters
    ----------
    reader_ids / reference_ids:
        Middleware ordering of readers (residual rows) and reference
        tags (residual columns / snapshot columns).
    policy:
        The loop's tuning knobs.
    metrics:
        Optional :class:`~repro.service.metrics.MetricsRegistry`;
        ``repro_calibration_*`` instruments are registered when given.

    Lifecycle: :meth:`arm` captures the clean baseline at the end of
    warm-up (the fault injector attaches *after* warm-up, so the
    baseline is trustworthy by construction); :meth:`observe` runs once
    per batch tick — in live **and** checkpoint-replay batches, which is
    what makes the corrector's state replay-reconstructible; and
    :meth:`correct_reading` is applied to every snapshot before it
    reaches the estimator.
    """

    def __init__(
        self,
        reader_ids: Iterable[str],
        reference_ids: Iterable[str],
        policy: CalibrationPolicy | None = None,
        *,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.policy = policy or CalibrationPolicy()
        self.reader_ids = tuple(str(r) for r in reader_ids)
        self.reference_ids = tuple(str(t) for t in reference_ids)
        if len(set(self.reader_ids)) != len(self.reader_ids):
            raise ConfigurationError("duplicate reader ids")
        if len(set(self.reference_ids)) != len(self.reference_ids):
            raise ConfigurationError("duplicate reference tag ids")
        self._column = {t: j for j, t in enumerate(self.reference_ids)}
        self._baseline: np.ndarray | None = None
        self._armed_at_s: float | None = None
        self._window = ResidualWindow(self.policy.window_s)
        self._bias_raw = {rid: 0.0 for rid in self.reader_ids}
        self._corrections = {rid: 0.0 for rid in self.reader_ids}
        self._tag_scores = {tid: 0.0 for tid in self.reference_ids}
        self._scale = float("nan")
        self.trust = {tid: TagTrust(self.policy) for tid in self.reference_ids}
        self._events: list[dict[str, Any]] = []
        self._corrected_readings = 0
        self._logger = get_structured_logger(_LOGGER_NAME)

        self._metrics = metrics
        self._g_bias: dict[str, Any] = {}
        if metrics is not None:
            self._c_corrected = metrics.counter(
                "calibration_corrected_readings_total",
                "Readings modified by the drift corrector before estimation",
            )
            self._c_transitions = metrics.counter(
                "calibration_quarantine_transitions_total",
                "Reference-tag trust state transitions",
            )
            self._g_quarantine_ratio = metrics.gauge(
                "calibration_quarantine_ratio",
                "Fraction of reference tags currently excised",
            )
            self._g_max_bias = metrics.gauge(
                "calibration_max_abs_bias_db",
                "Largest per-reader bias estimate magnitude",
            )
            for rid in self.reader_ids:
                self._g_bias[rid] = metrics.gauge(
                    f"calibration_bias_{_sanitize(rid)}_db",
                    f"Estimated calibration bias of reader {rid}",
                )

    # -- lifecycle -----------------------------------------------------------

    @property
    def armed(self) -> bool:
        return self._baseline is not None

    def arm(self, baseline: np.ndarray, now_s: float) -> None:
        """Capture the expected-RSSI baseline from a clean matrix.

        Called once, between warm-up (coverage complete, injector not
        yet attached) and the first live batch. NaN baseline cells are
        tolerated — they simply never produce evidence.
        """
        baseline = np.asarray(baseline, dtype=np.float64)
        expected = (len(self.reader_ids), len(self.reference_ids))
        if baseline.shape != expected:
            raise ConfigurationError(
                f"baseline shape {baseline.shape} != (readers, references) {expected}"
            )
        self._baseline = baseline.copy()
        self._armed_at_s = float(now_s)
        log_event(
            self._logger, "calibration_armed",
            t=float(now_s),
            readers=len(self.reader_ids), references=len(self.reference_ids),
        )

    # -- per-tick observation ------------------------------------------------

    def observe(self, observed: np.ndarray, now_s: float) -> None:
        """Fold one smoothed reference matrix into the residual window.

        Recomputes the per-reader bias estimates and per-tag anomaly
        scores, then drives every tag's trust state machine. Runs in
        live and replay batches alike — the corrector's state must be a
        pure function of the seeded stream for checkpoint resume.
        """
        if self._baseline is None:
            return
        observed = np.asarray(observed, dtype=np.float64)
        self._window.push(now_s, observed - self._baseline)
        n_refs = len(self.reference_ids)
        if len(self._window) < self.policy.min_samples:
            self._publish_metrics()
            return
        stacked = self._window.stacked()
        trusted_cols = np.array(
            [not self.trust[t].excised for t in self.reference_ids], dtype=bool
        )
        if n_refs and not trusted_cols.any():
            trusted_cols = None  # all excised: fall back to every column
        reader_bias, tag_scores, scale = decompose_residuals(
            stacked, trusted_columns=trusted_cols
        )
        for k, rid in enumerate(self.reader_ids):
            raw = float(reader_bias[k]) if math.isfinite(reader_bias[k]) else 0.0
            self._bias_raw[rid] = raw
            if abs(raw) < self.policy.bias_deadband_db:
                self._corrections[rid] = 0.0
            else:
                bound = self.policy.max_correction_db
                self._corrections[rid] = max(-bound, min(bound, raw))
        threshold = self.policy.anomaly_threshold_db
        if math.isfinite(scale):
            threshold = max(threshold, self.policy.anomaly_scale_gate * scale)
        self._scale = scale
        for j, tid in enumerate(self.reference_ids):
            score = float(tag_scores[j]) if n_refs else 0.0
            self._tag_scores[tid] = score
            # No finite evidence for a reference tag that should always
            # beacon is itself anomalous (battery death looks exactly
            # like this once the middleware series goes stale).
            anomalous = (not math.isfinite(score)) or abs(score) >= threshold
            self._step_trust(tid, anomalous, now_s, score)
        self._publish_metrics()

    def _step_trust(
        self, tag_id: str, anomalous: bool, now_s: float, score: float
    ) -> None:
        trust = self.trust[tag_id]
        if trust.due_for_probation(now_s):
            self._record_event(trust.begin_probation(), tag_id, now_s, score)
        if anomalous:
            transition = trust.record_anomaly(
                now_s, allow_quarantine=self._quarantine_slot_free()
            )
        else:
            transition = trust.record_normal()
        if transition is not None:
            self._record_event(transition, tag_id, now_s, score)

    def _quarantine_slot_free(self) -> bool:
        n_refs = len(self.reference_ids)
        if n_refs == 0:
            return False
        excised = sum(1 for t in self.trust.values() if t.excised)
        return (excised + 1) / n_refs <= self.policy.max_quarantined_fraction

    def _record_event(
        self, kind: str, tag_id: str, now_s: float, score: float
    ) -> None:
        event = {
            "event": kind,
            "tag": tag_id,
            "t": float(now_s),
            "score_db": float(score) if math.isfinite(score) else None,
        }
        self._events.append(event)
        log_event(self._logger, f"calibration_{kind}", tag=tag_id, t=float(now_s))
        if self._metrics is not None:
            self._c_transitions.inc()

    def _publish_metrics(self) -> None:
        if self._metrics is None:
            return
        n_refs = len(self.reference_ids)
        excised = sum(1 for t in self.trust.values() if t.excised)
        self._g_quarantine_ratio.set(excised / n_refs if n_refs else 0.0)
        max_bias = max(
            (abs(b) for b in self._bias_raw.values()), default=0.0
        )
        self._g_max_bias.set(max_bias)
        for rid, gauge in self._g_bias.items():
            gauge.set(self._bias_raw[rid])

    # -- the feedback path ---------------------------------------------------

    def correction(self, reader_id: str) -> float:
        """The bias subtracted from ``reader_id``'s readings (0.0 = none)."""
        return self._corrections.get(str(reader_id), 0.0)

    def bias_estimates(self) -> dict[str, float]:
        """Applied per-reader corrections, keyed by reader id."""
        return dict(self._corrections)

    def raw_bias_estimates(self) -> dict[str, float]:
        """Pre-deadband per-reader bias estimates, keyed by reader id."""
        return dict(self._bias_raw)

    def anomaly_scores(self) -> dict[str, float]:
        """Latest per-tag bias-removed median residuals."""
        return dict(self._tag_scores)

    def anomaly_scale_db(self) -> float:
        """MAD-derived robust sigma of the tag scores (NaN = no evidence)."""
        return self._scale

    def excised_tags(self) -> tuple[str, ...]:
        """Reference tags currently excluded from the lattice, sorted."""
        return tuple(
            sorted(t for t, trust in self.trust.items() if trust.excised)
        )

    def correct_reading(self, reading: TrackingReading) -> TrackingReading:
        """Apply corrections + quarantine excision to one snapshot.

        Per-reader corrections are subtracted from that reader's whole
        row — reference *and* tracking RSSI, since a drifting receiver
        biases every tag it hears. Quarantined tags' columns are set to
        NaN and the reading forced ``masked=True``; the estimator's
        quorum + deterministic masked-lattice fill then rebuild the
        interpolation lattice without them.

        Returns the *original object* when nothing changes (unarmed,
        all corrections exactly ``0.0``, nothing quarantined) — the
        structural guarantee behind the zero-drift bitwise neutrality
        contract.
        """
        if self._baseline is None:
            return reading
        reader_ids = reading.reader_ids or self.reader_ids
        corrections = [self._corrections.get(str(r), 0.0) for r in reader_ids]
        excised = [
            self._column[t]
            for t, trust in self.trust.items()
            if trust.excised and t in self._column
        ]
        if not excised and not any(c != 0.0 for c in corrections):
            return reading
        from dataclasses import replace

        ref = np.array(reading.reference_rssi, dtype=np.float64, copy=True)
        trk = np.array(reading.tracking_rssi, dtype=np.float64, copy=True)
        for i, c in enumerate(corrections):
            if c != 0.0:
                ref[i, :] -= c
                trk[i] -= c
        masked = bool(reading.masked)
        if excised:
            for j in sorted(excised):
                ref[:, j] = np.nan
            masked = True
        self._corrected_readings += 1
        if self._metrics is not None:
            self._c_corrected.inc()
        return replace(
            reading, reference_rssi=ref, tracking_rssi=trk, masked=masked
        )

    # -- reporting / checkpointing -------------------------------------------

    @property
    def events(self) -> tuple[Mapping[str, Any], ...]:
        """Quarantine/probation/readmit transitions, in occurrence order.

        JSON-native dicts — they join the session witness document and
        must byte-round-trip through ``json.dumps(sort_keys=True)``.
        """
        return tuple(self._events)

    def transitions_total(self) -> int:
        return sum(t.transitions for t in self.trust.values())

    def summary(self) -> dict[str, float]:
        """Headline numbers folded into the pipeline's metrics summary."""
        n_refs = len(self.reference_ids)
        excised = sum(1 for t in self.trust.values() if t.excised)
        out = {
            "calibration_quarantined": float(excised),
            "calibration_quarantine_ratio": (
                excised / n_refs if n_refs else 0.0
            ),
            "calibration_transitions": float(self.transitions_total()),
            "calibration_corrected_readings": float(self._corrected_readings),
            "calibration_max_abs_bias_db": max(
                (abs(b) for b in self._bias_raw.values()), default=0.0
            ),
        }
        for rid in self.reader_ids:
            out[f"calibration_bias_{rid}_db"] = self._corrections[rid]
        return out

    def checkpoint_state(self) -> dict[str, Any]:
        """JSON-native state snapshot for replay verification.

        Replay reconstructs the corrector (``observe`` runs in replay
        batches), so nothing here is *restored* — resume verifies the
        reconstruction against this snapshot exactly like the breakers.
        """
        return {
            "armed": self.armed,
            "corrections": {
                rid: float(self._corrections[rid])
                for rid in sorted(self.reader_ids)
            },
            "trust": {
                tid: {
                    "state": trust.state,
                    "consecutive_anomalies": trust.consecutive_anomalies,
                    "quarantined_at_s": trust.quarantined_at_s,
                    "transitions": trust.transitions,
                }
                for tid, trust in sorted(self.trust.items())
            },
            "events": len(self._events),
        }
