"""NaN-safe robust statistics over reference-tag residual windows.

The self-healing calibration loop (:mod:`repro.calibration.corrector`)
works on *residual matrices*: per-(reader, reference-tag) differences
between the RSSI the middleware currently reports and the clean baseline
captured at the end of warm-up. Reference tags sit at known positions,
so under perfect calibration every residual is zero-mean noise; a
drifting reader shifts a whole *row*, a decaying reference tag shifts a
whole *column*.

Everything here must be NaN-safe by construction: masked partial frames,
quorum-trimmed snapshots and stale middleware series all surface as NaN
cells, and a window observed during a total outage can be entirely NaN
(or entirely empty, for a deployment with zero reference tags). None of
the helpers may emit numpy's all-NaN-slice warnings — they filter finite
values explicitly and return NaN when there is no evidence at all.

All outputs are pure functions of their inputs (no RNG, no wall-clock),
which is what lets the corrector's state replay bit-identically from a
checkpoint.
"""

from __future__ import annotations

import warnings

import numpy as np

__all__ = [
    "nan_median",
    "nan_mad",
    "ResidualWindow",
    "decompose_residuals",
]

#: Consistency constant turning a MAD into a Gaussian-comparable sigma.
MAD_SIGMA = 1.4826


def nan_median(values: np.ndarray | list | tuple) -> float:
    """Median over the finite entries of ``values``.

    Returns ``nan`` (never warns) when no finite entry exists — an
    all-NaN window means "no evidence", and the caller decides what that
    implies (for a reference tag at a known position, silence itself is
    anomalous).
    """
    arr = np.asarray(values, dtype=np.float64)
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return float("nan")
    return float(np.median(finite))


def nan_mad(values: np.ndarray | list | tuple) -> float:
    """Median absolute deviation over the finite entries of ``values``.

    The robust scale companion of :func:`nan_median`: outlier rows or
    columns (one drifting reader among four, one dying tag among
    sixteen) barely move it. Returns ``nan`` when there is no finite
    evidence. Multiply by :data:`MAD_SIGMA` for a Gaussian-equivalent
    sigma.
    """
    arr = np.asarray(values, dtype=np.float64)
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return float("nan")
    med = np.median(finite)
    return float(np.median(np.abs(finite - med)))


class ResidualWindow:
    """A sim-clock sliding window of residual matrices.

    ``push(now_s, residuals)`` appends one ``(K, n_refs)`` observation
    and drops every entry older than ``window_s`` (strictly: entries
    with ``now_s - t > window_s``). Time is the simulation clock, so the
    window contents — and everything estimated from them — are a pure
    function of the seeded record stream.
    """

    def __init__(self, window_s: float):
        self.window_s = float(window_s)
        self._entries: list[tuple[float, np.ndarray]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, now_s: float, residuals: np.ndarray) -> None:
        """Append one observation and expire everything out of window."""
        self._entries.append((float(now_s), np.asarray(residuals, dtype=np.float64)))
        horizon = float(now_s) - self.window_s
        while self._entries and self._entries[0][0] < horizon:
            self._entries.pop(0)

    def stacked(self) -> np.ndarray:
        """The window as one ``(T, K, n_refs)`` array (``T`` may be 0)."""
        if not self._entries:
            return np.empty((0, 0, 0))
        return np.stack([m for _, m in self._entries])

    def clear(self) -> None:
        self._entries.clear()


def decompose_residuals(
    stacked: np.ndarray,
    *,
    trusted_columns: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Median-polish a residual window into reader and tag components.

    Parameters
    ----------
    stacked:
        ``(T, K, n_refs)`` residual window (NaN = no evidence).
    trusted_columns:
        Optional boolean mask of length ``n_refs``; only these columns
        feed the per-reader bias estimate (quarantined tags must not
        contaminate the very estimate used to judge them). All columns
        are always scored.

    Returns
    -------
    ``(reader_bias, tag_scores, scale)`` where ``reader_bias`` has shape
    ``(K,)`` (NaN when a reader has no finite evidence), ``tag_scores``
    has shape ``(n_refs,)`` — each tag's median residual *after* the
    per-reader bias is removed — and ``scale`` is the
    :data:`MAD_SIGMA`-normalized MAD of the tag scores (NaN when fewer
    than two tags have evidence).

    The decomposition order encodes the physical failure modes: a
    drifting reader moves a whole row (captured first, robust to a few
    bad tags), a decaying tag moves what is left of its column across
    every reader.
    """
    if stacked.ndim != 3:
        raise ValueError(f"expected (T, K, n_refs) residuals, got shape {stacked.shape}")
    n_ticks, n_readers, n_refs = stacked.shape
    if n_ticks == 0 or n_refs == 0:
        # No evidence at all: NaN biases, NaN scores, NaN scale.
        return (
            np.full(n_readers, np.nan),
            np.full(n_refs, np.nan),
            float("nan"),
        )
    rows = stacked
    if trusted_columns is not None:
        rows = stacked[:, :, trusted_columns]
    # Vectorized nan-medians (one C call per axis pair instead of a
    # Python loop of nan_median calls — this runs every batch tick).
    # All-NaN slices legitimately mean "no evidence"; suppress numpy's
    # warning for exactly that case and let the NaN flow through.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        if rows.shape[2]:
            reader_bias = np.nanmedian(rows, axis=(0, 2))
        else:
            reader_bias = np.full(n_readers, np.nan)
        centered_bias = np.where(np.isfinite(reader_bias), reader_bias, 0.0)
        tag_scores = np.nanmedian(
            stacked - centered_bias[None, :, None], axis=(0, 1)
        )
    finite_scores = tag_scores[np.isfinite(tag_scores)]
    scale = float("nan")
    if finite_scores.size >= 2:
        scale = MAD_SIGMA * nan_mad(finite_scores)
    return reader_bias, tag_scores, scale
