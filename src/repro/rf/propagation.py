"""Deterministic distance-dependent path loss models.

All models map distance (metres) to mean received power (dBm) for the
active-RFID link budget. The paper (§2) notes the inverse-square law of
open space becomes a third- or fourth-power law indoors; the
:class:`LogDistancePathLoss` exponent ``gamma`` is exactly that knob, and
:class:`MultiSlopePathLoss` models the common near/far break-point
behaviour.

Every model is vectorized: ``rssi(d)`` accepts scalars or arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..exceptions import ConfigurationError
from ..utils.validation import ensure_positive

__all__ = [
    "PathLossModel",
    "FreeSpacePathLoss",
    "LogDistancePathLoss",
    "MultiSlopePathLoss",
]

#: Distances below this are clamped; RSSI at sub-centimetre range is
#: physically meaningless and would otherwise diverge.
MIN_DISTANCE_M = 0.01


@runtime_checkable
class PathLossModel(Protocol):
    """Maps link distance to mean RSSI (dBm)."""

    def rssi(self, distance_m: np.ndarray | float) -> np.ndarray:
        """Mean RSSI (dBm) at the given distance(s)."""
        ...


def _clamped(distance_m: np.ndarray | float) -> np.ndarray:
    d = np.asarray(distance_m, dtype=np.float64)
    if np.any(d < 0):
        raise ConfigurationError("distance must be non-negative")
    return np.maximum(d, MIN_DISTANCE_M)


@dataclass(frozen=True)
class LogDistancePathLoss:
    """The standard log-distance model.

    ``RSSI(d) = rssi_at_reference - 10 * gamma * log10(d / d0)``

    Parameters
    ----------
    rssi_at_reference:
        Mean RSSI (dBm) at the reference distance ``d0`` (typically the
        1 m link budget of the tag/reader pair).
    gamma:
        Path-loss exponent; 2 in free space, 2.5-4 indoors.
    reference_distance_m:
        The reference distance ``d0``.
    """

    rssi_at_reference: float = -45.0
    gamma: float = 2.0
    reference_distance_m: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.gamma, "gamma")
        ensure_positive(self.reference_distance_m, "reference_distance_m")
        if not np.isfinite(self.rssi_at_reference):
            raise ConfigurationError("rssi_at_reference must be finite")

    def rssi(self, distance_m: np.ndarray | float) -> np.ndarray:
        d = _clamped(distance_m)
        return self.rssi_at_reference - 10.0 * self.gamma * np.log10(
            d / self.reference_distance_m
        )


@dataclass(frozen=True)
class FreeSpacePathLoss:
    """Friis free-space model (``gamma = 2``), parameterized by EIRP.

    ``RSSI(d) = eirp_dbm - 20 log10(4 pi d / lambda)``
    """

    eirp_dbm: float = 0.0
    wavelength_m: float = 0.99  # 303.8 MHz active RFID

    def __post_init__(self) -> None:
        ensure_positive(self.wavelength_m, "wavelength_m")
        if not np.isfinite(self.eirp_dbm):
            raise ConfigurationError("eirp_dbm must be finite")

    def rssi(self, distance_m: np.ndarray | float) -> np.ndarray:
        d = _clamped(distance_m)
        return self.eirp_dbm - 20.0 * np.log10(4.0 * np.pi * d / self.wavelength_m)


@dataclass(frozen=True)
class MultiSlopePathLoss:
    """Piecewise log-distance model with break points.

    ``breakpoints_m`` and ``gammas`` define consecutive regimes:
    ``gammas[i]`` applies between ``breakpoints_m[i-1]`` and
    ``breakpoints_m[i]`` (with implicit 0 and infinity at the ends), and
    the segments are stitched continuously.

    A two-slope instance (gentle near the reader, steep beyond a few
    metres) reproduces the "not as smooth as expected" knee visible in the
    paper's Fig. 3.
    """

    rssi_at_reference: float = -45.0
    reference_distance_m: float = 1.0
    breakpoints_m: Sequence[float] = (8.0,)
    gammas: Sequence[float] = (2.0, 3.2)

    def __post_init__(self) -> None:
        ensure_positive(self.reference_distance_m, "reference_distance_m")
        bps = tuple(float(b) for b in self.breakpoints_m)
        gs = tuple(float(g) for g in self.gammas)
        if len(gs) != len(bps) + 1:
            raise ConfigurationError(
                f"need len(gammas) == len(breakpoints)+1, got {len(gs)} and {len(bps)}"
            )
        if any(g <= 0 for g in gs):
            raise ConfigurationError("all gammas must be positive")
        if any(b <= 0 for b in bps) or list(bps) != sorted(bps):
            raise ConfigurationError("breakpoints must be positive and increasing")
        object.__setattr__(self, "breakpoints_m", bps)
        object.__setattr__(self, "gammas", gs)

    def rssi(self, distance_m: np.ndarray | float) -> np.ndarray:
        d = _clamped(distance_m)
        edges = (self.reference_distance_m, *self.breakpoints_m)
        # RSSI at each regime edge, accumulated so segments join up.
        edge_rssi = [self.rssi_at_reference]
        for i, bp in enumerate(self.breakpoints_m):
            prev_edge = edges[i]
            edge_rssi.append(
                edge_rssi[-1] - 10.0 * self.gammas[i] * np.log10(bp / prev_edge)
            )
        out = np.empty_like(d)
        # Regime 0 also covers d < reference_distance (extrapolated).
        lower = 0.0
        for i, g in enumerate(self.gammas):
            upper = self.breakpoints_m[i] if i < len(self.breakpoints_m) else np.inf
            mask = (d >= lower) & (d < upper) if np.isfinite(upper) else (d >= lower)
            if np.any(mask):
                out[mask] = edge_rssi[i] - 10.0 * g * np.log10(d[mask] / edges[i])
            lower = upper
        return out
