"""Transient disturbances from human movement (paper §4.1).

The paper: "a sudden change of the RSSI value occurred when a person
walked through the testing region … such a factor should be avoided or
filtered out". We model a person as a moving attenuating disc following a
waypoint path; while the disc sits near the straight line between a tag
and a reader, that link suffers additional attenuation with soft edges.

The middleware's temporal smoothing (EWMA / sliding window) is the
designed countermeasure; failure-injection tests drive a person through
the testbed and check the estimator's degradation stays bounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..geometry.vector import Segment, point_segment_distance
from ..utils.arrays import as_point
from ..utils.validation import ensure_non_negative, ensure_positive

__all__ = ["HumanMovementDisturbance"]


@dataclass(frozen=True)
class HumanMovementDisturbance:
    """A person walking along waypoints, attenuating links they obstruct.

    Parameters
    ----------
    waypoints:
        Path vertices ``((x, y), ...)``; the person walks them in order at
        ``speed_mps`` starting at ``start_time_s``, then leaves the scene.
    speed_mps:
        Walking speed.
    body_radius_m:
        Effective obstruction radius. Attenuation falls off smoothly from
        the full value at 0 distance to zero at the radius.
    attenuation_db:
        Peak extra attenuation when the person stands exactly on the
        tag-reader line.
    start_time_s:
        When the walk begins.
    """

    waypoints: tuple[tuple[float, float], ...]
    speed_mps: float = 1.2
    body_radius_m: float = 0.6
    attenuation_db: float = 8.0
    start_time_s: float = 0.0

    def __post_init__(self) -> None:
        pts = tuple((float(x), float(y)) for x, y in self.waypoints)
        if len(pts) < 2:
            raise ConfigurationError("need at least two waypoints")
        object.__setattr__(self, "waypoints", pts)
        ensure_positive(self.speed_mps, "speed_mps")
        ensure_positive(self.body_radius_m, "body_radius_m")
        ensure_non_negative(self.attenuation_db, "attenuation_db")
        ensure_non_negative(self.start_time_s, "start_time_s")

    @property
    def path_length_m(self) -> float:
        pts = np.asarray(self.waypoints)
        return float(np.sum(np.linalg.norm(np.diff(pts, axis=0), axis=1)))

    @property
    def end_time_s(self) -> float:
        """Time at which the person reaches the final waypoint."""
        return self.start_time_s + self.path_length_m / self.speed_mps

    def position_at(self, time_s: float) -> tuple[float, float] | None:
        """The person's position at ``time_s``, or None if not walking."""
        if time_s < self.start_time_s or time_s > self.end_time_s:
            return None
        walked = (time_s - self.start_time_s) * self.speed_mps
        pts = np.asarray(self.waypoints)
        for i in range(len(pts) - 1):
            seg_len = float(np.linalg.norm(pts[i + 1] - pts[i]))
            if walked <= seg_len or i == len(pts) - 2:
                frac = 0.0 if seg_len == 0 else min(walked / seg_len, 1.0)
                p = pts[i] + frac * (pts[i + 1] - pts[i])
                return (float(p[0]), float(p[1]))
            walked -= seg_len
        return None  # pragma: no cover - loop always returns

    def attenuation_at(
        self,
        time_s: float,
        tag_pos: Sequence[float],
        reader_pos: Sequence[float],
    ) -> float:
        """Extra attenuation (dB) on the tag-reader link at ``time_s``."""
        person = self.position_at(time_s)
        if person is None:
            return 0.0
        tag = as_point(tag_pos, "tag_pos")
        reader = as_point(reader_pos, "reader_pos")
        link = Segment((tag[0], tag[1]), (reader[0], reader[1]))
        dist = point_segment_distance(person, link)
        if dist >= self.body_radius_m:
            return 0.0
        # Cosine-tapered edge: full attenuation on the line, zero at radius.
        frac = dist / self.body_radius_m
        return self.attenuation_db * 0.5 * (1.0 + np.cos(np.pi * frac))
