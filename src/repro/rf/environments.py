"""The paper's three experimental environments as channel presets.

§3.3 / Fig. 1 of the paper:

* **Env1** — a semi-open area "not surrounded by concrete walls and
  furniture"; reflections exert little influence, so both algorithms do
  well.
* **Env2** — a spacious closed area; walls exist but are far from the
  sensing area, so reflection influence is moderate.
* **Env3** — a small, cluttered office; close reflective walls and
  metallic furniture create severe multipath, the worst case for
  LANDMARC and the motivating scenario for VIRE.

Each preset maps those qualitative descriptions onto the synthetic
channel's knobs: room size/openness, wall reflectivity, path-loss
exponent, shadowing strength/correlation, Rician K and measurement noise.
The absolute values were calibrated so the reproduction exhibits the
paper's orderings (Env1 ≈ Env2 « Env3 error; boundary tags worst); see
EXPERIMENTS.md for measured numbers.

The testbed (4x4 grid, readers 1 m outside the corners) is always placed
with the grid origin at (0, 0), so rooms position their walls *around*
that footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ..exceptions import ConfigurationError
from ..geometry.rooms import Room, Wall, rectangular_room
from ..geometry.vector import Segment
from .channel import RFChannel
from .fading import RicianFading
from .multipath import MultipathSpec
from .propagation import LogDistancePathLoss
from .shadowing import ShadowingSpec

__all__ = ["EnvironmentSpec", "env1", "env2", "env3", "environment_by_name"]


@dataclass(frozen=True)
class EnvironmentSpec:
    """A complete recipe for building an :class:`~repro.rf.RFChannel`.

    The spec is declarative and hashable-by-value so experiment configs
    can carry it around; :meth:`build_channel` instantiates the channel
    for a concrete reader deployment and seed.
    """

    name: str
    room: Room
    path_loss: LogDistancePathLoss
    shadowing: ShadowingSpec
    multipath: MultipathSpec
    rician_k: float
    noise_sigma_db: float
    #: Std-dev (dB) of the quasi-static per-reference-tag RSSI offset.
    #: Physically: each reference tag's local mounting environment (the
    #: shelf, floor tile or cabinet it is taped to) detunes its antenna
    #: and absorbs/reflects its near field, shifting its effective
    #: radiated power by a tag-specific constant. In a cluttered office
    #: these offsets are large; in open areas small. They are the main
    #: reason LANDMARC's RSSI-space neighbour ranking degrades indoors
    #: while VIRE's interpolation (which spreads each offset smoothly
    #: over the cell, making it common-mode across readers) copes.
    reference_tag_offset_sigma_db: float = 0.0
    #: Same, for the tracked tag. Usually smaller: the tracked asset is
    #: more exposed, and a deployment calibrates its few tracking tags.
    tracking_tag_offset_sigma_db: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("environment name must be non-empty")
        if self.rician_k < 0:
            raise ConfigurationError(f"rician_k must be >= 0, got {self.rician_k}")
        if self.noise_sigma_db < 0:
            raise ConfigurationError(
                f"noise_sigma_db must be >= 0, got {self.noise_sigma_db}"
            )
        if self.reference_tag_offset_sigma_db < 0:
            raise ConfigurationError(
                "reference_tag_offset_sigma_db must be >= 0, got "
                f"{self.reference_tag_offset_sigma_db}"
            )
        if self.tracking_tag_offset_sigma_db < 0:
            raise ConfigurationError(
                "tracking_tag_offset_sigma_db must be >= 0, got "
                f"{self.tracking_tag_offset_sigma_db}"
            )

    def build_channel(
        self, reader_positions: Sequence[Sequence[float]], seed: int = 0
    ) -> RFChannel:
        """Instantiate the frozen RF world for this environment."""
        return RFChannel(
            self.room,
            reader_positions,
            path_loss=self.path_loss,
            shadowing=self.shadowing,
            multipath=self.multipath,
            fading=RicianFading(k_factor=self.rician_k),
            noise_sigma_db=self.noise_sigma_db,
            seed=seed,
        )

    def without_multipath(self) -> "EnvironmentSpec":
        """Ablation variant: same environment with reflections disabled."""
        return replace(
            self,
            name=f"{self.name}-nomp",
            multipath=replace(self.multipath, max_reflections=0),
        )


def env1() -> EnvironmentSpec:
    """Env1: semi-open area (Fig. 1(a)).

    Two sides are open (no wall at all); the remaining walls are light
    partitions with low reflectivity. Mild shadowing, stable readings.
    """
    room = rectangular_room(
        14.0,
        12.0,
        origin=(-5.0, -4.0),
        attenuation_db=8.0,
        reflectivity=0.35,
        open_sides=("top", "right"),
        name="env1-semi-open",
    )
    return EnvironmentSpec(
        name="Env1",
        room=room,
        path_loss=LogDistancePathLoss(rssi_at_reference=-48.0, gamma=2.1),
        shadowing=ShadowingSpec(
            sigma_db=1.2, correlation_length_m=4.0, common_fraction=0.3
        ),
        multipath=MultipathSpec(max_reflections=1, wavelength_m=0.99, coherence=0.3),
        rician_k=10.0,
        noise_sigma_db=0.5,
        reference_tag_offset_sigma_db=2.0,
        tracking_tag_offset_sigma_db=0.5,
        description="semi-opened area, weak reflections",
    )


def env2() -> EnvironmentSpec:
    """Env2: spacious closed area (Fig. 1(b)).

    Fully walled, but the walls are several metres from the sensing
    area, so reflected rays arrive attenuated by the longer path.
    """
    room = rectangular_room(
        20.0,
        16.0,
        origin=(-8.0, -6.0),
        attenuation_db=12.0,
        reflectivity=0.55,
        name="env2-spacious",
    )
    return EnvironmentSpec(
        name="Env2",
        room=room,
        path_loss=LogDistancePathLoss(rssi_at_reference=-48.0, gamma=2.0),
        shadowing=ShadowingSpec(
            sigma_db=1.8, correlation_length_m=4.5, common_fraction=0.4
        ),
        multipath=MultipathSpec(max_reflections=1, wavelength_m=0.99, coherence=0.25),
        rician_k=8.0,
        noise_sigma_db=0.6,
        reference_tag_offset_sigma_db=4.0,
        tracking_tag_offset_sigma_db=0.8,
        description="spacious closed area, distant walls",
    )


def env3() -> EnvironmentSpec:
    """Env3: small cluttered office (Fig. 1(c)) — the hard case.

    Close, highly reflective concrete walls; metallic office furniture
    modelled as interior reflective obstacles; higher path-loss exponent,
    stronger and shorter-range shadowing, heavier per-reading fading.
    """
    base = rectangular_room(
        6.4,
        6.0,
        origin=(-1.7, -1.5),
        attenuation_db=14.0,
        reflectivity=0.8,
        name="env3-office",
    )
    furniture = (
        # A metal filing cabinet along the left wall and two desks. They
        # reflect strongly and punch a few dB out of crossing paths.
        Wall(Segment((-1.2, 0.6), (-1.2, 2.4)), attenuation_db=5.0,
             reflectivity=0.9, name="cabinet"),
        Wall(Segment((0.6, 3.9), (2.4, 3.9)), attenuation_db=3.0,
             reflectivity=0.7, name="desk-north"),
        Wall(Segment((3.9, 0.4), (3.9, 1.9)), attenuation_db=3.0,
             reflectivity=0.7, name="desk-east"),
    )
    room = base.with_walls(furniture)
    return EnvironmentSpec(
        name="Env3",
        room=room,
        path_loss=LogDistancePathLoss(rssi_at_reference=-50.0, gamma=2.8),
        shadowing=ShadowingSpec(
            sigma_db=2.0, correlation_length_m=4.0, common_fraction=0.5
        ),
        multipath=MultipathSpec(max_reflections=2, wavelength_m=0.99, coherence=0.1),
        rician_k=4.0,
        noise_sigma_db=0.8,
        reference_tag_offset_sigma_db=8.0,
        tracking_tag_offset_sigma_db=1.0,
        description="small closed office, severe multipath and clutter",
    )


_FACTORIES = {"env1": env1, "env2": env2, "env3": env3}


def environment_by_name(name: str) -> EnvironmentSpec:
    """Look up an environment preset case-insensitively ("Env1" ... "Env3")."""
    key = name.strip().lower()
    if key not in _FACTORIES:
        raise ConfigurationError(
            f"unknown environment {name!r}; expected one of {sorted(_FACTORIES)}"
        )
    return _FACTORIES[key]()
