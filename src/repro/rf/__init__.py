"""Synthetic RF channel substrate.

This subpackage replaces the paper's physical RF Code testbed with a
physically-motivated synthetic channel:

* :mod:`~repro.rf.propagation` — deterministic distance-dependent path
  loss (log-distance / multi-slope / free-space models),
* :mod:`~repro.rf.shadowing` — spatially-correlated log-normal shadowing
  fields (Gudmundson model) per reader,
* :mod:`~repro.rf.multipath` — image-method wall reflections that create
  position-dependent standing-wave fading (the phenomenon that breaks
  LANDMARC in the paper's closed Env3),
* :mod:`~repro.rf.fading` — per-reading Rician fast fading,
* :mod:`~repro.rf.interference` — RSSI corruption among densely packed
  tags (paper Fig. 4),
* :mod:`~repro.rf.disturbance` — transient disturbances from human
  movement (paper §4.1),
* :mod:`~repro.rf.quantization` — the 8-level power quantization of the
  original LANDMARC equipment,
* :mod:`~repro.rf.channel` — the composed :class:`RFChannel`,
* :mod:`~repro.rf.environments` — presets reproducing Env1/Env2/Env3.
"""

from .propagation import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    MultiSlopePathLoss,
    PathLossModel,
)
from .shadowing import ShadowingField, ShadowingSpec
from .multipath import MultipathSpec, MultipathModel
from .fading import RicianFading, NoFading, FadingModel
from .interference import TagInterferenceModel
from .disturbance import HumanMovementDisturbance
from .quantization import PowerLevelQuantizer
from .channel import RFChannel
from .environments import EnvironmentSpec, env1, env2, env3, environment_by_name

__all__ = [
    "PathLossModel",
    "FreeSpacePathLoss",
    "LogDistancePathLoss",
    "MultiSlopePathLoss",
    "ShadowingField",
    "ShadowingSpec",
    "MultipathSpec",
    "MultipathModel",
    "FadingModel",
    "RicianFading",
    "NoFading",
    "TagInterferenceModel",
    "HumanMovementDisturbance",
    "PowerLevelQuantizer",
    "RFChannel",
    "EnvironmentSpec",
    "env1",
    "env2",
    "env3",
    "environment_by_name",
]
