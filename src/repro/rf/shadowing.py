"""Spatially-correlated log-normal shadowing fields.

Shadowing (slow fading) is the position-dependent deviation from the mean
path loss caused by the large-scale layout: furniture, people, wall
texture. Critically it is *spatially correlated* — nearby positions see
similar deviations (Gudmundson's classical measurement: exponential
autocorrelation with a decorrelation distance of metres indoors). This
correlation is the physical reason reference tags work at all: a reference
tag 30 cm from the tracking tag experiences nearly the same shadowing, so
comparing RSSI cancels it.

Implementation: per reader we synthesize a Gaussian random field on a
padded lattice covering the room by smoothing white noise with a Gaussian
kernel whose width matches the requested correlation length, re-normalize
to the target variance, and evaluate off-lattice positions by bilinear
interpolation. The field is a deterministic function of the (seed, reader)
pair, so reference tags and the tracking tag always see one consistent
world.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage
from scipy.interpolate import RegularGridInterpolator

from ..exceptions import ChannelError
from ..geometry.rooms import Room
from ..utils.validation import ensure_non_negative, ensure_positive

__all__ = ["ShadowingSpec", "ShadowingField"]


@dataclass(frozen=True)
class ShadowingSpec:
    """Parameters of a shadowing field.

    Parameters
    ----------
    sigma_db:
        Standard deviation of the shadowing in dB (0 disables shadowing).
    correlation_length_m:
        Distance at which the field decorrelates (Gudmundson d_corr).
    resolution_m:
        Lattice pitch used to synthesize the field; defaults to a quarter
        of the correlation length, capped for memory.
    padding_m:
        Extra margin around the room so queries slightly outside the
        bounds (readers, Tag 9) remain inside the lattice.
    common_fraction:
        Fraction (by amplitude, in [0, 1]) of the field that is *shared*
        across all readers. Physical shadowing comes largely from the
        environment itself — walls, furniture, absorbing clutter around
        the tag — which attenuates the tag's emissions towards *every*
        reader alike; only part of the deviation is reader-specific
        (antenna aspect, near-reader obstructions). A high common
        fraction makes the K-reader RSSI map fold (distinct positions
        with near-identical vectors), which is what degrades LANDMARC's
        neighbour selection in cluttered rooms. Total per-reader variance
        stays ``sigma_db**2`` regardless of the split.
    """

    sigma_db: float = 2.0
    correlation_length_m: float = 2.0
    resolution_m: float | None = None
    padding_m: float = 3.0
    common_fraction: float = 0.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.sigma_db, "sigma_db")
        ensure_positive(self.correlation_length_m, "correlation_length_m")
        ensure_non_negative(self.padding_m, "padding_m")
        if self.resolution_m is not None:
            ensure_positive(self.resolution_m, "resolution_m")
        if not (0.0 <= self.common_fraction <= 1.0):
            raise ValueError(
                f"common_fraction must be in [0, 1], got {self.common_fraction}"
            )

    @property
    def effective_resolution_m(self) -> float:
        if self.resolution_m is not None:
            return self.resolution_m
        return max(self.correlation_length_m / 4.0, 0.05)


class ShadowingField:
    """One reader's frozen shadowing field over a room.

    Parameters
    ----------
    room:
        Defines the spatial extent of the field.
    spec:
        Field statistics.
    rng:
        Source of randomness; the field is fully drawn at construction and
        evaluation is deterministic afterwards.
    """

    def __init__(self, room: Room, spec: ShadowingSpec, rng: np.random.Generator):
        self.room = room
        self.spec = spec
        xmin, ymin, xmax, ymax = room.bounds
        pad = spec.padding_m
        res = spec.effective_resolution_m
        self._xs = np.arange(xmin - pad, xmax + pad + res, res)
        self._ys = np.arange(ymin - pad, ymax + pad + res, res)
        if self._xs.size < 2 or self._ys.size < 2:
            raise ChannelError("shadowing lattice degenerate; room too small")
        if spec.sigma_db == 0.0:
            field = np.zeros((self._ys.size, self._xs.size))
        else:
            white = rng.standard_normal((self._ys.size, self._xs.size))
            # A Gaussian kernel with sigma = d_corr / res lattice cells gives
            # an autocorrelation length of roughly d_corr in metres.
            sigma_cells = spec.correlation_length_m / res
            field = ndimage.gaussian_filter(white, sigma=sigma_cells, mode="reflect")
            std = field.std()
            if std <= 0:
                raise ChannelError("shadowing field collapsed to a constant")
            field = field * (spec.sigma_db / std)
        self._field = field
        self._interp = RegularGridInterpolator(
            (self._ys, self._xs),
            field,
            method="linear",
            bounds_error=False,
            fill_value=None,  # linear extrapolation beyond the padded lattice
        )

    def value_at(self, positions: np.ndarray) -> np.ndarray:
        """Shadowing offset (dB) at each ``(x, y)`` row of ``positions``.

        Accepts shape ``(n, 2)`` or a single ``(2,)`` point; returns shape
        ``(n,)`` or a scalar array respectively.
        """
        pts = np.asarray(positions, dtype=np.float64)
        single = pts.ndim == 1
        if single:
            pts = pts[np.newaxis, :]
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ChannelError(f"positions must have shape (n, 2), got {pts.shape}")
        vals = self._interp(pts[:, ::-1])  # interpolator wants (y, x)
        return vals[0] if single else vals

    @property
    def lattice_shape(self) -> tuple[int, int]:
        """Shape of the underlying synthesis lattice (rows=y, cols=x)."""
        return self._field.shape

    def empirical_sigma(self) -> float:
        """Standard deviation actually realized on the lattice (≈ sigma_db)."""
        return float(self._field.std())
