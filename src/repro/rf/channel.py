"""The composed RF channel.

:class:`RFChannel` glues the substrate models into the single object the
testbed simulator talks to. The decomposition follows standard channel
modelling practice:

``RSSI(reading) = pathloss(d) - wall_penetration + multipath_excess
                + shadowing(x, y) + fading(reading) + noise(reading)``

The first four terms form the *frozen spatial field*: a deterministic
function of position for a given seed (the "world"). The last two vary
per reading. This split matters for correctness of the reproduction:
reference tags and tracking tags must observe a *consistent* world —
that consistency is what LANDMARC and VIRE exploit — while repeated
readings must still scatter (Fig. 3's whiskers).

Readers are registered up front so each gets its own shadowing field and
precomputed multipath image set.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..exceptions import ChannelError
from ..geometry.rooms import Room
from ..utils.arrays import as_point, as_points
from ..utils.rng import derive_rng
from .fading import FadingModel, NoFading, RicianFading
from .multipath import MultipathModel, MultipathSpec, _ReaderImages
from .propagation import LogDistancePathLoss, PathLossModel
from .shadowing import ShadowingField, ShadowingSpec

__all__ = ["RFChannel"]


@dataclass
class _ReaderState:
    position: np.ndarray
    shadowing: ShadowingField
    images: _ReaderImages


class RFChannel:
    """A frozen RF world over a room, queried per (reader, tag position).

    Parameters
    ----------
    room:
        Geometry: walls attenuate crossings and reflect multipath rays.
    reader_positions:
        ``(K, 2)`` coordinates of the readers. Fixed at construction.
    path_loss:
        Deterministic distance model.
    shadowing:
        Spec of the per-reader correlated shadowing fields.
    multipath:
        Spec of the image-method model.
    fading:
        Per-reading fast fading model.
    noise_sigma_db:
        I.i.d. Gaussian measurement noise per reading (receiver noise,
        quantization of the dBm readout, ...).
    sensitivity_dbm:
        Readings are floored here — a receiver never reports power below
        its sensitivity.
    seed:
        Master seed of the frozen world. Two channels built with identical
        arguments produce identical mean fields.
    """

    def __init__(
        self,
        room: Room,
        reader_positions: Sequence[Sequence[float]],
        *,
        path_loss: PathLossModel | None = None,
        shadowing: ShadowingSpec | None = None,
        multipath: MultipathSpec | None = None,
        fading: FadingModel | None = None,
        noise_sigma_db: float = 0.8,
        sensitivity_dbm: float = -105.0,
        seed: int = 0,
    ):
        self.room = room
        self.path_loss = path_loss or LogDistancePathLoss()
        self.shadowing_spec = shadowing or ShadowingSpec()
        self.multipath_spec = multipath or MultipathSpec()
        self.fading: FadingModel = fading if fading is not None else RicianFading()
        if noise_sigma_db < 0:
            raise ChannelError(f"noise_sigma_db must be >= 0, got {noise_sigma_db}")
        self.noise_sigma_db = float(noise_sigma_db)
        self.sensitivity_dbm = float(sensitivity_dbm)
        self.seed = int(seed)

        positions = as_points(reader_positions, "reader_positions")
        if positions.shape[0] == 0:
            raise ChannelError("need at least one reader")
        self._multipath_model = MultipathModel(room, self.multipath_spec)

        # Split the shadowing variance into a component common to all
        # readers (the environment shadowing the tag itself) and
        # independent per-reader components; see ShadowingSpec docs.
        f = self.shadowing_spec.common_fraction
        self._common_shadowing: ShadowingField | None = None
        indiv_spec = replace(
            self.shadowing_spec,
            sigma_db=self.shadowing_spec.sigma_db * float(np.sqrt(1.0 - f * f)),
            common_fraction=0.0,
        )
        if f > 0.0 and self.shadowing_spec.sigma_db > 0.0:
            common_spec = replace(
                self.shadowing_spec,
                sigma_db=self.shadowing_spec.sigma_db * f,
                common_fraction=0.0,
            )
            self._common_shadowing = ShadowingField(
                room, common_spec, derive_rng(self.seed, "shadowing-common")
            )

        # One reflection phase offset per reflective wall, shared by all
        # readers (a property of the wall, not the receiver); redrawn per
        # seed so each seed is a different frozen fringe pattern.
        n_walls = len(room.reflective_walls)
        wall_phases = derive_rng(self.seed, "multipath-phases").uniform(
            0.0, 2.0 * np.pi, size=n_walls
        )

        self._readers: list[_ReaderState] = []
        for k, pos in enumerate(positions):
            shadow_rng = derive_rng(self.seed, "shadowing", k)
            self._readers.append(
                _ReaderState(
                    position=pos.copy(),
                    shadowing=ShadowingField(room, indiv_spec, shadow_rng),
                    images=self._multipath_model.prepare_reader(pos, wall_phases),
                )
            )

    # -- introspection ---------------------------------------------------

    @property
    def n_readers(self) -> int:
        return len(self._readers)

    @property
    def reader_positions(self) -> np.ndarray:
        """``(K, 2)`` array of reader coordinates (copy)."""
        return np.array([r.position for r in self._readers])

    def _reader(self, reader_index: int) -> _ReaderState:
        if not (0 <= reader_index < len(self._readers)):
            raise ChannelError(
                f"reader index {reader_index} out of range 0..{len(self._readers)-1}"
            )
        return self._readers[reader_index]

    # -- the frozen field ------------------------------------------------

    def mean_rssi(
        self, reader_index: int, positions: Sequence[Sequence[float]]
    ) -> np.ndarray:
        """Mean RSSI (dBm) of tags at ``positions`` seen by one reader.

        Deterministic: path loss + wall penetration + multipath excess +
        shadowing. Shape ``(n,)`` for input shape ``(n, 2)``.
        """
        reader = self._reader(reader_index)
        pts = as_points(positions, "positions")
        diff = pts - reader.position[np.newaxis, :]
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        rssi = np.asarray(self.path_loss.rssi(dist), dtype=np.float64)

        attenuation = np.array(
            [self.room.crossing_attenuation_db(p, reader.position) for p in pts]
        )
        rssi = rssi - attenuation
        if self.multipath_spec.enabled:
            rssi = rssi + reader.images.excess_gain_db(
                pts, direct_attenuation_db=attenuation
            )
        rssi = rssi + reader.shadowing.value_at(pts)
        if self._common_shadowing is not None:
            rssi = rssi + self._common_shadowing.value_at(pts)
        return rssi

    def mean_rssi_single(
        self, reader_index: int, position: Sequence[float]
    ) -> float:
        """Scalar convenience wrapper over :meth:`mean_rssi`."""
        p = as_point(position, "position")
        return float(self.mean_rssi(reader_index, p[np.newaxis, :])[0])

    # -- per-reading sampling ---------------------------------------------

    def sample_rssi(
        self,
        reader_index: int,
        positions: Sequence[Sequence[float]],
        rng: np.random.Generator,
        *,
        n_reads: int = 1,
        extra_attenuation_db: np.ndarray | float = 0.0,
    ) -> np.ndarray:
        """Draw ``n_reads`` noisy readings per tag position.

        Returns shape ``(n, n_reads)``. ``extra_attenuation_db`` lets the
        simulator inject transient effects (human movement, interference
        offsets) computed elsewhere.
        """
        if n_reads < 1:
            raise ChannelError(f"n_reads must be >= 1, got {n_reads}")
        mean = self.mean_rssi(reader_index, positions)
        n = mean.shape[0]
        out = np.broadcast_to(mean[:, np.newaxis], (n, n_reads)).copy()
        out -= np.broadcast_to(
            np.asarray(extra_attenuation_db, dtype=np.float64), (n,)
        )[:, np.newaxis]
        out += self.fading.sample_db(rng, (n, n_reads))
        if self.noise_sigma_db > 0:
            out += rng.standard_normal((n, n_reads)) * self.noise_sigma_db
        return np.maximum(out, self.sensitivity_dbm)

    def sample_rssi_matrix(
        self,
        positions: Sequence[Sequence[float]],
        rng: np.random.Generator,
        *,
        n_reads: int = 1,
    ) -> np.ndarray:
        """Readings of every tag at every reader, averaged over ``n_reads``.

        Returns shape ``(K, n_tags)`` — the RSSI matrix the middleware
        hands to estimators. Averaging across reads emulates the
        middleware's temporal smoothing.
        """
        pts = as_points(positions, "positions")
        out = np.empty((self.n_readers, pts.shape[0]))
        for k in range(self.n_readers):
            reads = self.sample_rssi(k, pts, rng, n_reads=n_reads)
            out[k, :] = reads.mean(axis=1)
        return out

    def mean_rssi_matrix(self, positions: Sequence[Sequence[float]]) -> np.ndarray:
        """Frozen-field RSSI of every tag at every reader, ``(K, n_tags)``."""
        pts = as_points(positions, "positions")
        out = np.empty((self.n_readers, pts.shape[0]))
        for k in range(self.n_readers):
            out[k, :] = self.mean_rssi(k, pts)
        return out

    def with_fading(self, fading: FadingModel | None) -> "RFChannel":
        """A copy of this channel with a different fading model (same world)."""
        return RFChannel(
            self.room,
            self.reader_positions,
            path_loss=self.path_loss,
            shadowing=self.shadowing_spec,
            multipath=self.multipath_spec,
            fading=fading if fading is not None else NoFading(),
            noise_sigma_db=self.noise_sigma_db,
            sensitivity_dbm=self.sensitivity_dbm,
            seed=self.seed,
        )
