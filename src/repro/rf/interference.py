"""RF interference among densely packed tags (paper §4.1, Fig. 4).

The paper observes that active tags placed at the same spot *one at a
time* report nearly identical RSSI, but more than ~10 tags packed
together interfere: their beacon collisions and mutual detuning spread
the reported RSSI over tens of dB (Fig. 4 shows a snapshot spanning
roughly -70 to -100 dBm for 20 co-located tags that individually read
about -75 dBm).

Model: for each tag we count its neighbours within ``radius_m``. Below
``free_neighbour_count`` neighbours the tag is unaffected. Beyond it,
the tag suffers (a) a systematic per-tag offset drawn once (detuning /
shadowing by neighbouring tag bodies) and (b) extra per-reading noise
(collision losses), both growing with the amount of crowding until
saturation. Offsets are negative-leaning: interference destroys power
more often than it creates it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..utils.arrays import as_points, pairwise_distances
from ..utils.validation import ensure_non_negative, ensure_positive, ensure_positive_int

__all__ = ["TagInterferenceModel"]


@dataclass(frozen=True)
class TagInterferenceModel:
    """Density-dependent RSSI corruption.

    Parameters
    ----------
    radius_m:
        Tags closer than this count as mutual neighbours.
    free_neighbour_count:
        Up to this many neighbours causes no interference (the paper
        reports trouble beyond roughly 10 co-located tags).
    saturation_neighbour_count:
        Crowding level at which the corruption reaches full strength.
    max_offset_db:
        Scale of the systematic per-tag offset at saturation (dB).
    max_jitter_db:
        Scale of the extra per-reading noise at saturation (dB).
    """

    radius_m: float = 0.5
    free_neighbour_count: int = 9
    saturation_neighbour_count: int = 19
    max_offset_db: float = 12.0
    max_jitter_db: float = 6.0

    def __post_init__(self) -> None:
        ensure_positive(self.radius_m, "radius_m")
        ensure_positive_int(self.free_neighbour_count, "free_neighbour_count", minimum=0)
        ensure_positive_int(
            self.saturation_neighbour_count, "saturation_neighbour_count", minimum=1
        )
        if self.saturation_neighbour_count <= self.free_neighbour_count:
            raise ConfigurationError(
                "saturation_neighbour_count must exceed free_neighbour_count"
            )
        ensure_non_negative(self.max_offset_db, "max_offset_db")
        ensure_non_negative(self.max_jitter_db, "max_jitter_db")

    def neighbour_counts(self, positions: np.ndarray) -> np.ndarray:
        """Number of *other* tags within ``radius_m`` of each tag."""
        pts = as_points(positions, "positions")
        d = pairwise_distances(pts, pts)
        within = d <= self.radius_m
        return within.sum(axis=1) - 1  # exclude self

    def severity(self, positions: np.ndarray) -> np.ndarray:
        """Interference severity in [0, 1] for each tag."""
        counts = self.neighbour_counts(positions)
        span = self.saturation_neighbour_count - self.free_neighbour_count
        return np.clip((counts - self.free_neighbour_count) / span, 0.0, 1.0)

    def systematic_offsets_db(
        self, positions: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-tag quasi-static offsets (drawn once per deployment)."""
        sev = self.severity(positions)
        n = sev.shape[0]
        # Negative-leaning: mean -0.75*scale, sd 0.5*scale per unit severity.
        draw = rng.standard_normal(n) * 0.5 - 0.75
        return sev * self.max_offset_db * draw

    def reading_jitter_db(
        self, positions: np.ndarray, rng: np.random.Generator, n_reads: int = 1
    ) -> np.ndarray:
        """Extra per-reading noise, shape ``(n_tags, n_reads)``."""
        if n_reads < 1:
            raise ConfigurationError(f"n_reads must be >= 1, got {n_reads}")
        sev = self.severity(positions)
        noise = rng.standard_normal((sev.shape[0], n_reads))
        return sev[:, np.newaxis] * self.max_jitter_db * noise

    def corrupt(
        self,
        clean_rssi: np.ndarray,
        positions: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Apply both corruption terms to a vector of clean RSSI values."""
        rssi = np.asarray(clean_rssi, dtype=np.float64)
        pts = as_points(positions, "positions")
        if rssi.shape != (pts.shape[0],):
            raise ConfigurationError(
                f"clean_rssi shape {rssi.shape} mismatches {pts.shape[0]} positions"
            )
        out = rssi + self.systematic_offsets_db(pts, rng)
        out = out + self.reading_jitter_db(pts, rng, n_reads=1)[:, 0]
        return out
